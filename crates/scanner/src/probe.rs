//! The probe-module plugin layer.
//!
//! Real ZMap is a table of pluggable probe modules — TCP SYN, ICMP
//! echo, DNS, raw UDP payloads — sharing one permutation/pacing core.
//! This module reproduces that shape: a [`ProbeModule`] owns probe
//! construction, reply classification, and stateless validation for one
//! scan scenario, while the engine keeps everything scenario-agnostic
//! (address permutation, pacing, counters, checkpointing, the adaptive
//! controller).
//!
//! # Determinism obligations
//!
//! A module's [`deliver`](ProbeModule::deliver) must be a pure function
//! of the probe context and the network: no interior state, no clocks,
//! no randomness of its own. All validation state is derived from the
//! engine-owned [`Validator`] (ZMap's stateless MAC scheme), so a module
//! never needs per-target memory. This is what keeps whole experiments
//! byte-reproducible under the same seed.
//!
//! # Adding a module
//!
//! Implement [`ProbeModule`] on a unit struct, give it a stable
//! [`name`](ProbeModule::name) (the store/telemetry protocol key) and
//! [`wire_name`](ProbeModule::wire_name) (the ZMap-style module id),
//! add a [`Protocol`] variant, and register the instance in
//! [`modules`]. Everything downstream — per-module sweeps in `core`,
//! store keys, `serve` queries, telemetry scopes — picks the module up
//! from the registry.

use crate::error::ScanError;
use crate::target::{IcmpReply, Network, ProbeCtx, Protocol, SynReply, UdpReply};
use crate::zgrab::L7Detail;
use originscan_wire::icmp::IcmpEcho;
use originscan_wire::ipv4::{PROTO_ICMP, PROTO_UDP};
use originscan_wire::validation::Validator;
use originscan_wire::{dns, udp, Ipv4Header, TcpHeader};

/// The qname every DNS probe asks for (an A record, recursion desired).
pub const DNS_PROBE_QNAME: &str = "origin-scan.example.com";

/// The protocols of the paper's study: the TCP trio whose origin-bias
/// results the reproduction targets. Use this where the *paper's
/// roster* is really meant; iterate [`modules`] for every registered
/// probe module.
pub const PAPER_PROTOCOLS: [Protocol; 3] = [Protocol::Http, Protocol::Https, Protocol::Ssh];

/// How a probe module classified one delivered probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeVerdict {
    /// A validated positive reply (SYN-ACK, echo reply, DNS response).
    /// Stateless modules attach the terminal application detail here;
    /// stateful modules return `None` and let the ZGrab follow-up run.
    Positive(Option<L7Detail>),
    /// A validated negative reply (RST, ICMP unreachable): something is
    /// there, but not the scanned service.
    Negative,
    /// A reply arrived but failed stateless validation (spoofed or
    /// corrupted) — counted, never recorded.
    Invalid,
    /// No reply.
    Silent,
}

/// Engine-owned state for one probe delivery: the validator plus the
/// flow metadata the engine derived from the address hash.
#[derive(Debug)]
pub struct ProbeShot<'a> {
    /// The scan's stateless validator (seeded per scan).
    pub validator: &'a Validator,
    /// Source port chosen for this flow.
    pub sport: u16,
    /// Destination port (the module's [`ProbeModule::port`]).
    pub dport: u16,
    /// Whether to round-trip probe/reply bytes through the wire codecs
    /// as a self-check.
    pub wire_check: bool,
}

/// One pluggable scan scenario: probe construction, reply
/// classification, and wire metadata.
pub trait ProbeModule: Sync + std::fmt::Debug {
    /// Stable display name — the store/telemetry/serve protocol key
    /// ("HTTP", "ICMP", ...).
    fn name(&self) -> &'static str;

    /// ZMap-style wire module id ("tcp_synscan", "icmp_echoscan", ...),
    /// used as the span marker in traces.
    fn wire_name(&self) -> &'static str;

    /// The protocol this module scans.
    fn protocol(&self) -> Protocol;

    /// Destination port probed (0 where the protocol has none).
    fn port(&self) -> u16;

    /// True when a positive probe reply is already the terminal
    /// application result (no ZGrab follow-up connection).
    fn stateless(&self) -> bool;

    /// Build this module's probe for `ctx`, deliver it to `net`, and
    /// classify the reply.
    fn deliver(
        &self,
        net: &dyn Network,
        shot: &ProbeShot<'_>,
        ctx: &ProbeCtx,
    ) -> Result<ProbeVerdict, ScanError>;
}

/// Round-trip a TCP header through its byte encoding as a codec
/// self-check; `false` means the encoding was lossy.
pub(crate) fn tcp_wire_roundtrip(h: &TcpHeader, src: u32, dst: u32) -> bool {
    let ip = Ipv4Header::for_tcp(src, dst, h.wire_len());
    let ip_bytes = ip.emit();
    let Ok(reparsed_ip) = Ipv4Header::parse(&ip_bytes) else {
        return false;
    };
    if reparsed_ip != ip {
        return false;
    }
    let tcp_bytes = h.emit(&ip);
    matches!(TcpHeader::parse(&tcp_bytes, &ip), Ok(reparsed) if &reparsed == h)
}

/// The TCP SYN module backing the paper's HTTP/HTTPS/SSH scans.
#[derive(Debug)]
struct TcpSynModule {
    name: &'static str,
    protocol: Protocol,
    port: u16,
}

impl ProbeModule for TcpSynModule {
    fn name(&self) -> &'static str {
        self.name
    }
    fn wire_name(&self) -> &'static str {
        "tcp_synscan"
    }
    fn protocol(&self) -> Protocol {
        self.protocol
    }
    fn port(&self) -> u16 {
        self.port
    }
    fn stateless(&self) -> bool {
        false
    }

    fn deliver(
        &self,
        net: &dyn Network,
        shot: &ProbeShot<'_>,
        ctx: &ProbeCtx,
    ) -> Result<ProbeVerdict, ScanError> {
        let seq = shot
            .validator
            .probe_seq(ctx.src_ip, ctx.dst, shot.sport, shot.dport);
        let probe = TcpHeader::syn_probe(shot.sport, shot.dport, seq);
        if shot.wire_check && !tcp_wire_roundtrip(&probe, ctx.src_ip, ctx.dst) {
            return Err(ScanError::WireCheck { addr: ctx.dst });
        }
        Ok(match net.syn(ctx, &probe) {
            SynReply::SynAck(h) => {
                if shot.validator.check_reply(&h, ctx.src_ip, ctx.dst) {
                    if shot.wire_check && !tcp_wire_roundtrip(&h, ctx.dst, ctx.src_ip) {
                        return Err(ScanError::WireCheck { addr: ctx.dst });
                    }
                    ProbeVerdict::Positive(None)
                } else {
                    ProbeVerdict::Invalid
                }
            }
            SynReply::Rst(h) => {
                if shot.validator.check_reply(&h, ctx.src_ip, ctx.dst) {
                    ProbeVerdict::Negative
                } else {
                    ProbeVerdict::Invalid
                }
            }
            SynReply::Silent => ProbeVerdict::Silent,
        })
    }
}

/// ICMP echo (ping): the validation MAC rides in identifier/sequence
/// and the reply must mirror both.
#[derive(Debug)]
struct IcmpEchoModule;

impl ProbeModule for IcmpEchoModule {
    fn name(&self) -> &'static str {
        "ICMP"
    }
    fn wire_name(&self) -> &'static str {
        "icmp_echoscan"
    }
    fn protocol(&self) -> Protocol {
        Protocol::Icmp
    }
    fn port(&self) -> u16 {
        0
    }
    fn stateless(&self) -> bool {
        true
    }

    fn deliver(
        &self,
        net: &dyn Network,
        shot: &ProbeShot<'_>,
        ctx: &ProbeCtx,
    ) -> Result<ProbeVerdict, ScanError> {
        // No ports on ICMP: the MAC binds only the address pair, split
        // across the two 16-bit echo fields.
        let mac = shot.validator.probe_seq(ctx.src_ip, ctx.dst, 0, 0);
        let (ident, seq) = ((mac >> 16) as u16, mac as u16);
        let probe = IcmpEcho::request(ident, seq);
        if shot.wire_check && !icmp_wire_roundtrip(&probe, ctx.src_ip, ctx.dst) {
            return Err(ScanError::WireCheck { addr: ctx.dst });
        }
        Ok(match net.icmp(ctx, &probe) {
            IcmpReply::EchoReply { ident: ri, seq: rs } => {
                if (ri, rs) == (ident, seq) {
                    ProbeVerdict::Positive(Some(L7Detail::Icmp))
                } else {
                    ProbeVerdict::Invalid
                }
            }
            IcmpReply::Unreachable { .. } => ProbeVerdict::Negative,
            IcmpReply::Silent => ProbeVerdict::Silent,
        })
    }
}

/// Round-trip an ICMP echo message (and its IP header) through the wire
/// codecs.
fn icmp_wire_roundtrip(probe: &IcmpEcho, src: u32, dst: u32) -> bool {
    let bytes = probe.emit();
    let ip = Ipv4Header::for_proto(PROTO_ICMP, src, dst, bytes.len());
    let Ok(reparsed_ip) = Ipv4Header::parse(&ip.emit()) else {
        return false;
    };
    if reparsed_ip != ip {
        return false;
    }
    matches!(IcmpEcho::parse(&bytes), Ok(reparsed) if &reparsed == probe)
}

/// DNS A-query over UDP/53: the validation MAC rides in the transaction
/// id and the response must mirror it.
#[derive(Debug)]
struct DnsUdpModule;

impl ProbeModule for DnsUdpModule {
    fn name(&self) -> &'static str {
        "DNS"
    }
    fn wire_name(&self) -> &'static str {
        "dns_udpscan"
    }
    fn protocol(&self) -> Protocol {
        Protocol::Dns
    }
    fn port(&self) -> u16 {
        53
    }
    fn stateless(&self) -> bool {
        true
    }

    fn deliver(
        &self,
        net: &dyn Network,
        shot: &ProbeShot<'_>,
        ctx: &ProbeCtx,
    ) -> Result<ProbeVerdict, ScanError> {
        let txid = shot
            .validator
            .probe_seq(ctx.src_ip, ctx.dst, shot.sport, shot.dport) as u16;
        let Ok(query) = dns::a_query(txid, DNS_PROBE_QNAME) else {
            // The fixed probe qname always encodes; treat a failure like
            // any other codec self-check violation.
            return Err(ScanError::WireCheck { addr: ctx.dst });
        };
        if shot.wire_check && !udp_wire_roundtrip(&query, shot, ctx) {
            return Err(ScanError::WireCheck { addr: ctx.dst });
        }
        Ok(match net.udp(ctx, &query) {
            UdpReply::Data(bytes) => match dns::parse_response(&bytes) {
                Ok(r) if r.txid == txid => ProbeVerdict::Positive(Some(L7Detail::Dns {
                    rcode: r.rcode,
                    answers: u8::try_from(r.answers).unwrap_or(u8::MAX),
                })),
                _ => ProbeVerdict::Invalid,
            },
            UdpReply::PortUnreachable => ProbeVerdict::Negative,
            UdpReply::Silent => ProbeVerdict::Silent,
        })
    }
}

/// Round-trip a UDP-encapsulated payload through the wire codecs.
fn udp_wire_roundtrip(payload: &[u8], shot: &ProbeShot<'_>, ctx: &ProbeCtx) -> bool {
    let ip = Ipv4Header::for_proto(
        PROTO_UDP,
        ctx.src_ip,
        ctx.dst,
        udp::HEADER_LEN + payload.len(),
    );
    let Ok(reparsed_ip) = Ipv4Header::parse(&ip.emit()) else {
        return false;
    };
    if reparsed_ip != ip {
        return false;
    }
    let datagram = udp::emit_datagram(shot.sport, shot.dport, payload, &ip);
    match udp::parse_datagram(&datagram, &ip) {
        Ok((h, body)) => (h.src_port, h.dst_port) == (shot.sport, shot.dport) && body == payload,
        Err(_) => false,
    }
}

static HTTP_MODULE: TcpSynModule = TcpSynModule {
    name: "HTTP",
    protocol: Protocol::Http,
    port: 80,
};
static HTTPS_MODULE: TcpSynModule = TcpSynModule {
    name: "HTTPS",
    protocol: Protocol::Https,
    port: 443,
};
static SSH_MODULE: TcpSynModule = TcpSynModule {
    name: "SSH",
    protocol: Protocol::Ssh,
    port: 22,
};
static ICMP_MODULE: IcmpEchoModule = IcmpEchoModule;
static DNS_MODULE: DnsUdpModule = DnsUdpModule;

static MODULES: [&dyn ProbeModule; 5] = [
    &HTTP_MODULE,
    &HTTPS_MODULE,
    &SSH_MODULE,
    &ICMP_MODULE,
    &DNS_MODULE,
];

/// Every registered probe module, paper protocols first.
pub fn modules() -> &'static [&'static dyn ProbeModule] {
    &MODULES
}

/// The module scanning `protocol`.
pub fn module_for(protocol: Protocol) -> &'static dyn ProbeModule {
    match protocol {
        Protocol::Http => &HTTP_MODULE,
        Protocol::Https => &HTTPS_MODULE,
        Protocol::Ssh => &SSH_MODULE,
        Protocol::Icmp => &ICMP_MODULE,
        Protocol::Dns => &DNS_MODULE,
    }
}

/// Look a module up by its stable name ("HTTP", "ICMP", ...); `None`
/// for unregistered names.
pub fn by_name(name: &str) -> Option<&'static dyn ProbeModule> {
    modules().iter().copied().find(|m| m.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        let names: Vec<&str> = modules().iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["HTTP", "HTTPS", "SSH", "ICMP", "DNS"]);
        for m in modules() {
            assert_eq!(module_for(m.protocol()).name(), m.name());
            assert_eq!(by_name(m.name()).map(|x| x.name()), Some(m.name()));
            assert_eq!(m.protocol().name(), m.name());
        }
        assert!(by_name("GOPHER").is_none());
        assert!(by_name("http").is_none(), "names are case-sensitive keys");
    }

    #[test]
    fn paper_roster_is_the_stateful_tcp_trio() {
        for p in PAPER_PROTOCOLS {
            let m = module_for(p);
            assert!(!m.stateless());
            assert_eq!(m.wire_name(), "tcp_synscan");
        }
        assert!(module_for(Protocol::Icmp).stateless());
        assert!(module_for(Protocol::Dns).stateless());
    }

    #[test]
    fn wire_names_are_zmap_style() {
        let wire: Vec<&str> = modules().iter().map(|m| m.wire_name()).collect();
        assert_eq!(
            wire,
            vec![
                "tcp_synscan",
                "tcp_synscan",
                "tcp_synscan",
                "icmp_echoscan",
                "dns_udpscan"
            ]
        );
    }

    /// A network answering every module positively with validated
    /// replies, so module delivery can be exercised end to end.
    #[derive(Debug)]
    struct EchoAllNet;

    impl Network for EchoAllNet {
        fn syn(&self, _ctx: &ProbeCtx, probe: &TcpHeader) -> SynReply {
            SynReply::SynAck(TcpHeader::syn_ack_reply(probe, 7))
        }
        fn l7(&self, _ctx: &crate::target::L7Ctx, _request: &[u8]) -> crate::target::L7Reply {
            crate::target::L7Reply::Timeout
        }
        fn icmp(&self, _ctx: &ProbeCtx, probe: &IcmpEcho) -> IcmpReply {
            IcmpReply::EchoReply {
                ident: probe.ident,
                seq: probe.seq,
            }
        }
        fn udp(&self, _ctx: &ProbeCtx, payload: &[u8]) -> UdpReply {
            match dns::build_response(payload, dns::RCODE_NOERROR, &[0x01010101]) {
                Ok(resp) => UdpReply::Data(resp),
                Err(_) => UdpReply::Silent,
            }
        }
    }

    fn shot<'a>(validator: &'a Validator, m: &dyn ProbeModule) -> ProbeShot<'a> {
        ProbeShot {
            validator,
            sport: 40000,
            dport: m.port(),
            wire_check: true,
        }
    }

    fn ctx(m: &dyn ProbeModule) -> ProbeCtx {
        ProbeCtx {
            origin: 0,
            src_ip: 0x0a000001,
            dst: 0x08080808,
            protocol: m.protocol(),
            time_s: 1.0,
            probe_idx: 0,
            trial: 0,
        }
    }

    #[test]
    fn every_module_delivers_a_validated_positive() {
        let validator = Validator::from_seed(42);
        let net = EchoAllNet;
        for m in modules() {
            let verdict = m
                .deliver(&net, &shot(&validator, *m), &ctx(*m))
                .unwrap_or_else(|e| panic!("{}: {e}", m.name()));
            match verdict {
                ProbeVerdict::Positive(detail) => {
                    assert_eq!(detail.is_some(), m.stateless(), "{}", m.name());
                }
                v => panic!("{}: expected positive, got {v:?}", m.name()),
            }
        }
    }

    /// A network that mirrors *wrong* validation state back.
    #[derive(Debug)]
    struct SpoofNet;

    impl Network for SpoofNet {
        fn syn(&self, _ctx: &ProbeCtx, probe: &TcpHeader) -> SynReply {
            let mut h = TcpHeader::syn_ack_reply(probe, 7);
            h.ack = h.ack.wrapping_add(1); // no longer seq+1
            SynReply::SynAck(h)
        }
        fn l7(&self, _ctx: &crate::target::L7Ctx, _request: &[u8]) -> crate::target::L7Reply {
            crate::target::L7Reply::Timeout
        }
        fn icmp(&self, _ctx: &ProbeCtx, probe: &IcmpEcho) -> IcmpReply {
            IcmpReply::EchoReply {
                ident: probe.ident.wrapping_add(1),
                seq: probe.seq,
            }
        }
        fn udp(&self, _ctx: &ProbeCtx, payload: &[u8]) -> UdpReply {
            let Ok(mut q) = dns::parse_query(payload) else {
                return UdpReply::Silent;
            };
            q.txid = q.txid.wrapping_add(1);
            let Ok(spoofed) = dns::a_query(q.txid, &q.qname) else {
                return UdpReply::Silent;
            };
            match dns::build_response(&spoofed, 0, &[]) {
                Ok(resp) => UdpReply::Data(resp),
                Err(_) => UdpReply::Silent,
            }
        }
    }

    #[test]
    fn spoofed_replies_are_invalid_for_every_module() {
        let validator = Validator::from_seed(7);
        for m in modules() {
            let verdict = m
                .deliver(&SpoofNet, &shot(&validator, *m), &ctx(*m))
                .unwrap_or_else(|e| panic!("{}: {e}", m.name()));
            assert_eq!(verdict, ProbeVerdict::Invalid, "{}", m.name());
        }
    }

    #[test]
    fn negative_replies_classify_as_negative() {
        #[derive(Debug)]
        struct RefuseNet;
        impl Network for RefuseNet {
            fn syn(&self, _ctx: &ProbeCtx, probe: &TcpHeader) -> SynReply {
                SynReply::Rst(TcpHeader::rst_reply(probe))
            }
            fn l7(&self, _ctx: &crate::target::L7Ctx, _r: &[u8]) -> crate::target::L7Reply {
                crate::target::L7Reply::Timeout
            }
            fn icmp(&self, _ctx: &ProbeCtx, _probe: &IcmpEcho) -> IcmpReply {
                IcmpReply::Unreachable {
                    code: originscan_wire::icmp::CODE_PORT_UNREACHABLE,
                }
            }
            fn udp(&self, _ctx: &ProbeCtx, _payload: &[u8]) -> UdpReply {
                UdpReply::PortUnreachable
            }
        }
        let validator = Validator::from_seed(9);
        for m in modules() {
            let verdict = m
                .deliver(&RefuseNet, &shot(&validator, *m), &ctx(*m))
                .unwrap_or_else(|e| panic!("{}: {e}", m.name()));
            assert_eq!(verdict, ProbeVerdict::Negative, "{}", m.name());
        }
    }
}
