//! The boundary between the scanner and the network it probes.
//!
//! The scanner is generic over a [`Network`]: the live Internet for real
//! ZMap, or the deterministic simulated Internet in `originscan-netmodel`
//! here. The trait is synchronous and `&self` — implementations must be
//! pure functions of the probe context (plus their own precomputed state),
//! which is what makes whole experiments reproducible and trivially
//! parallelizable.

use originscan_wire::icmp::IcmpEcho;
use originscan_wire::tcp::TcpHeader;

/// Scanned protocols, one per registered probe module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// HTTP on TCP/80 (`GET /`).
    Http,
    /// HTTPS on TCP/443 (TLS 1.2 ClientHello → ServerHello).
    Https,
    /// SSH on TCP/22 (identification-string exchange).
    Ssh,
    /// ICMP echo (ping); no port.
    Icmp,
    /// DNS A-query over UDP/53.
    Dns,
}

impl Protocol {
    /// The destination port probed for this protocol.
    #[deprecated(note = "ports are probe-module metadata now; use \
                `probe::module_for(protocol).port()` so analyses do not \
                hardcode wire assumptions")]
    pub fn port(self) -> u16 {
        match self {
            Protocol::Http => 80,
            Protocol::Https => 443,
            Protocol::Ssh => 22,
            Protocol::Icmp => 0,
            Protocol::Dns => 53,
        }
    }

    /// All protocols the study scans, in the paper's order.
    #[deprecated(note = "hardcodes the paper's 3-protocol TCP roster; iterate \
                `probe::modules()` for every registered module, or use \
                `probe::PAPER_PROTOCOLS` where the paper's TCP trio is \
                really meant")]
    pub const ALL: [Protocol; 3] = [Protocol::Http, Protocol::Https, Protocol::Ssh];

    /// Short display name as used in the paper's tables (and as the
    /// store/telemetry protocol key).
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Http => "HTTP",
            Protocol::Https => "HTTPS",
            Protocol::Ssh => "SSH",
            Protocol::Icmp => "ICMP",
            Protocol::Dns => "DNS",
        }
    }
}

impl core::fmt::Display for Protocol {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything the network needs to know about one SYN probe.
#[derive(Debug, Clone, Copy)]
pub struct ProbeCtx {
    /// Opaque origin index assigned by the experiment runner.
    pub origin: u16,
    /// Which of the origin's source addresses sent this probe.
    pub src_ip: u32,
    /// Destination address (index into the simulated space).
    pub dst: u32,
    /// Protocol being scanned (fixes the destination port).
    pub protocol: Protocol,
    /// Simulated seconds since the start of the scan.
    pub time_s: f64,
    /// Probe sequence within the back-to-back burst (0 or 1).
    pub probe_idx: u8,
    /// Trial number (0-based).
    pub trial: u8,
}

/// What came back (to the scanner's NIC) in answer to a SYN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynReply {
    /// A SYN-ACK segment (possibly spoofed — the engine validates it).
    SynAck(TcpHeader),
    /// A RST segment: port closed or connection refused by a middlebox.
    Rst(TcpHeader),
    /// Nothing: host absent, probe or reply dropped, or silently filtered.
    Silent,
}

/// Context for an application-layer handshake attempt.
#[derive(Debug, Clone, Copy)]
pub struct L7Ctx {
    /// Opaque origin index.
    pub origin: u16,
    /// Source address used for the connection.
    pub src_ip: u32,
    /// Destination address.
    pub dst: u32,
    /// Protocol (and so destination port).
    pub protocol: Protocol,
    /// Simulated seconds since the start of the scan.
    pub time_s: f64,
    /// Trial number (0-based).
    pub trial: u8,
    /// Retry attempt number, 0 for the first try.
    pub attempt: u8,
    /// Origins concurrently scanning this host (the paper's §6: shared
    /// seeds mean all origins hit a host near-simultaneously, which raises
    /// OpenSSH `MaxStartups` refusal rates).
    pub concurrent_origins: u8,
}

/// How a TCP connection ended without application data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseKind {
    /// Peer sent RST after the TCP handshake (Alibaba's SSH blocking).
    Rst,
    /// Peer sent FIN-ACK after the TCP handshake (MaxStartups refusals).
    FinAck,
}

/// What the application-layer connection produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum L7Reply {
    /// Bytes from the server (status line / ServerHello / ident string).
    Data(Vec<u8>),
    /// The server closed the connection without sending data.
    ConnClosed(CloseKind),
    /// The connection timed out (SYN-ACKed at L4, then silence).
    Timeout,
}

/// What came back in answer to an ICMP echo request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpReply {
    /// An echo reply (the module validates ident/seq).
    EchoReply {
        /// Identifier mirrored from the request.
        ident: u16,
        /// Sequence mirrored from the request.
        seq: u16,
    },
    /// A destination-unreachable message from the host or a router.
    Unreachable {
        /// ICMP unreachable code.
        code: u8,
    },
    /// Nothing: host absent, probe or reply dropped, or filtered.
    Silent,
}

/// What came back in answer to a UDP probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UdpReply {
    /// Application payload bytes (e.g. a DNS response).
    Data(Vec<u8>),
    /// ICMP port unreachable: nothing listens on the port.
    PortUnreachable,
    /// Nothing: host absent, probe or reply dropped, or filtered.
    Silent,
}

/// A probed network: answers probes and application handshakes.
///
/// ICMP and UDP delivery have `Silent` defaults so TCP-only networks
/// (and test doubles) keep compiling unchanged; a network that models
/// those probe modules overrides them.
pub trait Network: Sync {
    /// Deliver `probe` (a SYN built by the engine) and return the reply.
    fn syn(&self, ctx: &ProbeCtx, probe: &TcpHeader) -> SynReply;

    /// Open a connection and send `request`; returns the server's answer.
    fn l7(&self, ctx: &L7Ctx, request: &[u8]) -> L7Reply;

    /// Deliver an ICMP echo request and return the reply.
    fn icmp(&self, _ctx: &ProbeCtx, _probe: &IcmpEcho) -> IcmpReply {
        IcmpReply::Silent
    }

    /// Deliver a UDP payload and return the reply.
    fn udp(&self, _ctx: &ProbeCtx, _payload: &[u8]) -> UdpReply {
        UdpReply::Silent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_match_paper() {
        assert_eq!(crate::probe::module_for(Protocol::Http).port(), 80);
        assert_eq!(crate::probe::module_for(Protocol::Https).port(), 443);
        assert_eq!(crate::probe::module_for(Protocol::Ssh).port(), 22);
        // The deprecated inherent port table must keep agreeing with the
        // registry for as long as it exists.
        #[allow(deprecated, clippy::disallowed_methods)]
        for m in crate::probe::modules() {
            assert_eq!(m.protocol().port(), m.port());
        }
    }

    #[test]
    fn names_and_order() {
        let names: Vec<&str> = crate::probe::PAPER_PROTOCOLS
            .iter()
            .map(|p| p.name())
            .collect();
        assert_eq!(names, vec!["HTTP", "HTTPS", "SSH"]);
        #[allow(deprecated)]
        {
            assert_eq!(Protocol::ALL, crate::probe::PAPER_PROTOCOLS);
        }
        assert_eq!(Protocol::Https.to_string(), "HTTPS");
        assert_eq!(Protocol::Icmp.to_string(), "ICMP");
        assert_eq!(Protocol::Dns.to_string(), "DNS");
    }
}
