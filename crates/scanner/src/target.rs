//! The boundary between the scanner and the network it probes.
//!
//! The scanner is generic over a [`Network`]: the live Internet for real
//! ZMap, or the deterministic simulated Internet in `originscan-netmodel`
//! here. The trait is synchronous and `&self` — implementations must be
//! pure functions of the probe context (plus their own precomputed state),
//! which is what makes whole experiments reproducible and trivially
//! parallelizable.

use originscan_wire::tcp::TcpHeader;

/// Scanned application protocols, with their well-known ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// HTTP on TCP/80 (`GET /`).
    Http,
    /// HTTPS on TCP/443 (TLS 1.2 ClientHello → ServerHello).
    Https,
    /// SSH on TCP/22 (identification-string exchange).
    Ssh,
}

impl Protocol {
    /// The destination port probed for this protocol.
    pub fn port(self) -> u16 {
        match self {
            Protocol::Http => 80,
            Protocol::Https => 443,
            Protocol::Ssh => 22,
        }
    }

    /// All protocols the study scans, in the paper's order.
    pub const ALL: [Protocol; 3] = [Protocol::Http, Protocol::Https, Protocol::Ssh];

    /// Short display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Http => "HTTP",
            Protocol::Https => "HTTPS",
            Protocol::Ssh => "SSH",
        }
    }
}

impl core::fmt::Display for Protocol {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything the network needs to know about one SYN probe.
#[derive(Debug, Clone, Copy)]
pub struct ProbeCtx {
    /// Opaque origin index assigned by the experiment runner.
    pub origin: u16,
    /// Which of the origin's source addresses sent this probe.
    pub src_ip: u32,
    /// Destination address (index into the simulated space).
    pub dst: u32,
    /// Protocol being scanned (fixes the destination port).
    pub protocol: Protocol,
    /// Simulated seconds since the start of the scan.
    pub time_s: f64,
    /// Probe sequence within the back-to-back burst (0 or 1).
    pub probe_idx: u8,
    /// Trial number (0-based).
    pub trial: u8,
}

/// What came back (to the scanner's NIC) in answer to a SYN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynReply {
    /// A SYN-ACK segment (possibly spoofed — the engine validates it).
    SynAck(TcpHeader),
    /// A RST segment: port closed or connection refused by a middlebox.
    Rst(TcpHeader),
    /// Nothing: host absent, probe or reply dropped, or silently filtered.
    Silent,
}

/// Context for an application-layer handshake attempt.
#[derive(Debug, Clone, Copy)]
pub struct L7Ctx {
    /// Opaque origin index.
    pub origin: u16,
    /// Source address used for the connection.
    pub src_ip: u32,
    /// Destination address.
    pub dst: u32,
    /// Protocol (and so destination port).
    pub protocol: Protocol,
    /// Simulated seconds since the start of the scan.
    pub time_s: f64,
    /// Trial number (0-based).
    pub trial: u8,
    /// Retry attempt number, 0 for the first try.
    pub attempt: u8,
    /// Origins concurrently scanning this host (the paper's §6: shared
    /// seeds mean all origins hit a host near-simultaneously, which raises
    /// OpenSSH `MaxStartups` refusal rates).
    pub concurrent_origins: u8,
}

/// How a TCP connection ended without application data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseKind {
    /// Peer sent RST after the TCP handshake (Alibaba's SSH blocking).
    Rst,
    /// Peer sent FIN-ACK after the TCP handshake (MaxStartups refusals).
    FinAck,
}

/// What the application-layer connection produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum L7Reply {
    /// Bytes from the server (status line / ServerHello / ident string).
    Data(Vec<u8>),
    /// The server closed the connection without sending data.
    ConnClosed(CloseKind),
    /// The connection timed out (SYN-ACKed at L4, then silence).
    Timeout,
}

/// A probed network: answers SYNs and application handshakes.
pub trait Network: Sync {
    /// Deliver `probe` (a SYN built by the engine) and return the reply.
    fn syn(&self, ctx: &ProbeCtx, probe: &TcpHeader) -> SynReply;

    /// Open a connection and send `request`; returns the server's answer.
    fn l7(&self, ctx: &L7Ctx, request: &[u8]) -> L7Reply;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_match_paper() {
        assert_eq!(Protocol::Http.port(), 80);
        assert_eq!(Protocol::Https.port(), 443);
        assert_eq!(Protocol::Ssh.port(), 22);
    }

    #[test]
    fn names_and_order() {
        let names: Vec<&str> = Protocol::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["HTTP", "HTTPS", "SSH"]);
        assert_eq!(Protocol::Https.to_string(), "HTTPS");
    }
}
