//! # originscan-scanner
//!
//! A ZMap + ZGrab style scanning pipeline, generic over the network it
//! probes.
//!
//! The paper's methodology (§2) runs, from each origin, a ZMap TCP SYN
//! scan of the full IPv4 space with 2 back-to-back probes per address and
//! a shared seed across origins, immediately followed by a ZGrab
//! application-layer handshake with every L4-responsive host. This crate
//! reimplements that pipeline:
//!
//! * [`cyclic`] — ZMap's O(1)-state pseudorandom address permutation over
//!   a multiplicative cyclic group, with shard support.
//! * [`blocklist`] — CIDR exclusion lists, synchronized across origins.
//! * [`rate`] — token-bucket pacing mapped onto simulated time.
//! * [`target`] — the [`target::Network`] trait the scanner probes
//!   through (implemented by `originscan-netmodel` for the simulated
//!   Internet), plus probe/reply types.
//! * [`probe`] — the probe-module plugin layer: a [`probe::ProbeModule`]
//!   per scan scenario (TCP SYN for the paper's trio, ICMP echo, DNS
//!   over UDP) with a registry, all sharing the permutation/pacing core.
//! * [`engine`] — the scan loop: stateless validation-tagged probes,
//!   validated-reply collection, L7 follow-up; plus supervised execution
//!   with fault hooks and mid-permutation checkpoint/resume.
//! * [`error`] — typed configuration and scan errors, so supervisors can
//!   react to failures instead of unwinding.
//! * [`zgrab`] — HTTP / TLS / SSH handshake drivers with the retry policy
//!   §6 of the paper evaluates.
//! * [`output`] — ZMap-style CSV serialization of scan records.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod blocklist;
pub mod cyclic;
pub mod engine;
pub mod error;
pub mod output;
pub mod probe;
pub mod rate;
pub mod resilience;
pub mod target;
pub mod zgrab;

pub use blocklist::{Blocklist, BlocklistError, Cidr};
pub use cyclic::Cycle;
pub use engine::{
    run_scan, run_scan_session, CheckpointStore, FaultAction, FaultCtx, FaultHook, HostScanRecord,
    ScanCheckpoint, ScanConfig, ScanOutput, ScanSession, ScanSummary,
};
pub use error::{ConfigError, ScanError};
pub use output::OutputError;
pub use probe::{ProbeModule, ProbeShot, ProbeVerdict, PAPER_PROTOCOLS};
pub use target::{
    CloseKind, IcmpReply, L7Ctx, L7Reply, Network, ProbeCtx, Protocol, SynReply, UdpReply,
};
pub use zgrab::{GrabResult, L7Detail, L7Outcome, SshSoftware};
