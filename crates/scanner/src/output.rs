//! Scan-result serialization, in the spirit of ZMap's CSV output.
//!
//! Real scanning pipelines persist per-host records and post-process them
//! offline; the paper's analyses are all post-processing over such files.
//! This module renders [`HostScanRecord`]s to a stable CSV schema and
//! parses them back, so scan outputs can be archived, diffed, and fed to
//! external tooling.

use crate::engine::HostScanRecord;
use crate::zgrab::{L7Detail, L7Outcome, SshSoftware};
use crate::CloseKind;
use originscan_store::{ScanSet, ScanSetStore, StoreError, StoreKey};
use originscan_wire::ipv4::{fmt_addr, parse_addr};
use std::path::{Component, Path, PathBuf};

/// The CSV header line.
pub const HEADER: &str = "saddr,synack_probes,rst,time_s,l7_status,l7_detail,attempts";

/// Render one record as a CSV line (no trailing newline).
pub fn to_csv(r: &HostScanRecord) -> String {
    let (status, detail) = match &r.l7 {
        L7Outcome::Success(L7Detail::Http { code }) => ("success", format!("http:{code}")),
        L7Outcome::Success(L7Detail::Tls { cipher }) => ("success", format!("tls:{cipher:04x}")),
        L7Outcome::Success(L7Detail::Ssh { software }) => (
            "success",
            format!(
                "ssh:{}",
                match software {
                    SshSoftware::OpenSsh => "openssh",
                    SshSoftware::Dropbear => "dropbear",
                    SshSoftware::Other => "other",
                }
            ),
        ),
        L7Outcome::Success(L7Detail::Icmp) => ("success", "icmp:echo".to_string()),
        L7Outcome::Success(L7Detail::Dns { rcode, answers }) => {
            ("success", format!("dns:{rcode}:{answers}"))
        }
        L7Outcome::ConnClosed(CloseKind::Rst) => ("closed-rst", String::new()),
        L7Outcome::ConnClosed(CloseKind::FinAck) => ("closed-fin", String::new()),
        L7Outcome::Timeout => ("timeout", String::new()),
        L7Outcome::ProtocolError => ("protocol-error", String::new()),
    };
    // `{}` on f64 is Rust's shortest round-trip representation, so the
    // timestamp survives parse() exactly.
    format!(
        "{},{},{},{},{},{},{}",
        fmt_addr(r.addr),
        r.synack_mask,
        u8::from(r.got_rst),
        r.response_time_s,
        status,
        detail,
        r.l7_attempts
    )
}

/// Render a whole scan (header + records).
pub fn to_csv_all(records: &[HostScanRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 48 + HEADER.len() + 1);
    out.push_str(HEADER);
    out.push('\n');
    for r in records {
        out.push_str(&to_csv(r));
        out.push('\n');
    }
    out
}

/// Parse one CSV line back into a record.
pub fn from_csv(line: &str) -> Option<HostScanRecord> {
    let mut f = line.split(',');
    let addr = parse_addr(f.next()?)?;
    let synack_mask: u8 = f.next()?.parse().ok()?;
    let got_rst = match f.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let response_time_s: f64 = f.next()?.parse().ok()?;
    let status = f.next()?;
    let detail = f.next()?;
    let l7_attempts: u8 = f.next()?.parse().ok()?;
    if f.next().is_some() {
        return None;
    }
    let l7 = match status {
        "success" => {
            let (kind, rest) = detail.split_once(':')?;
            match kind {
                "http" => L7Outcome::Success(L7Detail::Http {
                    code: rest.parse().ok()?,
                }),
                "tls" => L7Outcome::Success(L7Detail::Tls {
                    cipher: u16::from_str_radix(rest, 16).ok()?,
                }),
                "ssh" => L7Outcome::Success(L7Detail::Ssh {
                    software: match rest {
                        "openssh" => SshSoftware::OpenSsh,
                        "dropbear" => SshSoftware::Dropbear,
                        _ => SshSoftware::Other,
                    },
                }),
                "icmp" => {
                    if rest != "echo" {
                        return None;
                    }
                    L7Outcome::Success(L7Detail::Icmp)
                }
                "dns" => {
                    let (rcode, answers) = rest.split_once(':')?;
                    L7Outcome::Success(L7Detail::Dns {
                        rcode: rcode.parse().ok()?,
                        answers: answers.parse().ok()?,
                    })
                }
                _ => return None,
            }
        }
        "closed-rst" => L7Outcome::ConnClosed(CloseKind::Rst),
        "closed-fin" => L7Outcome::ConnClosed(CloseKind::FinAck),
        "timeout" => L7Outcome::Timeout,
        "protocol-error" => L7Outcome::ProtocolError,
        _ => return None,
    };
    Some(HostScanRecord {
        addr,
        synack_mask,
        got_rst,
        response_time_s,
        l7,
        l7_attempts,
    })
}

/// Parse a whole CSV document (skipping the header when present).
pub fn from_csv_all(text: &str) -> Vec<HostScanRecord> {
    text.lines()
        .filter(|l| !l.is_empty() && *l != HEADER)
        .filter_map(from_csv)
        .collect()
}

/// The scan's L7-success set as a compressed bitmap — the unit the
/// paper's set analyses consume.
pub fn to_scan_set(records: &[HostScanRecord]) -> ScanSet {
    records
        .iter()
        .filter(|r| r.l7_success())
        .map(|r| r.addr)
        .collect()
}

/// The L7-success set a single-probe scan would have produced (first
/// probe answered *and* handshake completed).
pub fn to_scan_set_one_probe(records: &[HostScanRecord]) -> ScanSet {
    records
        .iter()
        .filter(|r| r.l7_success() && (r.synack_mask & 1) != 0)
        .map(|r| r.addr)
        .collect()
}

/// Both archival renderings of one scan: the CSV document and a
/// single-entry serialized [`ScanSetStore`] holding its L7-success set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanArtifacts {
    /// CSV document (header + one line per record).
    pub csv: String,
    /// Serialized scan-set store (see `originscan-store`'s format docs).
    pub scan_set: Vec<u8>,
}

/// Render both artifacts for one `(protocol, trial, origin)` scan.
pub fn to_artifacts(
    protocol: &str,
    trial: u8,
    origin: u16,
    records: &[HostScanRecord],
) -> Result<ScanArtifacts, StoreError> {
    let mut store = ScanSetStore::new();
    store.insert(StoreKey::new(protocol, trial, origin), to_scan_set(records));
    Ok(ScanArtifacts {
        csv: to_csv_all(records),
        scan_set: store.to_bytes()?,
    })
}

/// Why artifacts could not be written to disk.
#[derive(Debug)]
pub enum OutputError {
    /// The output directory path is empty — almost always a forgotten
    /// config value, and on some platforms it silently resolves to the
    /// current directory, scattering artifacts wherever the process
    /// happened to start.
    EmptyDir,
    /// The output directory contains a `..` component. A relative
    /// escape turns "write under the results root" into "write
    /// anywhere", so it is refused rather than normalized.
    EscapingDir {
        /// The offending path, for the error message.
        dir: PathBuf,
    },
    /// Serializing the scan-set store failed.
    Store(StoreError),
    /// Creating the directory or writing a file failed.
    Io(std::io::Error),
}

impl std::fmt::Display for OutputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutputError::EmptyDir => write!(f, "output directory path is empty"),
            OutputError::EscapingDir { dir } => {
                write!(f, "output directory {} contains `..`", dir.display())
            }
            OutputError::Store(e) => write!(f, "serializing scan set: {e}"),
            OutputError::Io(e) => write!(f, "writing artifacts: {e}"),
        }
    }
}

impl std::error::Error for OutputError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OutputError::Store(e) => Some(e),
            OutputError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for OutputError {
    fn from(e: StoreError) -> Self {
        OutputError::Store(e)
    }
}

impl From<std::io::Error> for OutputError {
    fn from(e: std::io::Error) -> Self {
        OutputError::Io(e)
    }
}

/// Validate an artifact output directory: non-empty and free of `..`
/// components.
pub fn validate_output_dir(dir: &Path) -> Result<(), OutputError> {
    if dir.as_os_str().is_empty() {
        return Err(OutputError::EmptyDir);
    }
    if dir.components().any(|c| matches!(c, Component::ParentDir)) {
        return Err(OutputError::EscapingDir {
            dir: dir.to_path_buf(),
        });
    }
    Ok(())
}

/// Write both artifacts of one scan under `dir` (created if missing),
/// named `{protocol}-t{trial}-o{origin}.{csv,oscs}`. Returns the two
/// paths written, CSV first.
pub fn write_artifacts(
    dir: &Path,
    protocol: &str,
    trial: u8,
    origin: u16,
    records: &[HostScanRecord],
) -> Result<(PathBuf, PathBuf), OutputError> {
    validate_output_dir(dir)?;
    let artifacts = to_artifacts(protocol, trial, origin, records)?;
    std::fs::create_dir_all(dir)?;
    let stem = format!("{protocol}-t{trial}-o{origin}");
    let csv_path = dir.join(format!("{stem}.csv"));
    let set_path = dir.join(format!("{stem}.oscs"));
    std::fs::write(&csv_path, artifacts.csv.as_bytes())?;
    std::fs::write(&set_path, &artifacts.scan_set)?;
    Ok((csv_path, set_path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<HostScanRecord> {
        vec![
            HostScanRecord {
                addr: 0x0a000001,
                synack_mask: 0b11,
                got_rst: false,
                response_time_s: 12.5,
                l7: L7Outcome::Success(L7Detail::Http { code: 200 }),
                l7_attempts: 1,
            },
            HostScanRecord {
                addr: 0xc0a80101,
                synack_mask: 0b01,
                got_rst: false,
                response_time_s: 99.125,
                l7: L7Outcome::Success(L7Detail::Tls { cipher: 0xc02f }),
                l7_attempts: 1,
            },
            HostScanRecord {
                addr: 0x08080808,
                synack_mask: 0b10,
                got_rst: true,
                response_time_s: 0.0,
                l7: L7Outcome::ConnClosed(CloseKind::FinAck),
                l7_attempts: 3,
            },
            HostScanRecord {
                addr: 1,
                synack_mask: 0,
                got_rst: true,
                response_time_s: 7.0,
                l7: L7Outcome::Timeout,
                l7_attempts: 0,
            },
            HostScanRecord {
                addr: 2,
                synack_mask: 0b11,
                got_rst: false,
                response_time_s: 3.25,
                l7: L7Outcome::Success(L7Detail::Ssh {
                    software: SshSoftware::OpenSsh,
                }),
                l7_attempts: 2,
            },
            HostScanRecord {
                addr: 4,
                synack_mask: 0b01,
                got_rst: false,
                response_time_s: 0.5,
                l7: L7Outcome::Success(L7Detail::Icmp),
                l7_attempts: 0,
            },
            HostScanRecord {
                addr: 5,
                synack_mask: 0b10,
                got_rst: false,
                response_time_s: 0.75,
                l7: L7Outcome::Success(L7Detail::Dns {
                    rcode: 0,
                    answers: 2,
                }),
                l7_attempts: 0,
            },
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        for r in sample() {
            let line = to_csv(&r);
            let back = from_csv(&line).unwrap_or_else(|| panic!("parse {line}"));
            assert_eq!(back, r, "{line}");
        }
    }

    #[test]
    fn document_roundtrip() {
        let records = sample();
        let doc = to_csv_all(&records);
        assert!(doc.starts_with(HEADER));
        let back = from_csv_all(&doc);
        assert_eq!(back, records);
    }

    #[test]
    fn scan_sets_filter_by_success_and_probe() {
        let mut records = sample();
        // A host only the *second* probe reached: counts for the scan as
        // run, not for the simulated single-probe scan.
        records.push(HostScanRecord {
            addr: 3,
            synack_mask: 0b10,
            got_rst: false,
            response_time_s: 1.0,
            l7: L7Outcome::Success(L7Detail::Http { code: 200 }),
            l7_attempts: 1,
        });
        let set = to_scan_set(&records);
        assert_eq!(set.to_vec(), vec![2, 3, 4, 5, 0x0a000001, 0xc0a80101]);
        let one = to_scan_set_one_probe(&records);
        assert_eq!(one.to_vec(), vec![2, 4, 0x0a000001, 0xc0a80101]);
        assert_eq!(one.andnot_cardinality(&set), 0, "one-probe ⊆ two-probe");
    }

    #[test]
    fn artifacts_are_deterministic_and_loadable() {
        let records = sample();
        let a = to_artifacts("HTTP", 0, 3, &records).unwrap();
        let b = to_artifacts("HTTP", 0, 3, &records).unwrap();
        assert_eq!(a, b, "artifacts are a pure function of the records");
        assert!(a.csv.starts_with(HEADER));
        let store = originscan_store::ScanSetStore::from_bytes(&a.scan_set).unwrap();
        let key = StoreKey::new("HTTP", 0, 3);
        assert_eq!(store.get(&key).unwrap(), &to_scan_set(&records));
    }

    #[test]
    fn write_artifacts_rejects_bad_dirs() {
        let records = sample();
        // Empty path: typed error, nothing written to the cwd.
        let err = write_artifacts(Path::new(""), "HTTP", 0, 0, &records).unwrap_err();
        assert!(matches!(err, OutputError::EmptyDir), "{err}");
        // Any `..` component is an escape, wherever it sits.
        for dir in ["../out", "out/../../elsewhere", "a/.."] {
            let err = write_artifacts(Path::new(dir), "HTTP", 0, 0, &records).unwrap_err();
            assert!(
                matches!(err, OutputError::EscapingDir { .. }),
                "{dir}: {err}"
            );
        }
    }

    #[test]
    fn write_artifacts_roundtrips_via_disk() {
        let dir = std::env::temp_dir().join(format!("originscan-output-{}", std::process::id()));
        let records = sample();
        let (csv_path, set_path) = write_artifacts(&dir, "HTTP", 1, 4, &records).unwrap();
        assert!(csv_path.ends_with("HTTP-t1-o4.csv"));
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert_eq!(from_csv_all(&csv), records);
        let bytes = std::fs::read(&set_path).unwrap();
        let store = ScanSetStore::from_bytes(&bytes).unwrap();
        assert_eq!(
            store.get(&StoreKey::new("HTTP", 1, 4)).unwrap(),
            &to_scan_set(&records)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(from_csv("").is_none());
        assert!(from_csv("1.2.3.4,3,0").is_none());
        assert!(from_csv("nonsense,3,0,1.0,success,http:200,1").is_none());
        assert!(from_csv("1.2.3.4,3,2,1.0,success,http:200,1").is_none());
        assert!(from_csv("1.2.3.4,3,0,1.0,success,ftp:21,1").is_none());
        assert!(from_csv("1.2.3.4,3,0,1.0,success,http:200,1,extra").is_none());
        assert!(from_csv("1.2.3.4,3,0,1.0,success,icmp:ping,0").is_none());
        assert!(from_csv("1.2.3.4,3,0,1.0,success,dns:0,0").is_none());
        assert!(from_csv("1.2.3.4,3,0,1.0,success,dns:0:many,0").is_none());
    }
}
