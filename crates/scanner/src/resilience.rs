//! Adaptive scanner resilience: surviving defenders that block you.
//!
//! The paper's scanners are open-loop — they pace probes and record
//! whatever comes back, so a defender that starts dropping their probes
//! silently halves their coverage. This module closes the loop. A
//! [`Controller`] watches the reply stream for two blocking signals:
//!
//! - **RST saturation** — a defender that advertises its blocks (RST
//!   tarpits) resets *every* probe into the blocked AS, so the per-window
//!   RST fraction jumps far above the sparse closed-port background.
//! - **Response collapse** — a silent defender shows up as the responsive
//!   fraction falling well below the established (or prior) baseline.
//!
//! On a signal the controller reacts with the three countermeasures real
//! scan operators use, all bounded and deterministic:
//!
//! - **Rate backoff** with geometric steps and a floor, plus recovery
//!   after sustained healthy windows (the engine re-rates its
//!   [`crate::rate::Pacer`] at batch boundaries, keeping timestamps
//!   monotone).
//! - **Source rotation** through the origin's source-IP pool; defenders
//!   track (source IP, AS) pairs, so a fresh source gets fresh detectors.
//! - **Prefix deferral**: /24s that answered with RSTs while under
//!   suspicion are parked and re-probed in an end-of-scan tail pass,
//!   after block windows have lapsed.
//!
//! Everything is a pure function of the observed reply sequence — no RNG,
//! no wall clock — so a scan with adaptation enabled is exactly as
//! reproducible as one without.

use std::collections::BTreeMap;

/// Tuning knobs for the adaptive controller — the scanner-side
/// counterpart of `netmodel`'s aggression profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivePolicy {
    /// Addresses per observation window.
    pub window_addrs: u32,
    /// RST fraction within a window that signals active blocking.
    pub rst_signal_frac: f64,
    /// Prior expectation of the responsive fraction, used as the baseline
    /// before (and alongside) the observed one — a defender that blocks
    /// from the first window would otherwise poison the baseline.
    pub prior_frac: f64,
    /// Collapse threshold: a window is a blocking signal when its
    /// responsive fraction drops below `collapse_frac × baseline`.
    pub collapse_frac: f64,
    /// Rate multiplier applied per backoff level (geometric).
    pub backoff_factor: f64,
    /// Floor for the cumulative rate multiplier; backoff stops here.
    pub min_rate_mult: f64,
    /// Consecutive healthy windows before one backoff level is released.
    pub recovery_windows: u32,
    /// Rotate to the next source IP on every blocking signal.
    pub rotate_on_signal: bool,
    /// Park RST-ing /24s for the tail pass while backed off.
    pub defer_suspects: bool,
    /// Simulated seconds a suspect /24 stays quarantined.
    pub suspect_cooloff_s: f64,
    /// Upper bound on addresses parked for the tail pass.
    pub max_deferred: usize,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        Self {
            window_addrs: 256,
            rst_signal_frac: 0.35,
            prior_frac: 0.01,
            collapse_frac: 0.4,
            backoff_factor: 0.5,
            min_rate_mult: 1.0 / 64.0,
            recovery_windows: 8,
            rotate_on_signal: true,
            defer_suspects: true,
            suspect_cooloff_s: 7_200.0,
            max_deferred: 1 << 16,
        }
    }
}

/// The controller's complete mutable state — everything needed to resume
/// an adaptive scan from a checkpoint.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ControllerState {
    /// Current backoff level (0 = full configured rate).
    pub level: u32,
    /// Healthy windows since the last signal (resets on signal).
    pub healthy_streak: u32,
    /// Index into the source-IP pool currently in use.
    pub active_source: u32,
    /// Best responsive fraction observed at level 0.
    pub baseline_frac: f64,
    /// Addresses observed in the current window.
    pub win_addrs: u32,
    /// Responsive addresses in the current window.
    pub win_responsive: u32,
    /// RST-answering addresses in the current window.
    pub win_rst: u32,
    /// Quarantined /24 prefixes → simulated release time.
    pub suspects: BTreeMap<u32, f64>,
    /// Addresses parked for the end-of-scan tail pass, in probe order.
    pub deferred: Vec<u32>,
    /// Total backoff transitions.
    pub backoffs: u64,
    /// Total recovery transitions.
    pub recoveries: u64,
    /// Total source rotations.
    pub rotations: u64,
    /// Total addresses deferred (capped by `max_deferred`).
    pub deferred_total: u64,
}

/// What [`Controller::observe`] asked the engine to do, if anything.
/// Fields are independent — one window can trigger a backoff *and* a
/// rotation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Reaction {
    /// Entered a backoff level: `(level, cumulative rate multiplier)`.
    pub backoff: Option<(u32, f64)>,
    /// Released a backoff level: `(level, cumulative rate multiplier)`.
    pub recovered: Option<(u32, f64)>,
    /// Rotated to this source-IP index.
    pub rotated: Option<u32>,
    /// Newly quarantined /24: `(prefix, simulated release time)`.
    pub suspect: Option<(u32, f64)>,
}

impl Reaction {
    /// Did this observation change any engine-visible state?
    pub fn is_some(&self) -> bool {
        self.backoff.is_some()
            || self.recovered.is_some()
            || self.rotated.is_some()
            || self.suspect.is_some()
    }
}

/// The adaptive resilience controller. One per scan; the engine feeds it
/// every address outcome and applies the [`Reaction`]s it returns.
#[derive(Debug, Clone)]
pub struct Controller {
    policy: AdaptivePolicy,
    n_sources: u32,
    state: ControllerState,
}

impl Controller {
    /// A fresh controller over a pool of `n_sources` source IPs.
    pub fn new(policy: AdaptivePolicy, n_sources: u32) -> Self {
        assert!(n_sources > 0, "need at least one source IP");
        assert!(policy.window_addrs > 0, "window must be positive");
        assert!(
            policy.backoff_factor > 0.0 && policy.backoff_factor < 1.0,
            "backoff factor must shrink the rate"
        );
        Self {
            policy,
            n_sources,
            state: ControllerState::default(),
        }
    }

    /// Rebuild a controller from checkpointed state.
    pub fn from_state(policy: AdaptivePolicy, n_sources: u32, state: ControllerState) -> Self {
        let mut c = Self::new(policy, n_sources);
        c.state = state;
        c
    }

    /// The complete mutable state, for checkpointing.
    pub fn state(&self) -> &ControllerState {
        &self.state
    }

    /// The policy this controller runs.
    pub fn policy(&self) -> &AdaptivePolicy {
        &self.policy
    }

    /// Index into the source-IP pool the engine should send from now.
    pub fn source_index(&self) -> u32 {
        self.state.active_source
    }

    /// Cumulative rate multiplier for the current backoff level.
    pub fn rate_mult(&self) -> f64 {
        mult(&self.policy, self.state.level)
    }

    /// Should `addr` be parked for the tail pass instead of probed now?
    /// Quarantine applies while the /24's cooloff runs; parked addresses
    /// come back via [`Controller::take_deferred`].
    pub fn should_defer(&mut self, addr: u32, time_s: f64) -> bool {
        if !self.policy.defer_suspects {
            return false;
        }
        let released = match self.state.suspects.get(&(addr >> 8)) {
            None => return false,
            Some(&release_at) => time_s >= release_at,
        };
        if released {
            return false;
        }
        if self.state.deferred.len() >= self.policy.max_deferred {
            return false;
        }
        self.state.deferred.push(addr);
        self.state.deferred_total += 1;
        true
    }

    /// Take the parked addresses for the tail pass (clears the queue).
    pub fn take_deferred(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.state.deferred)
    }

    /// Record one address outcome. `responsive` is "any validated
    /// SYN-ACK"; `rst` is "validated RST". Returns the reactions the
    /// engine must apply before the next address.
    pub fn observe(&mut self, addr: u32, responsive: bool, rst: bool, time_s: f64) -> Reaction {
        let mut reaction = Reaction::default();
        let p = &self.policy;
        let st = &mut self.state;
        st.win_addrs += 1;
        if responsive {
            st.win_responsive += 1;
        }
        if rst {
            st.win_rst += 1;
            // Individual RSTs only become suspects once the window-level
            // evidence says we are being blocked; closed ports answer with
            // RSTs too, and quarantining those would shred baseline
            // coverage.
            if p.defer_suspects && st.level > 0 {
                let prefix = addr >> 8;
                let release_at = time_s + p.suspect_cooloff_s;
                if st.suspects.insert(prefix, release_at).is_none() {
                    reaction.suspect = Some((prefix, release_at));
                }
            }
        }
        if st.win_addrs < p.window_addrs {
            return reaction;
        }
        // Window closed: classify it.
        let frac = f64::from(st.win_responsive) / f64::from(st.win_addrs);
        let rst_frac = f64::from(st.win_rst) / f64::from(st.win_addrs);
        st.win_addrs = 0;
        st.win_responsive = 0;
        st.win_rst = 0;
        let baseline = st.baseline_frac.max(p.prior_frac);
        let blocked = rst_frac >= p.rst_signal_frac || frac < p.collapse_frac * baseline;
        if blocked {
            st.healthy_streak = 0;
            if mult(p, st.level + 1) >= p.min_rate_mult * (1.0 - 1e-12) {
                st.level += 1;
                st.backoffs += 1;
                reaction.backoff = Some((st.level, mult(p, st.level)));
            }
            if p.rotate_on_signal && self.n_sources > 1 {
                st.active_source = (st.active_source + 1) % self.n_sources;
                st.rotations += 1;
                reaction.rotated = Some(st.active_source);
            }
        } else if st.level == 0 {
            if frac > st.baseline_frac {
                st.baseline_frac = frac;
            }
        } else {
            st.healthy_streak += 1;
            if st.healthy_streak >= p.recovery_windows {
                st.healthy_streak = 0;
                st.level -= 1;
                st.recoveries += 1;
                reaction.recovered = Some((st.level, mult(p, st.level)));
            }
        }
        reaction
    }
}

/// Cumulative rate multiplier at backoff `level`.
fn mult(p: &AdaptivePolicy, level: u32) -> f64 {
    p.backoff_factor.powi(level.min(30) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_policy() -> AdaptivePolicy {
        AdaptivePolicy {
            window_addrs: 10,
            recovery_windows: 2,
            ..AdaptivePolicy::default()
        }
    }

    /// Feed `n` windows of identical outcomes.
    fn feed(c: &mut Controller, windows: u32, responsive: bool, rst: bool) -> Vec<Reaction> {
        let per = c.policy().window_addrs;
        let mut out = Vec::new();
        for i in 0..windows * per {
            out.push(c.observe(i, responsive, rst, f64::from(i)));
        }
        out
    }

    #[test]
    fn healthy_stream_never_reacts() {
        let mut c = Controller::new(quick_policy(), 4);
        let reactions = feed(&mut c, 20, true, false);
        assert!(reactions.iter().all(|r| !r.is_some()));
        assert_eq!(c.state().level, 0);
        assert_eq!(c.rate_mult(), 1.0);
    }

    #[test]
    fn rst_saturation_backs_off_and_rotates() {
        let mut c = Controller::new(quick_policy(), 4);
        feed(&mut c, 1, true, false); // establish baseline
        let reactions = feed(&mut c, 1, false, true);
        let last = reactions.last().copied().unwrap_or_default();
        assert_eq!(last.backoff, Some((1, 0.5)));
        assert_eq!(last.rotated, Some(1));
        assert_eq!(c.state().backoffs, 1);
        assert_eq!(c.state().rotations, 1);
    }

    #[test]
    fn silence_collapse_backs_off_via_prior() {
        // Even with no baseline established (blocked from the very first
        // window), total silence under the prior triggers backoff.
        let mut c = Controller::new(quick_policy(), 2);
        let reactions = feed(&mut c, 1, false, false);
        let last = reactions.last().copied().unwrap_or_default();
        assert_eq!(last.backoff, Some((1, 0.5)));
    }

    #[test]
    fn backoff_respects_floor() {
        let mut p = quick_policy();
        p.min_rate_mult = 0.25;
        let mut c = Controller::new(p, 1);
        feed(&mut c, 10, false, true);
        assert_eq!(c.state().level, 2, "floor at 0.5^2");
        assert_eq!(c.rate_mult(), 0.25);
        assert_eq!(c.state().backoffs, 2);
    }

    #[test]
    fn recovery_releases_levels_after_healthy_windows() {
        let mut c = Controller::new(quick_policy(), 1);
        feed(&mut c, 1, true, false); // baseline = 1.0
        feed(&mut c, 2, false, true); // two levels down
        assert_eq!(c.state().level, 2);
        let reactions = feed(&mut c, 2, true, false);
        let last = reactions.last().copied().unwrap_or_default();
        assert_eq!(last.recovered, Some((1, 0.5)));
        feed(&mut c, 2, true, false);
        assert_eq!(c.state().level, 0);
        assert_eq!(c.rate_mult(), 1.0);
        assert_eq!(c.state().recoveries, 2);
    }

    #[test]
    fn rsts_under_suspicion_quarantine_their_slash24() {
        let mut c = Controller::new(quick_policy(), 2);
        feed(&mut c, 1, false, true); // level 1
        assert_eq!(c.state().level, 1);
        let r = c.observe(0x0102_0304, false, true, 100.0);
        assert_eq!(r.suspect, Some((0x0001_0203, 7_300.0)));
        // Same /24 now defers until the cooloff lapses.
        assert!(c.should_defer(0x0102_03ff, 200.0));
        assert!(!c.should_defer(0x0102_03ff, 8_000.0));
        // Other prefixes pass.
        assert!(!c.should_defer(0x0a00_0001, 200.0));
        let deferred = c.take_deferred();
        assert_eq!(deferred, vec![0x0102_03ff]);
        assert_eq!(c.state().deferred_total, 1);
        assert!(c.take_deferred().is_empty());
    }

    #[test]
    fn rsts_at_level_zero_are_not_suspects() {
        // Closed ports RST legitimately; without window-level evidence
        // nothing is quarantined.
        let mut c = Controller::new(quick_policy(), 2);
        let r = c.observe(0x0102_0304, false, true, 100.0);
        assert_eq!(r.suspect, None);
        assert!(!c.should_defer(0x0102_03ff, 200.0));
    }

    #[test]
    fn deferral_is_bounded() {
        let mut p = quick_policy();
        p.max_deferred = 3;
        let mut c = Controller::new(p, 1);
        feed(&mut c, 1, false, true);
        for a in 0..10u32 {
            c.observe(a * 256, false, true, 50.0);
        }
        let mut parked = 0;
        for a in 0..10u32 {
            if c.should_defer(a * 256 + 1, 60.0) {
                parked += 1;
            }
        }
        assert_eq!(parked, 3);
    }

    #[test]
    fn state_roundtrip_resumes_identically() {
        let mut a = Controller::new(quick_policy(), 4);
        feed(&mut a, 1, true, false);
        feed(&mut a, 2, false, true);
        let snap = a.state().clone();
        let mut b = Controller::from_state(quick_policy(), 4, snap);
        for i in 0..200u32 {
            let ra = a.observe(i, i % 7 == 0, i % 11 == 0, f64::from(i));
            let rb = b.observe(i, i % 7 == 0, i % 11 == 0, f64::from(i));
            assert_eq!(ra, rb, "step {i}");
        }
        assert_eq!(a.state(), b.state());
    }
}
