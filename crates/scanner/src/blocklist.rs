//! CIDR blocklists.
//!
//! The paper's methodology §2: *"We also synchronized blocklists by
//! combining the IP ranges that previously requested exclusion from any
//! scan origin"* — 17.8 M addresses (0.5 % of public IPv4) were excluded
//! from every origin's scan. This module provides the shared blocklist
//! structure: parse CIDR entries, merge overlaps, O(log n) membership.

use std::str::FromStr;

/// An inclusive address interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Range {
    lo: u32,
    hi: u32,
}

/// A set of blocked IPv4 addresses built from CIDR prefixes.
#[derive(Debug, Clone, Default)]
pub struct Blocklist {
    /// Sorted, non-overlapping, non-adjacent ranges.
    ranges: Vec<Range>,
}

/// A parsed CIDR prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cidr {
    /// Network base address (host order, masked).
    pub base: u32,
    /// Prefix length 0..=32.
    pub len: u8,
}

impl Cidr {
    /// Construct, masking `base` down to the prefix.
    pub fn new(base: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length out of range");
        Self { base: base & Self::mask(len), len }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// First address of the prefix.
    pub fn first(&self) -> u32 {
        self.base
    }

    /// Last address of the prefix.
    pub fn last(&self) -> u32 {
        self.base | !Self::mask(self.len)
    }

    /// Number of addresses covered.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }
}

impl FromStr for Cidr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let (addr_s, len_s) = s.split_once('/').ok_or_else(|| format!("missing '/': {s}"))?;
        let addr = originscan_wire::ipv4::parse_addr(addr_s)
            .ok_or_else(|| format!("bad address: {addr_s}"))?;
        let len: u8 = len_s.parse().map_err(|_| format!("bad prefix length: {len_s}"))?;
        if len > 32 {
            return Err(format!("prefix length > 32: {len}"));
        }
        Ok(Cidr::new(addr, len))
    }
}

impl Blocklist {
    /// An empty blocklist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from CIDR entries, merging overlaps.
    pub fn from_cidrs(cidrs: impl IntoIterator<Item = Cidr>) -> Self {
        let mut bl = Self::new();
        for c in cidrs {
            bl.insert(c);
        }
        bl
    }

    /// Parse one entry per line (comments after `#` and blanks ignored) —
    /// the format ZMap's `--blocklist-file` accepts.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cidrs = Vec::new();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            cidrs.push(line.parse()?);
        }
        Ok(Self::from_cidrs(cidrs))
    }

    /// Insert a prefix, merging with existing ranges.
    pub fn insert(&mut self, cidr: Cidr) {
        let (mut lo, mut hi) = (cidr.first(), cidr.last());
        // Find all ranges overlapping or adjacent to [lo, hi] and merge.
        let start = self.ranges.partition_point(|r| r.hi < lo.saturating_sub(1));
        let mut end = start;
        while end < self.ranges.len() && self.ranges[end].lo <= hi.saturating_add(1) {
            lo = lo.min(self.ranges[end].lo);
            hi = hi.max(self.ranges[end].hi);
            end += 1;
        }
        self.ranges.splice(start..end, [Range { lo, hi }]);
    }

    /// Is `addr` blocked?
    pub fn contains(&self, addr: u32) -> bool {
        let i = self.ranges.partition_point(|r| r.hi < addr);
        i < self.ranges.len() && self.ranges[i].lo <= addr
    }

    /// Total number of blocked addresses.
    pub fn len(&self) -> u64 {
        self.ranges.iter().map(|r| u64::from(r.hi - r.lo) + 1).sum()
    }

    /// True when nothing is blocked.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Union with another blocklist (the paper's cross-origin
    /// synchronization: any origin's exclusions apply to all).
    pub fn merge(&mut self, other: &Blocklist) {
        for r in &other.ranges {
            // Re-insert as a synthetic /32.. range by lo..hi.
            let (mut lo, mut hi) = (r.lo, r.hi);
            let start = self.ranges.partition_point(|x| x.hi < lo.saturating_sub(1));
            let mut end = start;
            while end < self.ranges.len() && self.ranges[end].lo <= hi.saturating_add(1) {
                lo = lo.min(self.ranges[end].lo);
                hi = hi.max(self.ranges[end].hi);
                end += 1;
            }
            self.ranges.splice(start..end, [Range { lo, hi }]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cidr_parse_and_bounds() {
        let c: Cidr = "192.168.1.0/24".parse().unwrap();
        assert_eq!(c.first(), 0xc0a80100);
        assert_eq!(c.last(), 0xc0a801ff);
        assert_eq!(c.size(), 256);
        let host: Cidr = "10.0.0.7/32".parse().unwrap();
        assert_eq!(host.first(), host.last());
        let all: Cidr = "0.0.0.0/0".parse().unwrap();
        assert_eq!(all.size(), 1 << 32);
    }

    #[test]
    fn cidr_masks_host_bits() {
        let c = Cidr::new(0xc0a801ff, 24);
        assert_eq!(c.base, 0xc0a80100);
    }

    #[test]
    fn bad_cidrs_rejected() {
        assert!("192.168.1.0".parse::<Cidr>().is_err());
        assert!("192.168.1.0/33".parse::<Cidr>().is_err());
        assert!("299.0.0.1/8".parse::<Cidr>().is_err());
        assert!("x/8".parse::<Cidr>().is_err());
    }

    #[test]
    fn membership() {
        let bl = Blocklist::parse("10.0.0.0/8\n192.168.0.0/16 # rfc1918\n").unwrap();
        assert!(bl.contains(0x0a123456));
        assert!(bl.contains(0xc0a80000));
        assert!(!bl.contains(0x08080808));
        assert_eq!(bl.len(), (1 << 24) + (1 << 16));
    }

    #[test]
    fn overlapping_prefixes_merge() {
        let mut bl = Blocklist::new();
        bl.insert(Cidr::new(0x0a000000, 24));
        bl.insert(Cidr::new(0x0a000000, 25)); // subset
        bl.insert(Cidr::new(0x0a000100, 24)); // adjacent
        assert_eq!(bl.len(), 512);
        assert_eq!(bl.ranges.len(), 1, "adjacent ranges coalesce");
    }

    #[test]
    fn merge_unions() {
        let a = Blocklist::parse("1.0.0.0/24").unwrap();
        let mut b = Blocklist::parse("2.0.0.0/24").unwrap();
        b.merge(&a);
        assert!(b.contains(0x01000001) && b.contains(0x02000001));
        assert_eq!(b.len(), 512);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let bl = Blocklist::parse("# header\n\n 5.5.5.0/30 # trailing\n").unwrap();
        assert_eq!(bl.len(), 4);
    }

    #[test]
    fn empty_blocklist() {
        let bl = Blocklist::new();
        assert!(bl.is_empty());
        assert!(!bl.contains(0));
        assert!(!bl.contains(u32::MAX));
    }
}
