//! CIDR blocklists.
//!
//! The paper's methodology §2: *"We also synchronized blocklists by
//! combining the IP ranges that previously requested exclusion from any
//! scan origin"* — 17.8 M addresses (0.5 % of public IPv4) were excluded
//! from every origin's scan. This module provides the shared blocklist
//! structure: parse CIDR entries, merge overlaps, O(log n) membership.

use std::fmt;
use std::str::FromStr;

/// Why a blocklist (or one CIDR entry) failed to parse.
///
/// Carries the offending line so operators can fix the exclusion file —
/// the paper's methodology hinges on every origin sharing an identical
/// blocklist, so a silently dropped entry would desynchronize origins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlocklistError {
    /// Entry has no `/` separating address and prefix length.
    MissingSlash {
        /// The offending entry.
        entry: String,
    },
    /// The address part is not a dotted quad.
    BadAddress {
        /// The offending address text.
        addr: String,
    },
    /// The prefix length is not an integer.
    BadPrefixLen {
        /// The offending prefix-length text.
        len: String,
    },
    /// The prefix length exceeds 32.
    PrefixTooLong {
        /// The out-of-range length.
        len: u8,
    },
    /// An entry on `line` (1-based) failed to parse.
    Line {
        /// 1-based line number in the blocklist text.
        line: usize,
        /// The underlying entry error.
        cause: Box<BlocklistError>,
    },
}

impl fmt::Display for BlocklistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlocklistError::MissingSlash { entry } => {
                write!(
                    f,
                    "blocklist entry {entry:?} is missing the '/' prefix separator"
                )
            }
            BlocklistError::BadAddress { addr } => {
                write!(f, "blocklist entry has malformed IPv4 address {addr:?}")
            }
            BlocklistError::BadPrefixLen { len } => {
                write!(f, "blocklist entry has non-numeric prefix length {len:?}")
            }
            BlocklistError::PrefixTooLong { len } => {
                write!(f, "blocklist prefix length /{len} exceeds /32")
            }
            BlocklistError::Line { line, cause } => {
                write!(f, "blocklist line {line}: {cause}")
            }
        }
    }
}

impl std::error::Error for BlocklistError {}

/// An inclusive address interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Range {
    lo: u32,
    hi: u32,
}

/// A set of blocked IPv4 addresses built from CIDR prefixes.
#[derive(Debug, Clone, Default)]
pub struct Blocklist {
    /// Sorted, non-overlapping, non-adjacent ranges.
    ranges: Vec<Range>,
}

/// A parsed CIDR prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cidr {
    /// Network base address (host order, masked).
    pub base: u32,
    /// Prefix length 0..=32.
    pub len: u8,
}

impl Cidr {
    /// Construct, masking `base` down to the prefix.
    pub fn new(base: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length out of range");
        Self {
            base: base & Self::mask(len),
            len,
        }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// First address of the prefix.
    pub fn first(&self) -> u32 {
        self.base
    }

    /// Last address of the prefix.
    pub fn last(&self) -> u32 {
        self.base | !Self::mask(self.len)
    }

    /// Number of addresses covered.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }
}

impl FromStr for Cidr {
    type Err = BlocklistError;

    fn from_str(s: &str) -> Result<Self, BlocklistError> {
        let (addr_s, len_s) = s
            .split_once('/')
            .ok_or_else(|| BlocklistError::MissingSlash {
                entry: s.to_string(),
            })?;
        let addr = originscan_wire::ipv4::parse_addr(addr_s).ok_or_else(|| {
            BlocklistError::BadAddress {
                addr: addr_s.to_string(),
            }
        })?;
        let len: u8 = len_s.parse().map_err(|_| BlocklistError::BadPrefixLen {
            len: len_s.to_string(),
        })?;
        if len > 32 {
            return Err(BlocklistError::PrefixTooLong { len });
        }
        Ok(Cidr::new(addr, len))
    }
}

impl Blocklist {
    /// An empty blocklist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from CIDR entries, merging overlaps.
    pub fn from_cidrs(cidrs: impl IntoIterator<Item = Cidr>) -> Self {
        let mut bl = Self::new();
        for c in cidrs {
            bl.insert(c);
        }
        bl
    }

    /// Parse one entry per line (comments after `#` and blanks ignored) —
    /// the format ZMap's `--blocklist-file` accepts. Errors carry the
    /// 1-based line number and the malformed entry.
    pub fn parse(text: &str) -> Result<Self, BlocklistError> {
        let mut cidrs = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let cidr: Cidr = line.parse().map_err(|cause| BlocklistError::Line {
                line: idx + 1,
                cause: Box::new(cause),
            })?;
            cidrs.push(cidr);
        }
        Ok(Self::from_cidrs(cidrs))
    }

    /// Insert a prefix, merging with existing ranges.
    pub fn insert(&mut self, cidr: Cidr) {
        let (mut lo, mut hi) = (cidr.first(), cidr.last());
        // Find all ranges overlapping or adjacent to [lo, hi] and merge.
        let start = self.ranges.partition_point(|r| r.hi < lo.saturating_sub(1));
        let mut end = start;
        while end < self.ranges.len() && self.ranges[end].lo <= hi.saturating_add(1) {
            lo = lo.min(self.ranges[end].lo);
            hi = hi.max(self.ranges[end].hi);
            end += 1;
        }
        self.ranges.splice(start..end, [Range { lo, hi }]);
    }

    /// Is `addr` blocked?
    pub fn contains(&self, addr: u32) -> bool {
        let i = self.ranges.partition_point(|r| r.hi < addr);
        i < self.ranges.len() && self.ranges[i].lo <= addr
    }

    /// Total number of blocked addresses.
    pub fn len(&self) -> u64 {
        self.ranges.iter().map(|r| u64::from(r.hi - r.lo) + 1).sum()
    }

    /// True when nothing is blocked.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Union with another blocklist (the paper's cross-origin
    /// synchronization: any origin's exclusions apply to all).
    pub fn merge(&mut self, other: &Blocklist) {
        for r in &other.ranges {
            // Re-insert as a synthetic /32.. range by lo..hi.
            let (mut lo, mut hi) = (r.lo, r.hi);
            let start = self.ranges.partition_point(|x| x.hi < lo.saturating_sub(1));
            let mut end = start;
            while end < self.ranges.len() && self.ranges[end].lo <= hi.saturating_add(1) {
                lo = lo.min(self.ranges[end].lo);
                hi = hi.max(self.ranges[end].hi);
                end += 1;
            }
            self.ranges.splice(start..end, [Range { lo, hi }]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cidr_parse_and_bounds() {
        let c: Cidr = "192.168.1.0/24".parse().unwrap();
        assert_eq!(c.first(), 0xc0a80100);
        assert_eq!(c.last(), 0xc0a801ff);
        assert_eq!(c.size(), 256);
        let host: Cidr = "10.0.0.7/32".parse().unwrap();
        assert_eq!(host.first(), host.last());
        let all: Cidr = "0.0.0.0/0".parse().unwrap();
        assert_eq!(all.size(), 1 << 32);
    }

    #[test]
    fn cidr_masks_host_bits() {
        let c = Cidr::new(0xc0a801ff, 24);
        assert_eq!(c.base, 0xc0a80100);
    }

    #[test]
    fn bad_cidrs_rejected() {
        assert_eq!(
            "192.168.1.0".parse::<Cidr>(),
            Err(BlocklistError::MissingSlash {
                entry: "192.168.1.0".into()
            })
        );
        assert_eq!(
            "192.168.1.0/33".parse::<Cidr>(),
            Err(BlocklistError::PrefixTooLong { len: 33 })
        );
        assert_eq!(
            "299.0.0.1/8".parse::<Cidr>(),
            Err(BlocklistError::BadAddress {
                addr: "299.0.0.1".into()
            })
        );
        assert_eq!(
            "x/8".parse::<Cidr>(),
            Err(BlocklistError::BadAddress { addr: "x".into() })
        );
        assert_eq!(
            "1.0.0.0/y".parse::<Cidr>(),
            Err(BlocklistError::BadPrefixLen { len: "y".into() })
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = Blocklist::parse("10.0.0.0/8\n# fine\nbogus\n").unwrap_err();
        match &err {
            BlocklistError::Line { line, cause } => {
                assert_eq!(*line, 3);
                assert!(matches!(**cause, BlocklistError::MissingSlash { .. }));
            }
            other => panic!("unexpected error {other:?}"),
        }
        let rendered = err.to_string();
        assert!(rendered.contains("line 3"), "{rendered}");
        assert!(rendered.contains("bogus"), "{rendered}");
    }

    #[test]
    fn membership() {
        let bl = Blocklist::parse("10.0.0.0/8\n192.168.0.0/16 # rfc1918\n").unwrap();
        assert!(bl.contains(0x0a123456));
        assert!(bl.contains(0xc0a80000));
        assert!(!bl.contains(0x08080808));
        assert_eq!(bl.len(), (1 << 24) + (1 << 16));
    }

    #[test]
    fn overlapping_prefixes_merge() {
        let mut bl = Blocklist::new();
        bl.insert(Cidr::new(0x0a000000, 24));
        bl.insert(Cidr::new(0x0a000000, 25)); // subset
        bl.insert(Cidr::new(0x0a000100, 24)); // adjacent
        assert_eq!(bl.len(), 512);
        assert_eq!(bl.ranges.len(), 1, "adjacent ranges coalesce");
    }

    #[test]
    fn merge_unions() {
        let a = Blocklist::parse("1.0.0.0/24").unwrap();
        let mut b = Blocklist::parse("2.0.0.0/24").unwrap();
        b.merge(&a);
        assert!(b.contains(0x01000001) && b.contains(0x02000001));
        assert_eq!(b.len(), 512);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let bl = Blocklist::parse("# header\n\n 5.5.5.0/30 # trailing\n").unwrap();
        assert_eq!(bl.len(), 4);
    }

    #[test]
    fn empty_blocklist() {
        let bl = Blocklist::new();
        assert!(bl.is_empty());
        assert!(!bl.contains(0));
        assert!(!bl.contains(u32::MAX));
    }
}
