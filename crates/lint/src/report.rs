//! Findings output and the new-findings baseline.
//!
//! The interprocedural passes can surface long-standing sites whose fix
//! is a scheduled refactor (e.g. the serve tier's lock-held store reads,
//! slated for the lock-free snapshot redesign). Those are recorded in a
//! checked-in baseline keyed by *fingerprint* — rule, file, and a
//! line-number-free anchor — so CI fails only when a **new** finding
//! appears, and unrelated edits shifting line numbers never churn the
//! file. `--json` renders the same findings machine-readably for the CI
//! artifact.

use std::collections::BTreeSet;
use std::io;
use std::path::Path;

use crate::Violation;

/// Assign a stable fingerprint to every violation:
/// `{rule}@{file}@{anchor}`, with a `#n` counter appended to repeats so
/// two identical sites in one function stay distinguishable.
pub fn assign_fingerprints(violations: &mut [Violation]) {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for v in violations.iter_mut() {
        let anchor = if v.anchor.is_empty() {
            // Per-file rules carry no anchor; fall back to the message
            // head, which is line-free.
            v.msg.split(" at line").next().unwrap_or(&v.msg).to_string()
        } else {
            v.anchor.clone()
        };
        let base = format!("{}@{}@{}", v.rule, v.file, anchor);
        let mut fp = base.clone();
        let mut n = 1;
        while !seen.insert(fp.clone()) {
            n += 1;
            fp = format!("{base}#{n}");
        }
        v.fingerprint = fp;
    }
}

/// Escape a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a JSON array (stable field order, one object per
/// line, no trailing newline inside the array).
pub fn to_json(violations: &[Violation], new_fps: &BTreeSet<String>) -> String {
    let mut out = String::from("[\n");
    for (i, v) in violations.iter().enumerate() {
        let chain = v
            .chain
            .iter()
            .map(|c| format!("\"{}\"", json_escape(c)))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "  {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"msg\":\"{}\",\"chain\":[{}],\"fingerprint\":\"{}\",\"baselined\":{}}}",
            json_escape(v.rule),
            json_escape(&v.file),
            v.line,
            json_escape(&v.msg),
            chain,
            json_escape(&v.fingerprint),
            !new_fps.contains(&v.fingerprint),
        ));
        if i + 1 < violations.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// The checked-in set of accepted finding fingerprints.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    /// Accepted fingerprints.
    pub entries: BTreeSet<String>,
}

impl Baseline {
    /// Parse a baseline file: one fingerprint per line, `#` comments and
    /// blank lines ignored.
    pub fn parse(text: &str) -> Baseline {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        Baseline { entries }
    }

    /// Load from disk; a missing file is an empty baseline.
    pub fn load(path: &Path) -> io::Result<Baseline> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(Baseline::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(e),
        }
    }

    /// Split current findings into (new fingerprints, stale baseline
    /// entries that no longer fire).
    pub fn diff(&self, violations: &[Violation]) -> (BTreeSet<String>, BTreeSet<String>) {
        let current: BTreeSet<String> = violations.iter().map(|v| v.fingerprint.clone()).collect();
        let new = current.difference(&self.entries).cloned().collect();
        let stale = self.entries.difference(&current).cloned().collect();
        (new, stale)
    }

    /// Render a fresh baseline accepting every current finding.
    pub fn render(violations: &[Violation]) -> String {
        let mut out = String::new();
        out.push_str("# originscan-lint baseline — accepted findings, one fingerprint per line.\n");
        out.push_str("# Regenerate with: cargo run -p originscan-lint -- --write-baseline\n");
        out.push_str("# CI fails only on findings NOT listed here; keep every entry justified.\n");
        let fps: BTreeSet<&str> = violations.iter().map(|v| v.fingerprint.as_str()).collect();
        for fp in fps {
            out.push_str(fp);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, file: &str, anchor: &str) -> Violation {
        Violation {
            file: file.to_string(),
            line: 1,
            rule,
            msg: "m".to_string(),
            chain: Vec::new(),
            anchor: anchor.to_string(),
            fingerprint: String::new(),
        }
    }

    #[test]
    fn fingerprints_are_stable_and_deduped() {
        let mut vs = vec![
            v("reach-panic", "a.rs", "f/x"),
            v("reach-panic", "a.rs", "f/x"),
            v("det-taint", "b.rs", "g/y"),
        ];
        assign_fingerprints(&mut vs);
        assert_eq!(vs[0].fingerprint, "reach-panic@a.rs@f/x");
        assert_eq!(vs[1].fingerprint, "reach-panic@a.rs@f/x#2");
        assert_eq!(vs[2].fingerprint, "det-taint@b.rs@g/y");
    }

    #[test]
    fn baseline_diff_finds_new_and_stale() {
        let mut vs = vec![v("reach-panic", "a.rs", "f/x")];
        assign_fingerprints(&mut vs);
        let base = Baseline::parse("# c\nreach-panic@gone.rs@h/z\n");
        let (new, stale) = base.diff(&vs);
        assert_eq!(new.len(), 1);
        assert!(new.contains("reach-panic@a.rs@f/x"));
        assert_eq!(stale.len(), 1);
        assert!(stale.contains("reach-panic@gone.rs@h/z"));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_output_is_wellformed_enough() {
        let mut vs = vec![v("reach-panic", "a.rs", "f/x")];
        assign_fingerprints(&mut vs);
        let js = to_json(&vs, &BTreeSet::new());
        assert!(js.starts_with("[\n"));
        assert!(js.ends_with(']'));
        assert!(js.contains("\"rule\":\"reach-panic\""));
        assert!(js.contains("\"baselined\":true"));
    }
}
