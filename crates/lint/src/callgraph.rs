//! The cross-crate call graph: call-site extraction from function body
//! token streams, name resolution against the workspace symbol table,
//! and multi-source shortest-path search (for "shortest call chain"
//! diagnostics).
//!
//! Resolution is deliberately conservative in both directions and the
//! asymmetry is chosen per call form:
//!
//! * **Path calls** (`module::helper(…)`, `Type::assoc(…)`) resolve by
//!   suffix match against the symbol table, preferring the caller's own
//!   crate — mirroring how `rustc` would resolve them.
//! * **Bare calls** (`helper(…)`) resolve same-module → same-crate →
//!   `use`-imported. A bare call can never reach another crate without
//!   an import, so an unresolved bare name is treated as `std` and
//!   dropped — this is what makes shadowed function names safe.
//! * **Method calls** (`x.probe(…)`) resolve through a light local type
//!   map when the receiver's type is annotated nearby; otherwise they
//!   link to *every* workspace method of that name (sound for trait
//!   dispatch) unless the name collides with the `std` prelude
//!   ([`COMMON_METHODS`]), where linking everything would drown the
//!   graph in false edges.

use crate::lexer::{Tok, TokKind};
use crate::parse::{FnDef, SourceFile, Workspace, KEYWORDS};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Callee function index into [`Workspace::fns`].
    pub callee: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
}

/// The workspace call graph, indexed like [`Workspace::fns`].
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Outgoing resolved edges per function, in body order.
    pub edges: Vec<Vec<Edge>>,
}

/// Method names so common in `std` that an untyped receiver must not
/// link to same-named workspace methods: the false edges would connect
/// every `Vec`/`BTreeMap` call site to unrelated code.
pub const COMMON_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clone",
    "to_string",
    "to_vec",
    "as_str",
    "as_ref",
    "as_mut",
    "as_bytes",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "take",
    "replace",
    "contains",
    "contains_key",
    "entry",
    "extend",
    "sort",
    "sort_by",
    "sort_by_key",
    "min",
    "max",
    "sum",
    "count",
    "filter",
    "collect",
    "fold",
    "rev",
    "zip",
    "chain",
    "enumerate",
    "flat_map",
    "any",
    "all",
    "find",
    "position",
    "split",
    "trim",
    "parse",
    "join",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "new",
    "default",
    "from",
    "into",
    "write",
    "read",
    "flush",
    "lock",
    "send",
    "recv",
    "retain",
    "drain",
    "clear",
    "first",
    "last",
    "split_at",
    "chunks",
    "windows",
    "to_owned",
    "borrow",
    "deref",
    "index",
    "starts_with",
    "ends_with",
    "chars",
    "bytes",
    "lines",
    "abs",
    "floor",
    "ceil",
    "sqrt",
    "min_by",
    "max_by",
    "copied",
    "cloned",
    "filter_map",
    "skip",
    "step_by",
    "get_or_insert_with",
    "binary_search",
    "binary_search_by",
    "partial_cmp",
    "push_str",
    "write_str",
    "write_fmt",
    "wrapping_add",
    "wrapping_mul",
    "saturating_sub",
    "saturating_add",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "rotate_left",
    "rotate_right",
    "to_le_bytes",
    "from_le_bytes",
    "leading_zeros",
    "trailing_zeros",
    "count_ones",
];

/// A call site lifted from a body token stream, before resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Path segments; a single segment for bare and method calls.
    pub segs: Vec<String>,
    /// Method call (`.name(…)`) rather than a path/bare call.
    pub is_method: bool,
    /// Receiver variable/field name for method calls, when syntactically
    /// evident (`x.name(…)`, `self.field.name(…)` → `x` / `field`).
    pub receiver: Option<String>,
    /// 1-based line of the called name.
    pub line: u32,
}

/// Extract every call site from `toks[range]`, skipping the body ranges
/// in `skip` (nested `fn` items, which own their calls).
pub fn call_sites(
    toks: &[Tok],
    range: std::ops::Range<usize>,
    skip: &[std::ops::Range<usize>],
) -> Vec<CallSite> {
    let mut out = Vec::new();
    let mut j = range.start;
    while j < range.end.min(toks.len()) {
        if let Some(s) = skip.iter().find(|s| s.contains(&j)) {
            j = s.end;
            continue;
        }
        if toks[j].is_punct('(') {
            if let Some(site) = call_at(toks, j, range.start) {
                out.push(site);
            }
        }
        j += 1;
    }
    out
}

/// Interpret the tokens before the `(` at `open` as a call target.
fn call_at(toks: &[Tok], open: usize, floor: usize) -> Option<CallSite> {
    let mut k = open.checked_sub(1)?;
    if k < floor {
        return None;
    }
    // Turbofish: `name::<…>(` — hop back over the generic arguments.
    if toks[k].is_punct('>') {
        let mut depth = 0i32;
        loop {
            if toks[k].is_punct('>') {
                depth += 1;
            } else if toks[k].is_punct('<') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k = k.checked_sub(1)?;
            if k < floor {
                return None;
            }
        }
        // Expect `::` before the `<`.
        if k < floor + 2 || !toks[k - 1].is_punct(':') || !toks[k - 2].is_punct(':') {
            return None;
        }
        k -= 3;
    }
    let name = toks.get(k)?.ident()?;
    if KEYWORDS.contains(&name) {
        return None;
    }
    // A definition (`fn name(`) is not a call.
    if k > floor && toks[k - 1].is_ident("fn") {
        return None;
    }
    let line = toks[k].line;
    // Walk the leading path: `a::b::name(`.
    let mut segs = vec![name.to_string()];
    let mut m = k;
    while m >= floor + 3
        && toks[m - 1].is_punct(':')
        && toks[m - 2].is_punct(':')
        && toks[m - 3].ident().is_some()
    {
        let seg = toks[m - 3].ident().unwrap_or_default();
        segs.insert(0, seg.to_string());
        m -= 3;
    }
    let is_method = segs.len() == 1 && m > floor && toks[m - 1].is_punct('.');
    if !is_method && m > floor && toks[m - 1].is_punct('.') {
        // `recv.path::name(` cannot occur; treat defensively as method.
        return None;
    }
    let receiver = if is_method && m > floor + 1 {
        toks[m - 2].ident().map(str::to_string)
    } else {
        None
    };
    // A macro invocation (`name!(`) is not a function call.
    if toks.get(k + 1).is_some_and(|t| t.is_punct('!')) {
        return None;
    }
    Some(CallSite {
        segs,
        is_method,
        receiver,
        line,
    })
}

/// Light local type map: `name: Type` annotations (params, fields,
/// lets) and `let name = Type::…(…)` initializations over one token
/// range. Used to type method-call receivers.
pub fn type_bindings(toks: &[Tok], range: std::ops::Range<usize>) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    let hi = range.end.min(toks.len());
    for i in range.start..hi {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        if KEYWORDS.contains(&name) {
            // `let [mut] bind = Type::…` initialization.
            if name != "let" {
                continue;
            }
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(bind) = toks.get(j).and_then(Tok::ident) else {
                continue;
            };
            if !toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                continue;
            }
            if let Some(head) = toks.get(j + 2).and_then(Tok::ident) {
                if head.starts_with(char::is_uppercase)
                    && toks.get(j + 3).is_some_and(|t| t.is_punct(':'))
                    && toks.get(j + 4).is_some_and(|t| t.is_punct(':'))
                {
                    map.insert(bind.to_string(), head.to_string());
                }
            }
            continue;
        }
        // `name : [&|&mut|lifetime]* Type` annotation — but not `::`.
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && !(i > range.start && toks[i - 1].is_punct(':'))
        {
            let mut j = i + 2;
            while j < hi {
                match &toks[j].kind {
                    TokKind::Punct('&') | TokKind::Lifetime => j += 1,
                    // `dyn Trait` / `impl Trait` receivers are
                    // trait-dispatched — there is no concrete type to
                    // record, and claiming one would wrongly prune the
                    // conservative link-to-every-impl fallback.
                    TokKind::Ident(s) if s == "dyn" || s == "impl" => break,
                    TokKind::Ident(s) if s == "mut" => j += 1,
                    TokKind::Ident(s) => {
                        // Walk to the last path segment: `a::b::Type`.
                        let mut head = s.as_str();
                        while toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                            && toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
                            && toks.get(j + 3).and_then(Tok::ident).is_some()
                        {
                            j += 3;
                            head = toks[j].ident().unwrap_or(head);
                        }
                        if head.starts_with(char::is_uppercase) {
                            map.insert(name.to_string(), head.to_string());
                        }
                        break;
                    }
                    _ => break,
                }
            }
        }
    }
    map
}

/// Per-function context needed repeatedly by the passes.
#[derive(Debug)]
pub struct FnBodies {
    /// For each function: nested function body ranges to skip.
    pub skips: Vec<Vec<std::ops::Range<usize>>>,
}

/// Compute nested-body skip lists (a nested `fn` owns its tokens).
pub fn fn_bodies(ws: &Workspace) -> FnBodies {
    let mut skips: Vec<Vec<std::ops::Range<usize>>> = vec![Vec::new(); ws.fns.len()];
    for (i, f) in ws.fns.iter().enumerate() {
        for g in &ws.fns {
            if g.file == f.file
                && g.body.start > f.body.start
                && g.body.end <= f.body.end
                && !(g.body.start == f.body.start && g.body.end == f.body.end)
            {
                skips[i].push(g.body.clone());
            }
        }
    }
    FnBodies { skips }
}

/// Build the resolved call graph for the whole workspace.
pub fn build(ws: &Workspace, files: &[SourceFile], bodies: &FnBodies) -> CallGraph {
    let resolver = Resolver::new(ws);
    let mut edges: Vec<Vec<Edge>> = Vec::with_capacity(ws.fns.len());
    // File-wide annotations (struct fields, other fns) type receivers
    // that the fn-local scan cannot see — e.g. a `hits: AtomicU64` field
    // types `self.hits.load(…)`. Locals override on collision.
    let file_types: Vec<BTreeMap<String, String>> = files
        .iter()
        .map(|f| type_bindings(&f.toks, 0..f.toks.len()))
        .collect();
    for (i, f) in ws.fns.iter().enumerate() {
        let toks = &files[f.file].toks;
        let sites = call_sites(toks, f.body.clone(), &bodies.skips[i]);
        let mut types = file_types[f.file].clone();
        types.extend(type_bindings(toks, f.sig.start..f.body.end));
        if let Some(ty) = &f.self_ty {
            types.insert("self".to_string(), ty.clone());
        }
        let mut out: Vec<Edge> = Vec::new();
        for site in sites {
            for callee in resolver.resolve(ws, f, &site, &types) {
                // Dedup repeated edges to the same callee at one line.
                let e = Edge {
                    callee,
                    line: site.line,
                };
                if !out.contains(&e) {
                    out.push(e);
                }
            }
        }
        edges.push(out);
    }
    CallGraph { edges }
}

struct Resolver {
    /// name → free fn indices.
    free: BTreeMap<String, Vec<usize>>,
    /// method name → fn indices (any self type).
    methods: BTreeMap<String, Vec<usize>>,
    /// (self type, name) → fn indices.
    typed: BTreeMap<(String, String), Vec<usize>>,
}

impl Resolver {
    fn new(ws: &Workspace) -> Self {
        let mut free: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, f) in ws.fns.iter().enumerate() {
            match &f.self_ty {
                None => free.entry(f.name.clone()).or_default().push(i),
                Some(ty) => {
                    methods.entry(f.name.clone()).or_default().push(i);
                    typed
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(i);
                }
            }
        }
        Resolver {
            free,
            methods,
            typed,
        }
    }

    fn resolve(
        &self,
        ws: &Workspace,
        caller: &FnDef,
        site: &CallSite,
        types: &BTreeMap<String, String>,
    ) -> Vec<usize> {
        if site.is_method {
            return self.resolve_method(ws, caller, site, types);
        }
        if site.segs.len() == 1 {
            return self.resolve_bare(ws, caller, &site.segs[0]);
        }
        self.resolve_path(ws, caller, &site.segs)
    }

    /// `x.name(…)`: typed lookup through the local type map, else every
    /// same-named workspace method (unless the name is `std`-common).
    fn resolve_method(
        &self,
        ws: &Workspace,
        caller: &FnDef,
        site: &CallSite,
        types: &BTreeMap<String, String>,
    ) -> Vec<usize> {
        let name = &site.segs[0];
        if let Some(recv) = &site.receiver {
            if let Some(ty) = types.get(recv) {
                if let Some(cands) = self.typed.get(&(ty.clone(), name.clone())) {
                    return prefer_crate(ws, caller, cands);
                }
                // Known receiver type without that method: a std method
                // on a std type (or through Deref) — not workspace code.
                return Vec::new();
            }
        }
        if COMMON_METHODS.contains(&name.as_str()) {
            return Vec::new();
        }
        self.methods.get(name).cloned().unwrap_or_default()
    }

    /// `name(…)`: same module → same crate → imported; never another
    /// crate without an import (so shadowed names stay local).
    fn resolve_bare(&self, ws: &Workspace, caller: &FnDef, name: &str) -> Vec<usize> {
        if let Some(cands) = self.free.get(name) {
            let same_mod: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| {
                    ws.fns[i].crate_name == caller.crate_name && ws.fns[i].module == caller.module
                })
                .collect();
            if !same_mod.is_empty() {
                return same_mod;
            }
            let same_crate: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| ws.fns[i].crate_name == caller.crate_name)
                .collect();
            if !same_crate.is_empty() {
                return same_crate;
            }
        }
        // `use a::b::name;` then `name(…)`.
        if let Some(full) = ws.imports.get(caller.file).and_then(|m| m.get(name)) {
            return self.resolve_path(ws, caller, full);
        }
        // `use a::b::*;` glob: try each glob module as a prefix.
        if let Some(globs) = ws.globs.get(caller.file) {
            for g in globs {
                let mut segs = g.clone();
                segs.push(name.to_string());
                let hit = self.resolve_path(ws, caller, &segs);
                if !hit.is_empty() {
                    return hit;
                }
            }
        }
        Vec::new()
    }

    /// `a::b::name(…)` / `Type::assoc(…)`: suffix match on the symbol
    /// table after normalizing `crate`/`self`/`super`/`originscan_*`.
    fn resolve_path(&self, ws: &Workspace, caller: &FnDef, segs: &[String]) -> Vec<usize> {
        let mut segs = segs.to_vec();
        // Normalize the head.
        if let Some(head) = segs.first().cloned() {
            match head.as_str() {
                "crate" => {
                    segs.remove(0);
                    segs.insert(0, caller.crate_name.clone());
                }
                "self" => {
                    segs.remove(0);
                    let mut prefix = vec![caller.crate_name.clone()];
                    prefix.extend(caller.module.iter().cloned());
                    for (n, p) in prefix.into_iter().enumerate() {
                        segs.insert(n, p);
                    }
                }
                "super" => {
                    segs.remove(0);
                    let mut prefix = vec![caller.crate_name.clone()];
                    let parent = caller.module.len().saturating_sub(1);
                    prefix.extend(caller.module[..parent].iter().cloned());
                    for (n, p) in prefix.into_iter().enumerate() {
                        segs.insert(n, p);
                    }
                }
                "std" | "core" | "alloc" => return Vec::new(),
                _ => {
                    if let Some(stripped) = head.strip_prefix("originscan_") {
                        segs[0] = stripped.to_string();
                    }
                }
            }
        }
        let name = match segs.last() {
            Some(n) => n.clone(),
            None => return Vec::new(),
        };
        let penult = segs.len().checked_sub(2).map(|i| segs[i].clone());
        // `Type::assoc(…)` — penultimate segment is a type name.
        if let Some(ty) = penult
            .as_ref()
            .filter(|p| p.starts_with(char::is_uppercase))
        {
            if let Some(cands) = self.typed.get(&(ty.clone(), name.clone())) {
                // The leading module path (if any) must also match.
                let module_part = &segs[..segs.len() - 2];
                let filtered: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| suffix_matches(&ws.fns[i], module_part))
                    .collect();
                if !filtered.is_empty() {
                    return prefer_crate(ws, caller, &filtered);
                }
            }
            return Vec::new();
        }
        // Free function with a module path.
        if let Some(cands) = self.free.get(&name) {
            let module_part = &segs[..segs.len() - 1];
            let filtered: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| suffix_matches(&ws.fns[i], module_part))
                .collect();
            if !filtered.is_empty() {
                return prefer_crate(ws, caller, &filtered);
            }
        }
        Vec::new()
    }
}

/// Does `module_part` (e.g. `[report]` from `report::render(…)`) match a
/// suffix of the function's `[crate, modules…]` path?
fn suffix_matches(f: &FnDef, module_part: &[String]) -> bool {
    if module_part.is_empty() {
        return true;
    }
    let mut full = vec![f.crate_name.clone()];
    full.extend(f.module.iter().cloned());
    if module_part.len() > full.len() {
        return false;
    }
    full[full.len() - module_part.len()..] == *module_part
}

/// Narrow a candidate set to the caller's crate when possible.
fn prefer_crate(ws: &Workspace, caller: &FnDef, cands: &[usize]) -> Vec<usize> {
    let same: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| ws.fns[i].crate_name == caller.crate_name)
        .collect();
    if same.is_empty() {
        cands.to_vec()
    } else {
        same
    }
}

/// One hop of a reported call chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// Function index.
    pub func: usize,
    /// Line of the call site *in the previous hop's function* that
    /// reached this one (0 for the chain's first hop).
    pub via_line: u32,
}

/// Multi-source BFS over the call graph. Returns, per function, the
/// shortest chain from any of `sources` (as hops, sources first), or
/// `None` when unreachable. Cycles terminate naturally: a function is
/// visited once.
pub fn shortest_chains(
    graph: &CallGraph,
    n_fns: usize,
    sources: &[usize],
) -> Vec<Option<Vec<Hop>>> {
    let mut prev: Vec<Option<(usize, u32)>> = vec![None; n_fns];
    let mut seen: Vec<bool> = vec![false; n_fns];
    let mut queue: VecDeque<usize> = VecDeque::new();
    let src_set: BTreeSet<usize> = sources.iter().copied().collect();
    for &s in sources {
        if s < n_fns && !seen[s] {
            seen[s] = true;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        for e in &graph.edges[u] {
            if e.callee < n_fns && !seen[e.callee] {
                seen[e.callee] = true;
                prev[e.callee] = Some((u, e.line));
                queue.push_back(e.callee);
            }
        }
    }
    (0..n_fns)
        .map(|i| {
            if !seen[i] {
                return None;
            }
            let mut hops = vec![Hop {
                func: i,
                via_line: prev[i].map_or(0, |(_, l)| l),
            }];
            let mut cur = i;
            while let Some((p, _)) = prev[cur] {
                let via = prev[p].map_or(0, |(_, l)| l);
                hops.push(Hop {
                    func: p,
                    via_line: via,
                });
                cur = p;
                if src_set.contains(&cur) {
                    break;
                }
            }
            hops.reverse();
            Some(hops)
        })
        .collect()
}

/// Render a chain as `a -> b -> c` with qualified names.
pub fn render_chain(ws: &Workspace, hops: &[Hop]) -> String {
    let mut s = String::new();
    for (n, h) in hops.iter().enumerate() {
        if n > 0 {
            s.push_str(" -> ");
        }
        s.push_str(&ws.fns[h.func].qualname());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::{parse_workspace, SourceFile};

    fn build_ws(files: &[(&str, &str)]) -> (Workspace, Vec<SourceFile>, CallGraph) {
        let files: Vec<SourceFile> = files
            .iter()
            .map(|(p, s)| {
                let (toks, comments) = lex(s);
                SourceFile {
                    path: p.to_string(),
                    toks,
                    comments,
                }
            })
            .collect();
        let ws = parse_workspace(&files);
        let bodies = fn_bodies(&ws);
        let graph = build(&ws, &files, &bodies);
        (ws, files, graph)
    }

    fn edge_names(ws: &Workspace, graph: &CallGraph, caller: &str) -> Vec<String> {
        let i = ws
            .fns
            .iter()
            .position(|f| f.qualname() == caller)
            .unwrap_or_else(|| panic!("no fn {caller}"));
        graph.edges[i]
            .iter()
            .map(|e| ws.fns[e.callee].qualname())
            .collect()
    }

    #[test]
    fn bare_calls_resolve_same_module_first() {
        let (ws, _, g) = build_ws(&[(
            "crates/a/src/lib.rs",
            "fn caller() { helper(); } fn helper() {}",
        )]);
        assert_eq!(edge_names(&ws, &g, "a::caller"), ["a::helper"]);
    }

    #[test]
    fn shadowed_names_do_not_cross_crates() {
        let (ws, _, g) = build_ws(&[
            (
                "crates/a/src/lib.rs",
                "fn caller() { helper(); } fn helper() {}",
            ),
            ("crates/b/src/lib.rs", "fn helper() {}"),
        ]);
        assert_eq!(edge_names(&ws, &g, "a::caller"), ["a::helper"]);
    }

    #[test]
    fn cross_crate_via_import_and_path() {
        let (ws, _, g) = build_ws(&[
            (
                "crates/a/src/lib.rs",
                "use originscan_b::util::helper;\n\
                 fn one() { helper(); }\n\
                 fn two() { originscan_b::util::helper(); }",
            ),
            ("crates/b/src/util.rs", "pub fn helper() {}"),
        ]);
        assert_eq!(edge_names(&ws, &g, "a::one"), ["b::util::helper"]);
        assert_eq!(edge_names(&ws, &g, "a::two"), ["b::util::helper"]);
    }

    #[test]
    fn typed_receiver_resolves_one_impl() {
        let (ws, _, g) = build_ws(&[(
            "crates/a/src/lib.rs",
            "impl Foo { fn probe_it(&self) {} }\n\
             impl Bar { fn probe_it(&self) {} }\n\
             fn caller(x: &Foo) { x.probe_it(); }",
        )]);
        assert_eq!(edge_names(&ws, &g, "a::caller"), ["a::Foo::probe_it"]);
    }

    #[test]
    fn untyped_receiver_links_every_impl_for_rare_names() {
        let (ws, _, g) = build_ws(&[(
            "crates/a/src/lib.rs",
            "impl Foo { fn probe_it(&self) {} }\n\
             impl Bar { fn probe_it(&self) {} }\n\
             fn caller(x: &dyn Probe) { x.probe_it(); }",
        )]);
        // `dyn Probe` has no impl entry, so the local type map misses
        // and both impls are linked (trait dispatch is conservative).
        let mut got = edge_names(&ws, &g, "a::caller");
        got.sort();
        assert_eq!(got, ["a::Bar::probe_it", "a::Foo::probe_it"]);
    }

    #[test]
    fn common_std_names_do_not_link_untyped() {
        let (ws, _, g) = build_ws(&[(
            "crates/a/src/lib.rs",
            "impl Foo { fn insert(&self) {} }\n\
             fn caller(m: &mut SomeMap) { m.insert(); }",
        )]);
        assert!(edge_names(&ws, &g, "a::caller").is_empty());
    }

    #[test]
    fn assoc_fn_calls_resolve_by_type() {
        let (ws, _, g) = build_ws(&[
            (
                "crates/a/src/lib.rs",
                "use originscan_b::Widget;\nfn caller() { Widget::build(); }",
            ),
            ("crates/b/src/lib.rs", "impl Widget { pub fn build() {} }"),
        ]);
        assert_eq!(edge_names(&ws, &g, "a::caller"), ["b::Widget::build"]);
    }

    #[test]
    fn recursion_terminates_and_chains_are_shortest() {
        let (ws, _, g) = build_ws(&[(
            "crates/a/src/lib.rs",
            "pub fn entry() { step_a(); }\n\
             fn step_a() { step_b(); }\n\
             fn step_b() { step_a(); leaf_site(); }\n\
             fn leaf_site() {}",
        )]);
        let entry = ws.fns.iter().position(|f| f.name == "entry").unwrap();
        let leaf = ws.fns.iter().position(|f| f.name == "leaf_site").unwrap();
        let chains = shortest_chains(&g, ws.fns.len(), &[entry]);
        let chain = chains[leaf].as_ref().expect("leaf reachable");
        assert_eq!(
            render_chain(&ws, chain),
            "a::entry -> a::step_a -> a::step_b -> a::leaf_site"
        );
    }

    #[test]
    fn macro_invocations_and_keywords_are_not_calls() {
        let (toks, _) = lex("fn f() { if (x) { vec![1] } else { println!(\"hi\") } g(); }");
        let sites = call_sites(&toks, 0..toks.len(), &[]);
        let names: Vec<&str> = sites.iter().map(|s| s.segs[0].as_str()).collect();
        assert_eq!(names, ["g"]);
    }

    #[test]
    fn turbofish_calls_are_lifted() {
        let (toks, _) = lex("fn f() { helper::<Vec<u8>>(1); }");
        let sites = call_sites(&toks, 0..toks.len(), &[]);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].segs, ["helper"]);
    }
}
