//! # originscan-lint
//!
//! An offline static analyzer enforcing the workspace's two load-bearing
//! invariants:
//!
//! 1. **Determinism** — every trial result is a pure function of
//!    `(seed, origin, trial)`. Fault injection, resume-after-kill, and
//!    multi-origin union analyses are only comparable because re-running
//!    any scan is bit-identical. Wall clocks, unseeded RNGs, and
//!    entropy-seeded `HashMap` iteration order all silently break this.
//! 2. **Panic safety** — the wire codecs and the scan engine sit on hot,
//!    correctness-critical paths; failures there must surface as typed
//!    errors (`ParseError`, `ScanError`, `ConfigError`), not panics that
//!    take down a supervised scan from inside.
//! 3. **Observability discipline** — library crates never write bare
//!    stdio. Progress and diagnostics route through the
//!    `originscan-telemetry` sinks (events, metrics, the stderr progress
//!    sink) so output stays structured, deterministic, and grep-able;
//!    the audited sinks themselves carry `lint:allow` escapes.
//!
//! The analyzer is a hand-rolled lexer plus token-pattern rules — no
//! `syn`, no dependencies — consistent with the workspace's vendored-deps
//! policy, so it builds offline from a bare toolchain.
//!
//! ## Escape hatch
//!
//! A violation can be suppressed with an *audited* comment on (or
//! immediately above) the offending line:
//!
//! ```text
//! // lint:allow(rule-id) — reason the invariant still holds
//! ```
//!
//! The reason is mandatory; a bare `lint:allow` is itself a violation
//! (`lint-bad-allow`).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![deny(missing_docs)]

pub mod lexer;
pub mod registry;
pub mod rules;

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// One rule of the catalogue.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable rule identifier (used in output and `lint:allow`).
    pub id: &'static str,
    /// One-line description of what the rule bans.
    pub summary: &'static str,
    /// One-line fix hint appended to every violation.
    pub hint: &'static str,
}

/// The full rule catalogue.
///
/// Scopes: `det-*` rules cover library code of `netmodel`, `scanner`,
/// `core`, and `telemetry`; `panic-*` rules cover library code of
/// `wire`, `scanner`, and `telemetry`; `obs-*` rules cover library code
/// of every crate; `reg-*` rules are cross-file registry checks;
/// `lint-bad-allow` applies wherever an escape comment appears. Tests,
/// benches, examples, `src/bin`, and `fn main` bodies are exempt
/// everywhere.
pub const RULES: &[Rule] = &[
    Rule {
        id: "det-wall-clock",
        summary: "bans Instant::now / SystemTime::now in simulation and analysis crates",
        hint: "thread simulated time through explicitly (pacer clocks, response_time_s); \
               wall clocks break (seed, origin, trial) purity",
    },
    Rule {
        id: "det-unseeded-rng",
        summary: "bans thread_rng, rand::random, from_entropy, and other entropy-seeded RNGs",
        hint: "derive randomness from netmodel::rng::Det keyed by (seed, ids, trial); \
               unseeded RNGs make trials unreproducible",
    },
    Rule {
        id: "det-hash-iter",
        summary: "bans iterating HashMap/HashSet bindings (entropy-seeded order) in \
                  simulation and analysis crates",
        hint: "use BTreeMap/BTreeSet or collect-and-sort; std hash iteration order is \
               seeded from process entropy and differs across runs",
    },
    Rule {
        id: "det-hash-report",
        summary: "bans HashMap/HashSet entirely in report/serialization modules",
        hint: "report paths must be reproducibly ordered end to end: use BTreeMap, \
               BTreeSet, or sorted Vecs",
    },
    Rule {
        id: "panic-unwrap",
        summary: "bans .unwrap()/.unwrap_err() in wire and scanner library code",
        hint: "propagate a typed error (ParseError, ScanError, ConfigError) or restructure \
               so the failure is impossible by construction",
    },
    Rule {
        id: "panic-expect",
        summary: "bans .expect()/.expect_err() in wire and scanner library code",
        hint: "propagate a typed error (ParseError, ScanError, ConfigError) or restructure \
               so the failure is impossible by construction",
    },
    Rule {
        id: "panic-macro",
        summary: "bans panic!/unreachable!/todo!/unimplemented! in wire and scanner \
                  library code",
        hint: "return a typed error; if the arm is provably dead, justify it with \
               lint:allow and a proof sketch",
    },
    Rule {
        id: "panic-lossy-cast",
        summary: "bans truncating `as` casts on lengths and truncate-then-widen index chains",
        hint: "use try_from with a typed error, or a checked guard; silent truncation \
               corrupts lengths/offsets exactly when inputs get large",
    },
    Rule {
        id: "obs-print",
        summary: "bans bare println!/eprintln!/print!/eprint! in library crates",
        hint: "route progress through originscan_telemetry::progress::emit_progress (or an \
               event/metric); the one audited stdio sink per stream carries a lint:allow",
    },
    Rule {
        id: "obs-dbg",
        summary: "bans dbg! in library crates",
        hint: "dbg! is a leftover debugging aid that writes unstructured stderr; record a \
               telemetry event or metric instead, or delete it",
    },
    Rule {
        id: "reg-policy-mod",
        summary: "every netmodel/src/policy/*.rs module must be registered in policy/mod.rs",
        hint: "add `pub mod <name>;` to crates/netmodel/src/policy/mod.rs (or delete the \
               orphaned file)",
    },
    Rule {
        id: "reg-bench-doc",
        summary: "every crates/bench/benches/fig*.rs / tab*.rs must be documented in \
                  EXPERIMENTS.md",
        hint: "add the bench target to the per-artifact index in EXPERIMENTS.md so every \
               figure/table stays regenerable and accounted for",
    },
    Rule {
        id: "lint-bad-allow",
        summary: "lint:allow escapes must name a known rule and give a non-empty reason",
        hint: "write `// lint:allow(rule-id) — reason`; the reason is the audit trail",
    },
];

/// Look up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// One violation found by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule id from [`RULES`].
    pub rule: &'static str,
    /// Human-readable description of this specific occurrence.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )?;
        if let Some(r) = rule(self.rule) {
            write!(f, "\n    hint: {}", r.hint)?;
        }
        Ok(())
    }
}

/// Analyze one source file given its workspace-relative path.
///
/// The path decides which rule scopes apply; the contents are lexed and
/// checked. Registry (`reg-*`) rules are cross-file and live in
/// [`registry::check_registry`] instead.
pub fn check_source(rel_path: &str, src: &str) -> Vec<Violation> {
    rules::check_file(rel_path, src)
}

/// Analyze the whole workspace rooted at `root`: every `crates/*/src`
/// Rust file plus the cross-file registry rules. Violations are sorted
/// by (file, line, rule).
pub fn check_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for file in workspace_sources(root)? {
        let src = std::fs::read_to_string(&file)?;
        let rel = rel_to(root, &file);
        out.extend(check_source(&rel, &src));
    }
    out.extend(registry::check_registry(root)?);
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(out)
}

/// Workspace-relative forward-slash path of `file` under `root`.
fn rel_to(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

/// All `.rs` files under `crates/*/src`, sorted for deterministic output
/// (the linter holds itself to the ordering rules it enforces).
fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    if !crates_dir.is_dir() {
        return Ok(files);
    }
    let mut crates: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crates.sort();
    for krate in crates {
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}
