//! # originscan-lint
//!
//! An offline static analyzer enforcing the workspace's two load-bearing
//! invariants:
//!
//! 1. **Determinism** — every trial result is a pure function of
//!    `(seed, origin, trial)`. Fault injection, resume-after-kill, and
//!    multi-origin union analyses are only comparable because re-running
//!    any scan is bit-identical. Wall clocks, unseeded RNGs, and
//!    entropy-seeded `HashMap` iteration order all silently break this.
//! 2. **Panic safety** — the wire codecs and the scan engine sit on hot,
//!    correctness-critical paths; failures there must surface as typed
//!    errors (`ParseError`, `ScanError`, `ConfigError`), not panics that
//!    take down a supervised scan from inside.
//! 3. **Observability discipline** — library crates never write bare
//!    stdio. Progress and diagnostics route through the
//!    `originscan-telemetry` sinks (events, metrics, the stderr progress
//!    sink) so output stays structured, deterministic, and grep-able;
//!    the audited sinks themselves carry `lint:allow` escapes.
//!
//! The analyzer is a hand-rolled lexer plus an item-level parser — no
//! `syn`, no dependencies — consistent with the workspace's vendored-deps
//! policy, so it builds offline from a bare toolchain. On top of the
//! per-file token rules it builds a cross-crate call graph
//! ([`callgraph`]) and runs three interprocedural passes:
//!
//! * [`reach`] — panic-reachability from supervised entry points, with
//!   the shortest call chain as the diagnostic;
//! * [`taint`] — determinism taint from wall clocks / hash iteration /
//!   thread IDs / pointer casts into output functions;
//! * [`locks`] — lock-order cycles and lock-held-across-blocking-call
//!   sites over the serve tier's `Mutex`es.
//!
//! Interprocedural findings carry stable fingerprints and diff against a
//! checked-in baseline (`lint-baseline.txt`) so CI fails only on *new*
//! findings ([`report`]).
//!
//! ## Escape hatch
//!
//! A violation can be suppressed with an *audited* comment on (or
//! immediately above) the offending line:
//!
//! ```text
//! // lint:allow(rule-id) reason= why the invariant still holds
//! ```
//!
//! The `reason=` annotation is mandatory; a bare `lint:allow` is itself
//! a violation (`lint-bad-allow`), and a grant that no longer suppresses
//! anything is flagged as `lint-stale-allow`.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![deny(missing_docs)]

pub mod callgraph;
pub mod lexer;
pub mod locks;
pub mod parse;
pub mod reach;
pub mod registry;
pub mod report;
pub mod rules;
pub mod taint;

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// One rule of the catalogue.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable rule identifier (used in output and `lint:allow`).
    pub id: &'static str,
    /// One-line description of what the rule bans.
    pub summary: &'static str,
    /// One-line fix hint appended to every violation.
    pub hint: &'static str,
}

/// The full rule catalogue.
///
/// Scopes: `det-*` rules cover library code of `netmodel`, `scanner`,
/// `core`, and `telemetry`; `panic-*` rules cover library code of
/// `wire`, `scanner`, and `telemetry`; `obs-*` rules cover library code
/// of every crate; `reg-*` rules are cross-file registry checks;
/// `lint-bad-allow` applies wherever an escape comment appears. Tests,
/// benches, examples, `src/bin`, and `fn main` bodies are exempt
/// everywhere.
pub const RULES: &[Rule] = &[
    Rule {
        id: "det-wall-clock",
        summary: "bans Instant::now / SystemTime::now in simulation and analysis crates",
        hint: "thread simulated time through explicitly (pacer clocks, response_time_s); \
               wall clocks break (seed, origin, trial) purity",
    },
    Rule {
        id: "det-unseeded-rng",
        summary: "bans thread_rng, rand::random, from_entropy, and other entropy-seeded RNGs",
        hint: "derive randomness from netmodel::rng::Det keyed by (seed, ids, trial); \
               unseeded RNGs make trials unreproducible",
    },
    Rule {
        id: "det-hash-iter",
        summary: "bans iterating HashMap/HashSet bindings (entropy-seeded order) in \
                  simulation and analysis crates",
        hint: "use BTreeMap/BTreeSet or collect-and-sort; std hash iteration order is \
               seeded from process entropy and differs across runs",
    },
    Rule {
        id: "det-hash-report",
        summary: "bans HashMap/HashSet entirely in report/serialization modules",
        hint: "report paths must be reproducibly ordered end to end: use BTreeMap, \
               BTreeSet, or sorted Vecs",
    },
    Rule {
        id: "panic-unwrap",
        summary: "bans .unwrap()/.unwrap_err() in wire and scanner library code",
        hint: "propagate a typed error (ParseError, ScanError, ConfigError) or restructure \
               so the failure is impossible by construction",
    },
    Rule {
        id: "panic-expect",
        summary: "bans .expect()/.expect_err() in wire and scanner library code",
        hint: "propagate a typed error (ParseError, ScanError, ConfigError) or restructure \
               so the failure is impossible by construction",
    },
    Rule {
        id: "panic-macro",
        summary: "bans panic!/unreachable!/todo!/unimplemented! in wire and scanner \
                  library code",
        hint: "return a typed error; if the arm is provably dead, justify it with \
               lint:allow and a proof sketch",
    },
    Rule {
        id: "panic-lossy-cast",
        summary: "bans truncating `as` casts on lengths and truncate-then-widen index chains",
        hint: "use try_from with a typed error, or a checked guard; silent truncation \
               corrupts lengths/offsets exactly when inputs get large",
    },
    Rule {
        id: "obs-print",
        summary: "bans bare println!/eprintln!/print!/eprint! in library crates",
        hint: "route progress through originscan_telemetry::progress::emit_progress (or an \
               event/metric); the one audited stdio sink per stream carries a lint:allow",
    },
    Rule {
        id: "obs-dbg",
        summary: "bans dbg! in library crates",
        hint: "dbg! is a leftover debugging aid that writes unstructured stderr; record a \
               telemetry event or metric instead, or delete it",
    },
    Rule {
        id: "reg-policy-mod",
        summary: "every netmodel/src/policy/*.rs module must be registered in policy/mod.rs",
        hint: "add `pub mod <name>;` to crates/netmodel/src/policy/mod.rs (or delete the \
               orphaned file)",
    },
    Rule {
        id: "reg-bench-doc",
        summary: "every crates/bench/benches/fig*.rs / tab*.rs must be documented in \
                  EXPERIMENTS.md",
        hint: "add the bench target to the per-artifact index in EXPERIMENTS.md so every \
               figure/table stays regenerable and accounted for",
    },
    Rule {
        id: "reg-protocol-all",
        summary: "bans `Protocol::ALL` in library code (hardcodes the 3-protocol TCP \
                  roster, bypassing the probe-module registry)",
        hint: "iterate `probe::modules()` for every registered module, or use \
               `probe::PAPER_PROTOCOLS` where the paper's TCP trio is really meant",
    },
    Rule {
        id: "lint-bad-allow",
        summary: "lint:allow escapes must name a known rule and carry a reason= annotation",
        hint: "write `// lint:allow(rule-id) reason= justification`; the reason is the \
               audit trail",
    },
    Rule {
        id: "lint-stale-allow",
        summary: "lint:allow escapes whose rule no longer fires at that site must be deleted",
        hint: "the escape suppresses nothing — the code was fixed or moved; delete the \
               comment so dead grants cannot silence future regressions",
    },
    Rule {
        id: "reach-panic",
        summary: "bans panic!/unwrap/expect/slice-index sites reachable from supervised \
                  entry points, across any number of call hops and crates",
        hint: "follow the printed call chain; return a typed error through the chain, or \
               restructure so the failure is impossible and justify with lint:allow",
    },
    Rule {
        id: "det-taint",
        summary: "bans wall clocks, entropy RNGs, hash-order iteration, thread IDs, and \
                  pointer-to-int casts in any function reachable from an output/serialization \
                  function",
        hint: "follow the printed flow chain; thread deterministic inputs through \
               explicitly — output bytes must be a pure function of (seed, origin, trial)",
    },
    Rule {
        id: "lock-cycle",
        summary: "bans serve-tier Mutex classes acquired in a cyclic order (potential \
                  deadlock)",
        hint: "impose a single global acquisition order (document it next to the Mutex \
               fields), or merge the locks; a cycle means two requests can deadlock",
    },
    Rule {
        id: "lock-blocking",
        summary: "bans holding a serve-tier Mutex across blocking work (file/socket I/O, \
                  sleeps, channel receives)",
        hint: "copy what you need out of the guard and drop it before blocking, or move \
               the blocking work outside the critical section (see ROADMAP: lock-free \
               serve snapshots)",
    },
];

/// Look up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// One violation found by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule id from [`RULES`].
    pub rule: &'static str,
    /// Human-readable description of this specific occurrence.
    pub msg: String,
    /// Extra diagnostic lines (call chains / flow chains); empty for
    /// per-file rules.
    pub chain: Vec<String>,
    /// Line-number-free site anchor used to build the fingerprint; empty
    /// for per-file rules (the message head substitutes).
    pub anchor: String,
    /// Stable fingerprint (`rule@file@anchor`), assigned by
    /// [`report::assign_fingerprints`] after all passes run.
    pub fingerprint: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )?;
        for c in &self.chain {
            write!(f, "\n    {c}")?;
        }
        if let Some(r) = rule(self.rule) {
            write!(f, "\n    hint: {}", r.hint)?;
        }
        Ok(())
    }
}

/// Analyze one source file given its workspace-relative path.
///
/// The path decides which rule scopes apply; the contents are lexed and
/// checked. Registry (`reg-*`) rules are cross-file and live in
/// [`registry::check_registry`] instead.
pub fn check_source(rel_path: &str, src: &str) -> Vec<Violation> {
    rules::check_file(rel_path, src)
}

/// Analyze a set of in-memory `(path, source)` files as a complete
/// workspace: the per-file rules, the cross-crate interprocedural passes
/// (panic-reachability, determinism taint, lock order), and stale-allow
/// detection, with fingerprints assigned. Registry (`reg-*`) rules need
/// the real tree and only run through [`check_workspace`].
pub fn check_files(inputs: &[(String, String)]) -> Vec<Violation> {
    let mut files = Vec::with_capacity(inputs.len());
    let mut allows = Vec::with_capacity(inputs.len());
    for (path, src) in inputs {
        let path = path.replace('\\', "/");
        let (toks, comments) = lexer::lex(src);
        allows.push(rules::parse_allows(&path, &toks, &comments));
        files.push(parse::SourceFile {
            path,
            toks,
            comments,
        });
    }
    let mut out = Vec::new();
    for (i, f) in files.iter().enumerate() {
        // `bad` allows are already in per-file results; clear so the
        // stale sweep below cannot double-report them.
        out.extend(rules::check_file_tokens(&f.path, &f.toks, &mut allows[i]));
        allows[i].bad.clear();
    }
    let ws = parse::parse_workspace(&files);
    let bodies = callgraph::fn_bodies(&ws);
    let graph = callgraph::build(&ws, &files, &bodies);
    out.extend(reach::check(&ws, &graph, &files, &bodies, &mut allows));
    out.extend(taint::check(&ws, &graph, &files, &bodies, &mut allows));
    out.extend(locks::check(&ws, &graph, &files, &bodies, &mut allows));
    // Stale allows: a grant no pass needed. Exempt paths never run the
    // rules, so their grants are judged elsewhere (or not at all).
    for (i, f) in files.iter().enumerate() {
        if rules::path_exempt(&f.path) {
            continue;
        }
        for e in &allows[i].entries {
            if !e.used {
                out.push(Violation {
                    file: f.path.clone(),
                    line: e.comment_line,
                    rule: "lint-stale-allow",
                    msg: format!(
                        "lint:allow({}) no longer suppresses anything at this site",
                        e.rule
                    ),
                    chain: Vec::new(),
                    anchor: format!("allow/{}", e.rule),
                    fingerprint: String::new(),
                });
            }
        }
    }
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    report::assign_fingerprints(&mut out);
    out
}

/// Analyze the whole workspace rooted at `root`: every `crates/*/src`
/// Rust file through [`check_files`], plus the cross-file registry
/// rules. Violations are sorted by (file, line, rule).
pub fn check_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut inputs = Vec::new();
    for file in workspace_sources(root)? {
        let src = std::fs::read_to_string(&file)?;
        inputs.push((rel_to(root, &file), src));
    }
    let mut out = check_files(&inputs);
    out.extend(registry::check_registry(root)?);
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    report::assign_fingerprints(&mut out);
    Ok(out)
}

/// Workspace-relative forward-slash path of `file` under `root`.
fn rel_to(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

/// All `.rs` files under `crates/*/src`, sorted for deterministic output
/// (the linter holds itself to the ordering rules it enforces).
fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    if !crates_dir.is_dir() {
        return Ok(files);
    }
    let mut crates: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crates.sort();
    for krate in crates {
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}
