//! Cross-file registry rules: checks that only make sense over the
//! workspace tree rather than a single token stream.
//!
//! * `reg-policy-mod` — every `crates/netmodel/src/policy/*.rs` module
//!   must be declared in `policy/mod.rs`. An orphaned policy file
//!   compiles nowhere, so its mechanism silently drops out of the
//!   simulated Internet.
//! * `reg-bench-doc` — every `crates/bench/benches/fig*.rs` / `tab*.rs`
//!   artifact generator must be named in `EXPERIMENTS.md`. An
//!   undocumented figure bench is a figure nobody re-checks against the
//!   paper.

use crate::lexer::lex;
use crate::Violation;
use std::io;
use std::path::Path;

/// Run every registry rule against the workspace rooted at `root`.
/// Directories that do not exist (e.g. in fixture trees) simply
/// contribute no findings for their rule.
pub fn check_registry(root: &Path) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    check_policy_mods(root, &mut out)?;
    check_bench_docs(root, &mut out)?;
    Ok(out)
}

fn sorted_rs_stems(dir: &Path) -> io::Result<Vec<String>> {
    let mut stems = Vec::new();
    if !dir.is_dir() {
        return Ok(stems);
    }
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        if p.extension().is_some_and(|e| e == "rs") {
            if let Some(stem) = p.file_stem().and_then(|s| s.to_str()) {
                stems.push(stem.to_string());
            }
        }
    }
    stems.sort();
    Ok(stems)
}

fn check_policy_mods(root: &Path, out: &mut Vec<Violation>) -> io::Result<()> {
    let policy_dir = root.join("crates/netmodel/src/policy");
    let mod_rs = policy_dir.join("mod.rs");
    if !mod_rs.is_file() {
        return Ok(());
    }
    let src = std::fs::read_to_string(&mod_rs)?;
    let (toks, _) = lex(&src);
    for stem in sorted_rs_stems(&policy_dir)? {
        if stem == "mod" {
            continue;
        }
        let declared = toks
            .windows(2)
            .any(|w| w[0].is_ident("mod") && w[1].is_ident(&stem));
        if !declared {
            out.push(Violation {
                file: format!("crates/netmodel/src/policy/{stem}.rs"),
                line: 1,
                rule: "reg-policy-mod",
                msg: format!("policy module `{stem}` is not declared in policy/mod.rs"),
                chain: Vec::new(),
                anchor: String::new(),
                fingerprint: String::new(),
            });
        }
    }
    Ok(())
}

fn check_bench_docs(root: &Path, out: &mut Vec<Violation>) -> io::Result<()> {
    let benches_dir = root.join("crates/bench/benches");
    if !benches_dir.is_dir() {
        return Ok(());
    }
    let experiments = std::fs::read_to_string(root.join("EXPERIMENTS.md")).unwrap_or_default();
    for stem in sorted_rs_stems(&benches_dir)? {
        if !(stem.starts_with("fig") || stem.starts_with("tab")) {
            continue;
        }
        if !experiments.contains(&stem) {
            out.push(Violation {
                file: format!("crates/bench/benches/{stem}.rs"),
                line: 1,
                rule: "reg-bench-doc",
                msg: format!("artifact bench `{stem}` is not documented in EXPERIMENTS.md"),
                chain: Vec::new(),
                anchor: String::new(),
                fingerprint: String::new(),
            });
        }
    }
    Ok(())
}
