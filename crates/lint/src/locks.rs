//! Lock-order analysis over the serve tier's `Mutex`es.
//!
//! The serve engine guards its work queue and per-shard store readers
//! with `std::sync::Mutex`. Two hazards matter before the ROADMAP's
//! lock-free refactor lands: (1) two lock *classes* acquired in opposite
//! orders on different paths — a potential deadlock cycle — and (2) a
//! guard held across a blocking call (file or socket I/O, sleeps,
//! channel receives), which serializes the whole tier behind one slow
//! request. Locks are modelled at class granularity: the inner type of
//! the `Mutex<Inner>` declaration names the class, so `shards[i]` and
//! `shards[j]` are the same class.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, FnBodies};
use crate::lexer::Tok;
use crate::parse::{SourceFile, Workspace};
use crate::rules::Allows;
use crate::Violation;

/// Identifiers that mark a function body as directly blocking.
/// `Condvar::wait` is deliberately absent: waiting on a condition
/// variable releases the mutex while parked.
const BLOCKING_IDENTS: &[&str] = &[
    "File",
    "OpenOptions",
    "TcpListener",
    "TcpStream",
    "UdpSocket",
    "accept",
    "connect",
    "sleep",
    "recv",
    "recv_timeout",
    "read_exact_at",
];

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
struct Acquisition {
    /// Lock class (inner type of the `Mutex`).
    class: String,
    /// Token index of the acquisition.
    tok: usize,
    /// 1-based line of the acquisition.
    line: u32,
    /// Token range over which the guard is held.
    held: std::ops::Range<usize>,
}

/// Map binding/field names declared as `name: Mutex<Inner>` to their
/// lock class, across the given files.
fn class_bindings(files: &[SourceFile], in_files: &BTreeSet<usize>) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        if !in_files.contains(&fi) {
            continue;
        }
        let toks = &file.toks;
        for j in 0..toks.len() {
            // `name : Mutex < Inner`
            if toks[j].is_ident("Mutex")
                && j >= 2
                && toks[j - 1].is_punct(':')
                && toks[j + 1..].first().is_some_and(|t| t.is_punct('<'))
            {
                let name = match toks[j - 2].ident() {
                    Some(n) => n.to_string(),
                    None => continue,
                };
                if let Some(inner) = toks.get(j + 2).and_then(Tok::ident) {
                    if concrete_class(inner) {
                        out.insert(name, inner.to_string());
                    }
                }
            }
        }
    }
    out
}

/// A concrete lock-class name: single uppercase letters are type
/// parameters of generic helpers (`fn lock<T>(m: &Mutex<T>)`), which
/// name no class at all.
fn concrete_class(name: &str) -> bool {
    name.len() > 1 && name.starts_with(char::is_uppercase)
}

/// Lock class returned by a `MutexGuard`-returning function, read off
/// its signature: the first identifier inside `MutexGuard<…>`
/// (lifetimes are separate token kinds, so `MutexGuard<'a, Shard<V>>`
/// yields `Shard`).
fn guard_class(toks: &[Tok], sig: std::ops::Range<usize>) -> Option<String> {
    let hi = sig.end.min(toks.len());
    for j in sig.start..hi {
        if toks[j].is_ident("MutexGuard") {
            for t in &toks[j + 1..hi] {
                if let Some(id) = t.ident() {
                    return Some(id.to_string()).filter(|c| concrete_class(c));
                }
                if t.is_punct('>') {
                    break;
                }
            }
            return None;
        }
    }
    None
}

/// Token index one past the end of the innermost block enclosing `j`.
fn enclosing_block_end(toks: &[Tok], j: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().take(hi).skip(j) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return k + 1;
            }
            depth -= 1;
        }
    }
    hi
}

/// Token index one past the statement-terminating `;` after `j`, staying
/// at the current brace depth.
fn statement_end(toks: &[Tok], j: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().take(hi).skip(j) {
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            if depth == 0 {
                return k;
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return k + 1;
        }
    }
    hi
}

/// Does the statement containing token `j` start with `let`?
fn let_bound(toks: &[Tok], lo: usize, j: usize) -> bool {
    let mut k = j;
    while k > lo {
        k -= 1;
        let t = &toks[k];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return toks.get(k + 1).is_some_and(|t| t.is_ident("let"));
        }
    }
    toks.get(lo).is_some_and(|t| t.is_ident("let"))
}

/// Collect the acquisitions in one function body.
fn acquisitions(
    toks: &[Tok],
    body: std::ops::Range<usize>,
    skip: &[std::ops::Range<usize>],
    classes: &BTreeMap<String, String>,
    guard_fns: &BTreeMap<String, String>,
) -> Vec<Acquisition> {
    let mut out = Vec::new();
    let hi = body.end.min(toks.len());
    let mut j = body.start;
    while j < hi {
        if let Some(s) = skip.iter().find(|s| s.contains(&j)) {
            j = s.end;
            continue;
        }
        let t = &toks[j];
        let mut class = None;
        let mut line = t.line;
        // `receiver.lock()` where the receiver is a known Mutex binding.
        if t.is_punct('.')
            && toks.get(j + 1).is_some_and(|t| t.is_ident("lock"))
            && toks.get(j + 2).is_some_and(|t| t.is_punct('('))
        {
            if let Some(recv) = j.checked_sub(1).and_then(|k| toks[k].ident()).or_else(|| {
                // `shards[i].lock()`: hop over the index expression.
                if j >= 1 && toks[j - 1].is_punct(']') {
                    let mut depth = 0i32;
                    for k in (body.start..j - 1).rev() {
                        if toks[k].is_punct(']') {
                            depth += 1;
                        } else if toks[k].is_punct('[') {
                            if depth == 0 {
                                return k.checked_sub(1).and_then(|k| toks[k].ident());
                            }
                            depth -= 1;
                        }
                    }
                }
                None
            }) {
                if let Some(c) = classes.get(recv) {
                    class = Some(c.clone());
                    line = toks[j + 1].line;
                }
            }
        }
        // A call to a guard-returning helper acquires at the call site.
        if class.is_none() {
            if let Some(name) = t.ident() {
                if toks.get(j + 1).is_some_and(|t| t.is_punct('('))
                    && !(j > 0 && toks[j - 1].is_ident("fn"))
                {
                    if let Some(c) = guard_fns.get(name) {
                        class = Some(c.clone());
                    }
                }
            }
        }
        if let Some(class) = class {
            let held = if let_bound(toks, body.start, j) {
                j..enclosing_block_end(toks, j, hi)
            } else {
                j..statement_end(toks, j, hi)
            };
            out.push(Acquisition {
                class,
                tok: j,
                line,
                held,
            });
        }
        j += 1;
    }
    out
}

/// Functions whose bodies directly touch a blocking primitive.
fn primitive_blocking(toks: &[Tok], body: std::ops::Range<usize>) -> bool {
    let hi = body.end.min(toks.len());
    toks[body.start.min(hi)..hi]
        .iter()
        .any(|t| t.ident().is_some_and(|id| BLOCKING_IDENTS.contains(&id)))
}

/// Fixpoint: a function blocks if its body blocks or it calls one that
/// does.
fn blocking_summary(ws: &Workspace, graph: &CallGraph, files: &[SourceFile]) -> Vec<bool> {
    let n = ws.fns.len();
    let mut blocking: Vec<bool> = ws
        .fns
        .iter()
        .map(|f| primitive_blocking(&files[f.file].toks, f.body.clone()))
        .collect();
    // Reverse edges, then propagate caller-ward from every blocking fn.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (caller, edges) in graph.edges.iter().enumerate() {
        for e in edges {
            rev[e.callee].push(caller);
        }
    }
    let mut work: Vec<usize> = (0..n).filter(|&i| blocking[i]).collect();
    while let Some(i) = work.pop() {
        for &caller in &rev[i] {
            if !blocking[caller] {
                blocking[caller] = true;
                work.push(caller);
            }
        }
    }
    blocking
}

/// Run the pass over the workspace. Only `crates/serve` acquisitions
/// are modelled; the blocking summary is computed workspace-wide so a
/// blocking store read two crates away still counts.
pub(crate) fn check(
    ws: &Workspace,
    graph: &CallGraph,
    files: &[SourceFile],
    bodies: &FnBodies,
    allows: &mut [Allows],
) -> Vec<Violation> {
    let serve_files: BTreeSet<usize> = files
        .iter()
        .enumerate()
        .filter(|(_, f)| f.path.starts_with("crates/serve/src/"))
        .map(|(i, _)| i)
        .collect();
    let classes = class_bindings(files, &serve_files);
    let mut guard_fns = BTreeMap::new();
    for f in &ws.fns {
        if f.returns_guard && serve_files.contains(&f.file) {
            if let Some(c) = guard_class(&files[f.file].toks, f.sig.clone()) {
                guard_fns.insert(f.name.clone(), c);
            }
        }
    }
    let blocking = blocking_summary(ws, graph, files);
    let mut out = Vec::new();
    // Class-order graph: (from, to) -> representative site.
    let mut order: BTreeMap<(String, String), (usize, u32)> = BTreeMap::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.exempt || !serve_files.contains(&f.file) {
            continue;
        }
        let toks = &files[f.file].toks;
        let acqs = acquisitions(toks, f.body.clone(), &bodies.skips[i], &classes, &guard_fns);
        for a in &acqs {
            // Nested acquisition while `a` is held → order edge.
            for b in &acqs {
                if b.tok > a.tok && a.held.contains(&b.tok) {
                    order
                        .entry((a.class.clone(), b.class.clone()))
                        .or_insert((f.file, b.line));
                }
            }
            // Blocking work while `a` is held.
            if allows[f.file].suppresses("lock-blocking", a.line) {
                continue;
            }
            let (l0, l1) = held_lines(toks, &a.held);
            let mut hit: Option<(u32, String)> = None;
            for e in &graph.edges[i] {
                if e.line >= l0 && e.line <= l1 && blocking[e.callee] {
                    let callee = ws.fns[e.callee].qualname();
                    if hit.as_ref().is_none_or(|(hl, _)| e.line < *hl) {
                        hit = Some((e.line, format!("call to blocking `{callee}`")));
                    }
                }
            }
            if hit.is_none() && primitive_blocking(toks, a.held.clone()) {
                hit = Some((a.line, "direct blocking operation".to_string()));
            }
            if let Some((line, what)) = hit {
                if allows[f.file].suppresses("lock-blocking", line) {
                    continue;
                }
                out.push(Violation {
                    file: files[f.file].path.clone(),
                    line,
                    rule: "lock-blocking",
                    msg: format!(
                        "lock `{}` held across {} in `{}`",
                        a.class,
                        what,
                        f.qualname(),
                    ),
                    chain: vec![format!(
                        "held: `{}` acquired at line {} in {}",
                        a.class,
                        a.line,
                        f.qualname(),
                    )],
                    anchor: format!("{}/{}", f.qualname(), a.class),
                    fingerprint: String::new(),
                });
            }
        }
    }
    // Cycle detection over the class-order graph: group mutually
    // reachable classes (a strongly connected component with more than
    // one class, or a self-loop: re-acquiring the same class while held
    // self-deadlocks std Mutex) and report each group once.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in order.keys() {
        adj.entry(from).or_default().push(to);
    }
    let reaches = |a: &str, b: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<&str> = adj.get(a).cloned().unwrap_or_default();
        while let Some(c) = stack.pop() {
            if c == b {
                return true;
            }
            if seen.insert(c) {
                if let Some(next) = adj.get(c) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    let nodes: BTreeSet<&str> = order
        .keys()
        .flat_map(|(a, b)| [a.as_str(), b.as_str()])
        .collect();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for &n in &nodes {
        if !reaches(n, n) {
            continue;
        }
        let cycle: Vec<String> = nodes
            .iter()
            .filter(|&&m| m == n || (reaches(n, m) && reaches(m, n)))
            .map(|m| m.to_string())
            .collect();
        if !reported.insert(cycle.clone()) {
            continue;
        }
        // Representative site: the first recorded edge inside the group.
        let (file, line) = order
            .iter()
            .find(|((a, b), _)| cycle.contains(a) && cycle.contains(b))
            .map(|(_, &site)| site)
            .unwrap_or((0, 0));
        if allows[file].suppresses("lock-cycle", line) {
            continue;
        }
        out.push(Violation {
            file: files[file].path.clone(),
            line,
            rule: "lock-cycle",
            msg: format!(
                "lock classes `{}` form a potential deadlock cycle",
                cycle.join("` -> `"),
            ),
            chain: vec![format!("order: {}", cycle.join(" -> "))],
            anchor: cycle.join("->"),
            fingerprint: String::new(),
        });
    }
    out
}

/// Line span of a held token range.
fn held_lines(toks: &[Tok], held: &std::ops::Range<usize>) -> (u32, u32) {
    let lo = toks.get(held.start).map_or(0, |t| t.line);
    let hi = toks
        .get(held.end.saturating_sub(1).min(toks.len().saturating_sub(1)))
        .map_or(lo, |t| t.line);
    (lo, hi)
}
