//! The per-file rule engine: scope resolution, test/`fn main` exemption,
//! `lint:allow` escapes, and the token-pattern matchers for every
//! `det-*` and `panic-*` rule.

use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::{rule, Violation};
use std::collections::BTreeSet;

/// Crates whose library code must be deterministic: they produce or
/// transform trial results that the paper's analyses compare bit-wise.
/// The store crate is here because its serialized bytes are themselves a
/// compared artifact (same-seed runs must write identical files), and
/// the serve crate because query responses are pinned by golden tests
/// (its socket-facing module audits its wall-clock uses explicitly).
const DET_SCOPE: &[&str] = &[
    "crates/netmodel/src/",
    "crates/scanner/src/",
    "crates/core/src/",
    "crates/telemetry/src/",
    "crates/store/src/",
    "crates/serve/src/",
    // Plans are byte-compared artifacts too: same-seed builds must emit
    // identical `.osplan` files.
    "crates/plan/src/",
];

/// Crates whose library code must not panic: wire codecs and the scan
/// engine run inside supervised sessions that expect typed errors, the
/// telemetry hub is called from inside those same sessions, the store
/// decodes untrusted (possibly corrupted) files, which must surface as
/// typed `StoreError`s, and the serve crate answers untrusted network
/// input, which must surface as typed `QueryError`s.
const PANIC_SCOPE: &[&str] = &[
    "crates/wire/src/",
    "crates/scanner/src/",
    "crates/telemetry/src/",
    "crates/store/src/",
    "crates/serve/src/",
    // The plan crate decodes untrusted (possibly corrupted) plan files
    // and its `allows()` check sits on every probe of a planned scan.
    "crates/plan/src/",
    // The adversarial co-simulation runs inside the same supervised
    // sessions: the defender sits on the probe path of every scan and
    // the sweep harness drives parallel cells whose panics would tear
    // down the whole matrix, so both must surface typed errors.
    "crates/netmodel/src/defend.rs",
    "crates/core/src/adversarial.rs",
];

/// Modules that *emit ordered output* (reports, serialized results,
/// figure tables): hash collections are banned outright here, iterated
/// or not — an un-iterated map invites the next refactor to iterate it.
const REPORT_FILES: &[&str] = &[
    "crates/core/src/modules.rs",
    "crates/core/src/report.rs",
    "crates/core/src/summary.rs",
    "crates/scanner/src/output.rs",
];

/// Path fragments exempt from every code rule.
const EXEMPT_FRAGMENTS: &[&str] = &[
    "/tests/",
    "/benches/",
    "/examples/",
    "/bin/",
    "third_party/",
];

fn in_scope(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// Is this path inside the determinism scope? (Used by the taint pass
/// to avoid double-reporting sites the per-file `det-*` rules own.)
pub(crate) fn in_det_scope(path: &str) -> bool {
    in_scope(path, DET_SCOPE)
}

pub(crate) fn path_exempt(path: &str) -> bool {
    EXEMPT_FRAGMENTS.iter().any(|f| path.contains(f))
        || path.ends_with("/main.rs")
        || path.ends_with("build.rs")
}

/// Run every applicable code rule over one file.
pub fn check_file(rel_path: &str, src: &str) -> Vec<Violation> {
    let path = rel_path.replace('\\', "/");
    let (toks, comments) = lex(src);
    let mut allows = parse_allows(&path, &toks, &comments);
    check_file_tokens(&path, &toks, &mut allows)
}

/// Run every applicable per-file rule over an already-lexed file,
/// marking used `lint:allow` escapes in `allows` so the workspace driver
/// can later flag the stale ones.
pub(crate) fn check_file_tokens(path: &str, toks: &[Tok], allows: &mut Allows) -> Vec<Violation> {
    let mut out: Vec<Violation> = allows.bad.clone();

    if !path_exempt(path) {
        let code = strip_exempt(toks);
        let mut found = Vec::new();
        if in_scope(path, DET_SCOPE) {
            det_wall_clock(path, &code, &mut found);
            det_unseeded_rng(path, &code, &mut found);
            det_hash_iter(path, &code, &mut found);
        }
        if REPORT_FILES.contains(&path) {
            det_hash_report(path, &code, &mut found);
        }
        if in_scope(path, PANIC_SCOPE) {
            panic_unwrap_expect(path, &code, &mut found);
            panic_macro(path, &code, &mut found);
            panic_lossy_cast(path, &code, &mut found);
        }
        // Observability rules cover every library crate: structured
        // output goes through the telemetry sinks, not bare stdio.
        obs_print(path, &code, &mut found);
        obs_dbg(path, &code, &mut found);
        // Registry-bypass rules cover every library crate too: the
        // probe-module registry is the one source of protocol truth.
        reg_protocol_all(path, &code, &mut found);
        for v in found {
            if !allows.suppresses(v.rule, v.line) {
                out.push(v);
            }
        }
    }
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

fn violation(path: &str, line: u32, rule_id: &'static str, msg: String) -> Violation {
    Violation {
        file: path.to_string(),
        line,
        rule: rule_id,
        msg,
        chain: Vec::new(),
        anchor: String::new(),
        fingerprint: String::new(),
    }
}

// ---------------------------------------------------------------------
// lint:allow escapes
// ---------------------------------------------------------------------

/// One well-formed `lint:allow` escape, with usage tracking for stale
/// detection.
#[derive(Debug, Clone)]
pub(crate) struct AllowEntry {
    /// Rule id the escape grants.
    pub(crate) rule: String,
    /// Target line the grant applies to.
    pub(crate) line: u32,
    /// Line of the escape comment itself (for stale diagnostics).
    pub(crate) comment_line: u32,
    /// Whether any pass actually needed the grant.
    pub(crate) used: bool,
}

/// The escapes parsed from one file.
#[derive(Debug, Default)]
pub(crate) struct Allows {
    /// Well-formed grants, in comment order.
    pub(crate) entries: Vec<AllowEntry>,
    /// Malformed escapes, reported as `lint-bad-allow`.
    pub(crate) bad: Vec<Violation>,
}

impl Allows {
    /// Does a grant cover (rule, line)? Marks every matching grant used.
    pub(crate) fn suppresses(&mut self, rule_id: &str, line: u32) -> bool {
        let mut any = false;
        for e in &mut self.entries {
            if e.rule == rule_id && e.line == line {
                e.used = true;
                any = true;
            }
        }
        any
    }
}

/// Parse every `lint:allow(rule-id) reason= justification` escape. An
/// escape on a line with code applies to that line; a comment-only line
/// applies to the next line bearing a token.
pub(crate) fn parse_allows(path: &str, toks: &[Tok], comments: &[Comment]) -> Allows {
    let tok_lines: BTreeSet<u32> = toks.iter().map(|t| t.line).collect();
    let target_of = |comment_line: u32| -> u32 {
        if tok_lines.contains(&comment_line) {
            comment_line
        } else {
            tok_lines
                .range(comment_line..)
                .next()
                .copied()
                .unwrap_or(comment_line)
        }
    };
    let mut allows = Allows::default();
    for c in comments {
        // Doc comments (`///`, `//!`, `/** */`) are prose *about* the
        // linter, not escapes; only plain comments can grant one.
        if c.text.starts_with(['/', '!', '*']) {
            continue;
        }
        let mut rest = c.text.as_str();
        while let Some(at) = rest.find("lint:allow") {
            rest = &rest[at + "lint:allow".len()..];
            // Bare mention without `(` is prose, not an escape attempt.
            let Some(open) = rest.strip_prefix('(') else {
                continue;
            };
            let Some(close) = open.find(')') else {
                allows.bad.push(violation(
                    path,
                    c.line,
                    "lint-bad-allow",
                    "unclosed lint:allow(rule-id)".to_string(),
                ));
                break;
            };
            let id = open[..close].trim();
            rest = &open[close + 1..];
            // The reason runs to the next escape (or end of comment) and
            // must be spelled `reason= justification` so escapes are
            // grep-able and unambiguous about being the audit trail.
            let reason_end = rest.find("lint:allow").unwrap_or(rest.len());
            let annot = rest[..reason_end]
                .trim_matches(|ch: char| ch.is_whitespace() || "—–-:,.".contains(ch));
            let reason = annot
                .strip_prefix("reason=")
                .map(str::trim)
                .filter(|r| !r.is_empty());
            if rule(id).is_none() {
                allows.bad.push(violation(
                    path,
                    c.line,
                    "lint-bad-allow",
                    format!("unknown rule `{id}` in lint:allow"),
                ));
            } else if reason.is_none() {
                allows.bad.push(violation(
                    path,
                    c.line,
                    "lint-bad-allow",
                    format!(
                        "lint:allow({id}) must carry `reason=` followed by the audit justification"
                    ),
                ));
            } else {
                allows.entries.push(AllowEntry {
                    rule: id.to_string(),
                    line: target_of(c.line),
                    comment_line: c.line,
                    used: false,
                });
            }
        }
    }
    allows
}

// ---------------------------------------------------------------------
// Test / `fn main` exemption
// ---------------------------------------------------------------------

/// Drop tokens inside `#[cfg(test)]` / `#[test]` items and `fn main`
/// bodies. Works purely on brace/bracket matching — no grammar needed.
fn strip_exempt(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        // `#[...]` attribute group mentioning `test` exempts the item
        // (and any stacked attributes) that follows.
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let end = match_bracket(toks, i + 1, '[', ']');
            let has_test = toks[i + 2..end].iter().any(|t| t.is_ident("test"));
            if has_test {
                i = skip_attrs(toks, end + 1);
                i = skip_item(toks, i);
                continue;
            }
            // Non-test attribute: pass its tokens through.
            out.extend_from_slice(&toks[i..=end.min(toks.len() - 1)]);
            i = end + 1;
            continue;
        }
        // `fn main` body is binary glue, exempt from library rules.
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.is_ident("main")) {
            i = skip_item(toks, i + 2);
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Index just past any further `#[...]` groups starting at `i`.
fn skip_attrs(toks: &[Tok], mut i: usize) -> usize {
    while i < toks.len()
        && toks[i].is_punct('#')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        i = match_bracket(toks, i + 1, '[', ']') + 1;
    }
    i
}

/// Skip one item starting at `i`: to the matching `}` of its first
/// brace, or to a `;` that arrives first (e.g. `use`/`mod name;`).
fn skip_item(toks: &[Tok], mut i: usize) -> usize {
    while i < toks.len() {
        if toks[i].is_punct(';') {
            return i + 1;
        }
        if toks[i].is_punct('{') {
            return match_bracket(toks, i, '{', '}') + 1;
        }
        i += 1;
    }
    i
}

/// Index of the bracket matching `toks[open]` (which must be `open_c`);
/// saturates at the last token on unbalanced input.
fn match_bracket(toks: &[Tok], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct(open_c) {
            depth += 1;
        } else if toks[i].is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

// ---------------------------------------------------------------------
// Determinism rules
// ---------------------------------------------------------------------

fn det_wall_clock(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if (name == "Instant" || name == "SystemTime")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push(violation(
                path,
                t.line,
                "det-wall-clock",
                format!("`{name}::now()` reads the wall clock; results would depend on when the run happens"),
            ));
        }
    }
}

/// Identifiers that always mean "randomness not derived from the seed".
pub(crate) const UNSEEDED_RNG_IDENTS: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "getrandom",
    "RandomState",
];

fn det_unseeded_rng(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if UNSEEDED_RNG_IDENTS.contains(&name) {
            out.push(violation(
                path,
                t.line,
                "det-unseeded-rng",
                format!("`{name}` draws entropy outside the (seed, origin, trial) key"),
            ));
        } else if name == "rand"
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("random"))
        {
            out.push(violation(
                path,
                t.line,
                "det-unseeded-rng",
                "`rand::random` is seeded from process entropy".to_string(),
            ));
        }
    }
}

/// Iteration methods whose visit order is the hash order.
pub(crate) const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Collect names bound (via `let`, field, or parameter annotations) to a
/// `HashMap`/`HashSet` type anywhere in the file.
pub(crate) fn hash_bindings(toks: &[Tok]) -> BTreeSet<String> {
    let mut bound = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        // `name: [&] [mut] path::to::HashMap<...>`
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            let mut j = i + 2;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('&' | ':') | TokKind::Lifetime => j += 1,
                    TokKind::Ident(s) if s == "mut" || s == "dyn" => j += 1,
                    TokKind::Ident(s) => {
                        if s == "HashMap" || s == "HashSet" {
                            bound.insert(name.to_string());
                        }
                        // Only walk the path head; generics can nest
                        // hash types that are someone else's binding.
                        if toks.get(j + 1).is_some_and(|t| t.is_punct(':')) {
                            j += 1;
                            continue;
                        }
                        break;
                    }
                    _ => break,
                }
            }
        }
        // `let [mut] name = [path::]HashMap::...` / `HashSet::...`
        if name == "let" {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(bind) = toks.get(j).and_then(Tok::ident) else {
                continue;
            };
            if !toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                continue;
            }
            let mut k = j + 2;
            while k < toks.len() {
                match &toks[k].kind {
                    TokKind::Punct(':') => k += 1,
                    TokKind::Ident(s) => {
                        if s == "HashMap" || s == "HashSet" {
                            bound.insert(bind.to_string());
                        }
                        if toks.get(k + 1).is_some_and(|t| t.is_punct(':')) {
                            k += 1;
                            continue;
                        }
                        break;
                    }
                    _ => break,
                }
            }
        }
    }
    bound
}

fn det_hash_iter(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    let bound = hash_bindings(toks);
    if bound.is_empty() {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if !bound.contains(name) {
            continue;
        }
        // `name.iter()` / `.keys()` / `.drain()` / …
        if toks.get(i + 1).is_some_and(|t| t.is_punct('.')) {
            if let Some(m) = toks.get(i + 2).and_then(Tok::ident) {
                if HASH_ITER_METHODS.contains(&m)
                    && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
                {
                    out.push(violation(
                        path,
                        t.line,
                        "det-hash-iter",
                        format!("`{name}.{m}()` visits a hash collection in entropy-seeded order"),
                    ));
                }
            }
        }
        // `for pat in [&] [mut] name {` — direct IntoIterator use.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('{')) {
            let mut j = i;
            while j > 0 {
                match &toks[j - 1].kind {
                    TokKind::Punct('&') => j -= 1,
                    TokKind::Ident(s) if s == "mut" => j -= 1,
                    _ => break,
                }
            }
            if j > 0 && toks[j - 1].is_ident("in") {
                out.push(violation(
                    path,
                    t.line,
                    "det-hash-iter",
                    format!("`for … in {name}` visits a hash collection in entropy-seeded order"),
                ));
            }
        }
    }
}

fn det_hash_report(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for t in toks {
        let Some(name) = t.ident() else { continue };
        if name == "HashMap" || name == "HashSet" {
            out.push(violation(
                path,
                t.line,
                "det-hash-report",
                format!(
                    "`{name}` in a report/serialization module; output order must be reproducible"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Observability rules
// ---------------------------------------------------------------------

const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];

fn obs_print(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if PRINT_MACROS.contains(&name) && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            out.push(violation(
                path,
                t.line,
                "obs-print",
                format!("`{name}!` writes bare stdio from library code"),
            ));
        }
    }
}

fn obs_dbg(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("dbg") && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            out.push(violation(
                path,
                t.line,
                "obs-dbg",
                "`dbg!` is unstructured stderr debugging left in library code".to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Panic-safety rules
// ---------------------------------------------------------------------

fn panic_unwrap_expect(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_punct('.') {
            continue;
        }
        let Some(m) = toks.get(i + 1).and_then(Tok::ident) else {
            continue;
        };
        if !toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let (rule_id, desc) = match m {
            "unwrap" | "unwrap_err" => ("panic-unwrap", "panics on the unexpected variant"),
            "expect" | "expect_err" => ("panic-expect", "panics on the unexpected variant"),
            _ => continue,
        };
        out.push(violation(
            path,
            toks[i + 1].line,
            rule_id,
            format!("`.{m}()` {desc} inside library code"),
        ));
    }
}

pub(crate) const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn panic_macro(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if PANIC_MACROS.contains(&name) && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            out.push(violation(
                path,
                t.line,
                "panic-macro",
                format!("`{name}!` aborts the scan instead of surfacing a typed error"),
            ));
        }
    }
}

fn reg_protocol_all(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("Protocol")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("ALL"))
        {
            out.push(violation(
                path,
                t.line,
                "reg-protocol-all",
                "`Protocol::ALL` hardcodes the paper's TCP trio instead of consulting \
                 the probe-module registry"
                    .to_string(),
            ));
        }
    }
}

const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

fn panic_lossy_cast(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        // `.len() as uN` — silently truncates once the buffer is big.
        if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_ident("len"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 4).is_some_and(|t| t.is_ident("as"))
        {
            if let Some(ty) = toks.get(i + 5).and_then(Tok::ident) {
                if NARROW_INTS.contains(&ty) {
                    out.push(violation(
                        path,
                        toks[i + 4].line,
                        "panic-lossy-cast",
                        format!("`.len() as {ty}` silently truncates large lengths"),
                    ));
                }
            }
        }
        // `as uN as usize` — truncate-then-widen index arithmetic.
        if t.is_ident("as") {
            if let Some(ty) = toks.get(i + 1).and_then(Tok::ident) {
                if NARROW_INTS.contains(&ty)
                    && toks.get(i + 2).is_some_and(|t| t.is_ident("as"))
                    && toks.get(i + 3).is_some_and(|t| t.is_ident("usize"))
                {
                    out.push(violation(
                        path,
                        t.line,
                        "panic-lossy-cast",
                        format!("`as {ty} as usize` truncates before widening back to an index"),
                    ));
                }
            }
        }
    }
}
