//! The item-parsing layer on top of the lexer: function definitions,
//! impl blocks, inline modules, and `use` imports, assembled into a
//! workspace symbol table that the interprocedural passes
//! ([`crate::callgraph`], [`crate::reach`], [`crate::taint`],
//! [`crate::locks`]) resolve calls against.
//!
//! Like the lexer, the parser is total: it never panics on weird input,
//! it just produces fewer items. It tracks exactly the structure the
//! passes need — module paths, impl self-types, body token ranges, and
//! the test/`fn main` exemption — and leaves expressions flat.

use crate::lexer::{Tok, TokKind};
use std::collections::BTreeMap;
use std::ops::Range;

/// One source file, lexed once and shared by every pass.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative forward-slash path.
    pub path: String,
    /// Token stream (comments separated out).
    pub toks: Vec<Tok>,
    /// Comments, for `lint:allow` escapes.
    pub comments: Vec<crate::lexer::Comment>,
}

/// One function (free function, inherent/trait method, or nested `fn`).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index of the containing [`SourceFile`].
    pub file: usize,
    /// Crate key: the directory under `crates/` (`"netmodel"`, …).
    pub crate_name: String,
    /// Module path within the crate (file path + inline `mod` blocks).
    pub module: Vec<String>,
    /// Self type when defined inside `impl Type` / `trait Type`.
    pub self_ty: Option<String>,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the signature (from `fn` to the body brace).
    pub sig: Range<usize>,
    /// Token range of the body including both braces; empty when the
    /// function has no body (trait method declaration).
    pub body: Range<usize>,
    /// `pub` (any visibility restriction counts as pub for entry-point
    /// purposes only when unrestricted `pub`).
    pub is_pub: bool,
    /// Inside `#[cfg(test)]`/`#[test]` items, `fn main`, or an exempt
    /// path — invisible to every pass.
    pub exempt: bool,
    /// The signature's return type mentions `MutexGuard`: calling this
    /// function acquires a lock that the *caller* holds.
    pub returns_guard: bool,
}

impl FnDef {
    /// Fully qualified display name, e.g. `store::format::decode_chunk`
    /// or `serve::engine::QueryEngine::set_for`.
    pub fn qualname(&self) -> String {
        let mut s = self.crate_name.clone();
        for m in &self.module {
            s.push_str("::");
            s.push_str(m);
        }
        if let Some(ty) = &self.self_ty {
            s.push_str("::");
            s.push_str(ty);
        }
        s.push_str("::");
        s.push_str(&self.name);
        s
    }
}

/// The parsed workspace: every function plus per-file import tables.
#[derive(Debug, Default)]
pub struct Workspace {
    /// All function definitions, in (file, token) order.
    pub fns: Vec<FnDef>,
    /// Per-file: imported name → full path segments (`use a::b::c` maps
    /// `c → [a, b, c]`; `use a::b as d` maps `d → [a, b]`).
    pub imports: Vec<BTreeMap<String, Vec<String>>>,
    /// Per-file: module paths glob-imported via `use a::b::*`.
    pub globs: Vec<Vec<Vec<String>>>,
}

/// Crate key from a workspace-relative path (`crates/<k>/src/…`).
pub fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    let (krate, tail) = rest.split_once('/')?;
    tail.strip_prefix("src/").map(|_| krate)
}

/// Module path of a file within its crate (`src/a/b.rs` → `[a, b]`,
/// `src/a/mod.rs` → `[a]`, `src/lib.rs` → `[]`).
pub fn file_module(path: &str) -> Vec<String> {
    let Some(rest) = path.strip_prefix("crates/") else {
        return Vec::new();
    };
    let Some((_, tail)) = rest.split_once("/src/") else {
        return Vec::new();
    };
    let mut mods: Vec<String> = tail
        .trim_end_matches(".rs")
        .split('/')
        .map(str::to_string)
        .collect();
    if mods.last().is_some_and(|m| m == "lib" || m == "mod") {
        mods.pop();
    }
    mods
}

/// Parse every file into the workspace symbol table.
pub fn parse_workspace(files: &[SourceFile]) -> Workspace {
    let mut ws = Workspace::default();
    for (idx, f) in files.iter().enumerate() {
        let mut p = ItemParser::new(idx, f);
        p.run(&mut ws);
        ws.imports.push(p.imports);
        ws.globs.push(p.globs);
    }
    ws
}

/// Keywords that can precede `(` without being a call, and can never be
/// a function name at a definition site we should record.
pub const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "return", "break", "continue", "as", "in",
    "let", "mut", "ref", "move", "fn", "impl", "trait", "struct", "enum", "union", "mod", "use",
    "pub", "where", "unsafe", "extern", "const", "static", "type", "dyn", "box", "self", "Self",
    "super", "crate", "async", "await", "true", "false",
];

struct Frame {
    kind: FrameKind,
    exempt: bool,
}

enum FrameKind {
    /// Inline `mod name { … }`.
    Mod,
    /// `impl`/`trait` block; the self type applies to contained fns.
    Impl(Option<String>),
    /// A function body; on close, patch the recorded body range.
    Fn(usize),
    /// Any other brace group.
    Block,
}

struct ItemParser<'f> {
    file: usize,
    crate_name: String,
    file_mods: Vec<String>,
    toks: &'f [Tok],
    i: usize,
    frames: Vec<Frame>,
    /// A `#[test]`/`#[cfg(test)]` attribute is pending for the next item.
    pending_exempt: bool,
    path_exempt: bool,
    imports: BTreeMap<String, Vec<String>>,
    globs: Vec<Vec<String>>,
}

impl<'f> ItemParser<'f> {
    fn new(file: usize, f: &'f SourceFile) -> Self {
        ItemParser {
            file,
            crate_name: crate_of(&f.path).unwrap_or("").to_string(),
            file_mods: file_module(&f.path),
            toks: &f.toks,
            i: 0,
            frames: Vec::new(),
            pending_exempt: false,
            path_exempt: crate::rules::path_exempt(&f.path),
            imports: BTreeMap::new(),
            globs: Vec::new(),
        }
    }

    fn exempt_here(&self) -> bool {
        self.path_exempt || self.frames.last().is_some_and(|f| f.exempt)
    }

    /// Current module path: file modules + inline `mod` names.
    fn module_path(&self) -> Vec<String> {
        // Inline mod names are tracked positionally alongside frames; we
        // rebuild from the `mod_names` stack maintained in `run`.
        self.file_mods.clone()
    }

    /// Current impl self-type, if inside an `impl`/`trait` frame.
    fn self_ty(&self) -> Option<String> {
        for fr in self.frames.iter().rev() {
            match &fr.kind {
                FrameKind::Impl(ty) => return ty.clone(),
                FrameKind::Fn(_) => return None,
                _ => {}
            }
        }
        None
    }

    fn inside_fn(&self) -> bool {
        self.frames
            .iter()
            .any(|f| matches!(f.kind, FrameKind::Fn(_)))
    }

    fn run(&mut self, ws: &mut Workspace) {
        let mut inline_mods: Vec<(usize, String)> = Vec::new(); // (frame depth, name)
        while self.i < self.toks.len() {
            let t = &self.toks[self.i];
            match &t.kind {
                TokKind::Punct('#') => self.attr(),
                TokKind::Punct('{') => {
                    self.frames.push(Frame {
                        kind: FrameKind::Block,
                        exempt: self.exempt_here() || self.pending_exempt,
                    });
                    self.pending_exempt = false;
                    self.i += 1;
                }
                TokKind::Punct('}') => {
                    if let Some(fr) = self.frames.pop() {
                        match fr.kind {
                            FrameKind::Fn(def) => ws.fns[def].body.end = self.i + 1,
                            FrameKind::Mod
                                if inline_mods
                                    .last()
                                    .is_some_and(|(d, _)| *d == self.frames.len()) =>
                            {
                                inline_mods.pop();
                            }
                            _ => {}
                        }
                    }
                    self.i += 1;
                }
                TokKind::Ident(kw) if kw == "mod" => {
                    let name = self.toks.get(self.i + 1).and_then(Tok::ident);
                    let opener = self.toks.get(self.i + 2);
                    match (name, opener) {
                        (Some(n), Some(o)) if o.is_punct('{') => {
                            inline_mods.push((self.frames.len(), n.to_string()));
                            self.frames.push(Frame {
                                kind: FrameKind::Mod,
                                exempt: self.exempt_here() || self.pending_exempt,
                            });
                            self.pending_exempt = false;
                            self.i += 3;
                        }
                        _ => {
                            self.pending_exempt = false;
                            self.i += 1;
                        }
                    }
                }
                TokKind::Ident(kw) if kw == "impl" || kw == "trait" => {
                    let ty = if kw == "impl" {
                        self.impl_self_ty()
                    } else {
                        self.toks
                            .get(self.i + 1)
                            .and_then(Tok::ident)
                            .map(str::to_string)
                    };
                    // Advance to the opening brace (or `;` for e.g.
                    // `impl Trait for Type;`-like degenerate input).
                    let mut j = self.i + 1;
                    let mut angle = 0i32;
                    while j < self.toks.len() {
                        match &self.toks[j].kind {
                            TokKind::Punct('<') => angle += 1,
                            TokKind::Punct('>') => angle -= 1,
                            TokKind::Punct('{') if angle <= 0 => break,
                            TokKind::Punct(';') if angle <= 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if self.toks.get(j).is_some_and(|t| t.is_punct('{')) {
                        self.frames.push(Frame {
                            kind: FrameKind::Impl(ty),
                            exempt: self.exempt_here() || self.pending_exempt,
                        });
                        self.pending_exempt = false;
                        self.i = j + 1;
                    } else {
                        self.pending_exempt = false;
                        self.i = j.max(self.i + 1);
                    }
                }
                TokKind::Ident(kw) if kw == "fn" => {
                    self.fn_item(ws, &inline_mods);
                }
                TokKind::Ident(kw) if kw == "use" && !self.inside_fn() => {
                    self.use_decl();
                }
                _ => {
                    self.i += 1;
                }
            }
        }
        // Unbalanced input: close any dangling fn bodies at EOF.
        for fr in self.frames.drain(..) {
            if let FrameKind::Fn(def) = fr.kind {
                ws.fns[def].body.end = self.toks.len();
            }
        }
    }

    /// Handle `#[…]` / `#![…]`: skip it, noting test markers.
    fn attr(&mut self) {
        let mut j = self.i + 1;
        if self.toks.get(j).is_some_and(|t| t.is_punct('!')) {
            j += 1; // inner attribute `#![…]` never exempts an item
        }
        if !self.toks.get(j).is_some_and(|t| t.is_punct('[')) {
            self.i += 1;
            return;
        }
        let mut depth = 0usize;
        let mut has_test = false;
        let inner = j == self.i + 2;
        while j < self.toks.len() {
            match &self.toks[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident(s) if s == "test" => has_test = true,
                _ => {}
            }
            j += 1;
        }
        if has_test && !inner {
            self.pending_exempt = true;
        }
        self.i = j + 1;
    }

    /// Self-type of an `impl` header: the last path ident of the type
    /// (after `for` when present), ignoring generics and where clauses.
    fn impl_self_ty(&self) -> Option<String> {
        let mut j = self.i + 1;
        let mut angle = 0i32;
        let mut last_ident: Option<&str> = None;
        while j < self.toks.len() {
            match &self.toks[j].kind {
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle -= 1,
                TokKind::Punct('{' | ';') if angle <= 0 => break,
                TokKind::Ident(s) if angle <= 0 => {
                    if s == "for" {
                        // `impl Trait for Type`: only the type counts.
                        last_ident = None;
                    } else if s == "where" {
                        break;
                    } else if !KEYWORDS.contains(&s.as_str()) {
                        last_ident = Some(s);
                    }
                }
                _ => {}
            }
            j += 1;
        }
        last_ident.map(str::to_string)
    }

    fn fn_item(&mut self, ws: &mut Workspace, inline_mods: &[(usize, String)]) {
        let fn_line = self.toks[self.i].line;
        let Some(name) = self.toks.get(self.i + 1).and_then(Tok::ident) else {
            self.i += 1;
            return;
        };
        // Visibility: look back past attributes for `pub` not followed
        // by a restriction (`pub(crate)` is not an entry-point surface).
        let mut is_pub = false;
        let mut back = self.i;
        while back > 0 {
            match self.toks[back - 1].ident() {
                Some("pub") => {
                    is_pub = true;
                    break;
                }
                Some("const" | "unsafe" | "async" | "extern") => back -= 1,
                _ => {
                    if self.toks[back - 1].is_punct(')') {
                        // `pub(crate) fn` — restricted, walk past `(…)`.
                        let mut k = back - 1;
                        let mut d = 0i32;
                        while k > 0 {
                            if self.toks[k].is_punct(')') {
                                d += 1;
                            } else if self.toks[k].is_punct('(') {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            k -= 1;
                        }
                        if k > 0 && self.toks[k - 1].is_ident("pub") {
                            break; // restricted pub: not an entry surface
                        }
                    }
                    break;
                }
            }
        }
        // Scan the signature to the body `{` or a `;`.
        let sig_start = self.i;
        let mut j = self.i + 2;
        let mut angle = 0i32;
        let mut returns_guard = false;
        while j < self.toks.len() {
            match &self.toks[j].kind {
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle = (angle - 1).max(0),
                TokKind::Punct('{') => break,
                TokKind::Punct(';') if angle <= 0 => break,
                TokKind::Ident(s) if s == "MutexGuard" => returns_guard = true,
                _ => {}
            }
            j += 1;
        }
        let mut module = self.module_path();
        for (_, m) in inline_mods {
            module.push(m.clone());
        }
        let exempt = self.exempt_here() || self.pending_exempt || name == "main" || {
            // Functions nested inside `fn main` inherit its exemption.
            self.enclosing_fn_is_main(ws)
        };
        self.pending_exempt = false;
        let def = FnDef {
            file: self.file,
            crate_name: self.crate_name.clone(),
            module,
            self_ty: self.self_ty(),
            name: name.to_string(),
            line: fn_line,
            sig: sig_start..j,
            // Starts empty at the body brace; the end is patched when the
            // frame pops (no-body trait declarations stay empty).
            body: j..j,
            is_pub,
            exempt,
            returns_guard,
        };
        let idx = ws.fns.len();
        ws.fns.push(def);
        if self.toks.get(j).is_some_and(|t| t.is_punct('{')) {
            self.frames.push(Frame {
                kind: FrameKind::Fn(idx),
                exempt,
            });
            self.i = j + 1;
        } else {
            self.i = j.max(self.i + 1);
        }
    }

    fn enclosing_fn_is_main(&self, ws: &Workspace) -> bool {
        for fr in self.frames.iter().rev() {
            if let FrameKind::Fn(def) = fr.kind {
                return ws.fns[def].name == "main" || ws.fns[def].exempt;
            }
        }
        false
    }

    /// Parse `use path::to::{a, b as c, d::*};` into the import tables.
    fn use_decl(&mut self) {
        let mut j = self.i + 1;
        // Skip a leading visibility: `pub use …`, handled by caller order
        // (the `pub` token was consumed as a plain ident earlier).
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(&mut j, &mut prefix);
        while j < self.toks.len() && !self.toks[j].is_punct(';') {
            j += 1;
        }
        self.i = j + 1;
    }

    fn use_tree(&mut self, j: &mut usize, prefix: &mut Vec<String>) {
        let depth_at_entry = prefix.len();
        loop {
            match self.toks.get(*j).map(|t| &t.kind) {
                Some(TokKind::Ident(s)) => {
                    let seg = s.clone();
                    *j += 1;
                    // `seg as alias`
                    if self.toks.get(*j).is_some_and(|t| t.is_ident("as")) {
                        if let Some(alias) = self.toks.get(*j + 1).and_then(Tok::ident) {
                            let mut full = prefix.clone();
                            full.push(seg);
                            self.imports.insert(alias.to_string(), full);
                            *j += 2;
                        } else {
                            *j += 1;
                        }
                        break;
                    }
                    if self.toks.get(*j).is_some_and(|t| t.is_punct(':'))
                        && self.toks.get(*j + 1).is_some_and(|t| t.is_punct(':'))
                    {
                        prefix.push(seg);
                        *j += 2;
                        continue;
                    }
                    // Leaf import.
                    let mut full = prefix.clone();
                    full.push(seg.clone());
                    self.imports.insert(seg, full);
                    break;
                }
                Some(TokKind::Punct('{')) => {
                    *j += 1;
                    loop {
                        let before = *j;
                        self.use_tree(j, prefix);
                        if self.toks.get(*j).is_some_and(|t| t.is_punct(',')) {
                            *j += 1;
                            continue;
                        }
                        if self.toks.get(*j).is_some_and(|t| t.is_punct('}')) {
                            *j += 1;
                            break;
                        }
                        if *j == before {
                            *j += 1; // defensive progress on weird input
                        }
                        if *j >= self.toks.len() {
                            break;
                        }
                    }
                    break;
                }
                Some(TokKind::Punct('*')) => {
                    self.globs.push(prefix.clone());
                    *j += 1;
                    break;
                }
                _ => break,
            }
        }
        prefix.truncate(depth_at_entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_one(path: &str, src: &str) -> (Workspace, Vec<SourceFile>) {
        let (toks, comments) = lex(src);
        let files = vec![SourceFile {
            path: path.to_string(),
            toks,
            comments,
        }];
        let ws = parse_workspace(&files);
        (ws, files)
    }

    #[test]
    fn fn_defs_with_modules_and_impls() {
        let src = r#"
            pub fn top() {}
            mod inner {
                impl Widget {
                    pub fn poke(&self) { helper(); }
                }
                fn helper() {}
            }
        "#;
        let (ws, _) = parse_one("crates/demo/src/lib.rs", src);
        let names: Vec<String> = ws.fns.iter().map(FnDef::qualname).collect();
        assert_eq!(
            names,
            [
                "demo::top",
                "demo::inner::Widget::poke",
                "demo::inner::helper"
            ]
        );
        assert!(ws.fns[0].is_pub && ws.fns[1].is_pub && !ws.fns[2].is_pub);
    }

    #[test]
    fn file_module_paths() {
        assert!(file_module("crates/x/src/lib.rs").is_empty());
        assert_eq!(file_module("crates/x/src/a.rs"), ["a"]);
        assert_eq!(file_module("crates/x/src/a/mod.rs"), ["a"]);
        assert_eq!(file_module("crates/x/src/a/b.rs"), ["a", "b"]);
    }

    #[test]
    fn test_items_and_main_are_exempt() {
        let src = r#"
            fn lib_code() {}
            fn main() { fn nested() {} }
            #[cfg(test)]
            mod tests {
                fn in_tests() {}
            }
            #[test]
            fn a_test() {}
        "#;
        let (ws, _) = parse_one("crates/demo/src/lib.rs", src);
        let by_name = |n: &str| ws.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("lib_code").exempt);
        assert!(by_name("main").exempt);
        assert!(by_name("nested").exempt);
        assert!(by_name("in_tests").exempt);
        assert!(by_name("a_test").exempt);
    }

    #[test]
    fn impl_trait_for_type_records_the_type() {
        let src = r#"
            impl fmt::Display for Report { fn fmt(&self) {} }
            impl<T: Clone> Holder<T> { fn get_inner(&self) {} }
            trait Probe { fn fire(&self) { default_body(); } }
        "#;
        let (ws, _) = parse_one("crates/demo/src/lib.rs", src);
        let tys: Vec<(Option<String>, String)> = ws
            .fns
            .iter()
            .map(|f| (f.self_ty.clone(), f.name.clone()))
            .collect();
        assert_eq!(
            tys,
            [
                (Some("Report".into()), "fmt".into()),
                (Some("Holder".into()), "get_inner".into()),
                (Some("Probe".into()), "fire".into()),
            ]
        );
    }

    #[test]
    fn use_imports_and_globs() {
        let src = r#"
            use originscan_store::{ScanSet, store::StoreReader as Reader};
            use originscan_core::report::*;
            fn f() {}
        "#;
        let (ws, _) = parse_one("crates/demo/src/lib.rs", src);
        assert_eq!(
            ws.imports[0].get("ScanSet").unwrap(),
            &vec!["originscan_store".to_string(), "ScanSet".to_string()]
        );
        assert_eq!(
            ws.imports[0].get("Reader").unwrap(),
            &vec![
                "originscan_store".to_string(),
                "store".to_string(),
                "StoreReader".to_string()
            ]
        );
        assert_eq!(
            ws.globs[0],
            vec![vec!["originscan_core".to_string(), "report".to_string()]]
        );
    }

    #[test]
    fn body_ranges_cover_braces_and_nested_fns() {
        let src = "fn outer() { inner_call(); fn nested() { deep(); } after(); }";
        let (ws, files) = parse_one("crates/demo/src/lib.rs", src);
        let outer = &ws.fns[0];
        let nested = &ws.fns[1];
        assert!(outer.body.start < nested.body.start);
        assert!(nested.body.end < outer.body.end);
        assert!(files[0].toks[outer.body.start].is_punct('{'));
        assert!(files[0].toks[outer.body.end - 1].is_punct('}'));
    }

    #[test]
    fn guard_returning_signature_detected() {
        let src = "fn lock_it(&self) -> Result<MutexGuard<'_, T>, E> { body() }";
        let (ws, _) = parse_one("crates/demo/src/lib.rs", src);
        assert!(ws.fns[0].returns_guard);
    }
}
