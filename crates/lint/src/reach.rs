//! Interprocedural panic-reachability.
//!
//! From the supervised entry points (the scan loop, the serve request
//! handlers, the store decode paths, the defender agents, and the
//! adversarial sweep harness) every transitively reachable
//! `panic!`/`unwrap`/`expect`/slice-index site is a way for a supervised
//! session to die without a typed error. The per-file `panic-*` rules
//! only see the crates they scope; this pass follows calls across
//! helpers and crates and reports the *shortest* call chain from an
//! entry point as the diagnostic.

use crate::callgraph::{render_chain, shortest_chains, CallGraph, FnBodies};
use crate::lexer::Tok;
use crate::parse::{SourceFile, Workspace, KEYWORDS};
use crate::rules::Allows;
use crate::Violation;

/// Files whose unrestricted-`pub` functions are supervised entry points.
///
/// This replaces the old PANIC_SCOPE file-list approximation for
/// reachability purposes: anything these surfaces can reach is on a
/// supervised path, whichever crate it lives in.
pub const ENTRY_SCOPE: &[&str] = &[
    "crates/scanner/src/engine.rs",
    "crates/serve/src/http.rs",
    "crates/serve/src/engine.rs",
    "crates/store/src/",
    "crates/netmodel/src/defend.rs",
    "crates/core/src/adversarial.rs",
];

/// One potential panic site inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based line.
    pub line: u32,
    /// `unwrap` / `expect` / `panic!` / `index`, for the message.
    pub what: String,
    /// Per-file rule whose `lint:allow` also covers this site kind.
    pub legacy_rule: &'static str,
}

const UNWRAP_METHODS: &[&str] = &["unwrap", "unwrap_err"];
const EXPECT_METHODS: &[&str] = &["expect", "expect_err"];

/// Scan one body token range for panic sites (nested bodies excluded).
pub fn panic_sites(
    toks: &[Tok],
    range: std::ops::Range<usize>,
    skip: &[std::ops::Range<usize>],
) -> Vec<PanicSite> {
    let mut out = Vec::new();
    let hi = range.end.min(toks.len());
    let mut j = range.start;
    while j < hi {
        if let Some(s) = skip.iter().find(|s| s.contains(&j)) {
            j = s.end;
            continue;
        }
        let t = &toks[j];
        // `.unwrap()` / `.expect(…)` and friends.
        if t.is_punct('.') {
            if let Some(m) = toks.get(j + 1).and_then(Tok::ident) {
                if toks.get(j + 2).is_some_and(|t| t.is_punct('(')) {
                    if UNWRAP_METHODS.contains(&m) {
                        out.push(PanicSite {
                            line: toks[j + 1].line,
                            what: format!(".{m}()"),
                            legacy_rule: "panic-unwrap",
                        });
                    } else if EXPECT_METHODS.contains(&m) {
                        out.push(PanicSite {
                            line: toks[j + 1].line,
                            what: format!(".{m}()"),
                            legacy_rule: "panic-expect",
                        });
                    }
                }
            }
        }
        // `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
        if let Some(name) = t.ident() {
            if crate::rules::PANIC_MACROS.contains(&name)
                && toks.get(j + 1).is_some_and(|t| t.is_punct('!'))
            {
                out.push(PanicSite {
                    line: t.line,
                    what: format!("{name}!"),
                    legacy_rule: "panic-macro",
                });
            }
        }
        // Slice/array indexing `expr[…]`: panics when out of bounds.
        if t.is_punct('[') && j > range.start {
            let prev = &toks[j - 1];
            let indexable = match prev.ident() {
                Some(id) => !KEYWORDS.contains(&id),
                None => prev.is_punct(')') || prev.is_punct(']'),
            };
            // A full-range slice `x[..]` cannot fail.
            let full_range = toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
                && toks.get(j + 2).is_some_and(|t| t.is_punct('.'))
                && toks.get(j + 3).is_some_and(|t| t.is_punct(']'));
            if indexable && !full_range {
                out.push(PanicSite {
                    line: t.line,
                    what: "index expression".to_string(),
                    legacy_rule: "reach-panic",
                });
            }
        }
        j += 1;
    }
    out
}

/// Indices of entry-point functions: unrestricted-`pub`, non-exempt
/// functions defined in [`ENTRY_SCOPE`] files.
pub fn entry_points(ws: &Workspace, files: &[SourceFile]) -> Vec<usize> {
    ws.fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.is_pub
                && !f.exempt
                && ENTRY_SCOPE
                    .iter()
                    .any(|p| files[f.file].path.starts_with(p))
        })
        .map(|(i, _)| i)
        .collect()
}

/// Run the pass: every panic site in a function reachable from an entry
/// point becomes a `reach-panic` finding carrying the shortest chain.
pub(crate) fn check(
    ws: &Workspace,
    graph: &CallGraph,
    files: &[SourceFile],
    bodies: &FnBodies,
    allows: &mut [Allows],
) -> Vec<Violation> {
    let entries = entry_points(ws, files);
    let chains = shortest_chains(graph, ws.fns.len(), &entries);
    let mut out = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.exempt {
            continue;
        }
        let Some(chain) = &chains[i] else { continue };
        let toks = &files[f.file].toks;
        for site in panic_sites(toks, f.body.clone(), &bodies.skips[i]) {
            let al = &mut allows[f.file];
            if al.suppresses("reach-panic", site.line)
                || (site.legacy_rule != "reach-panic" && al.suppresses(site.legacy_rule, site.line))
            {
                continue;
            }
            let entry = &ws.fns[chain[0].func];
            let mut v = Violation {
                file: files[f.file].path.clone(),
                line: site.line,
                rule: "reach-panic",
                msg: format!(
                    "{} in `{}` can panic and is reachable from supervised entry `{}`",
                    site.what,
                    f.qualname(),
                    entry.qualname(),
                ),
                chain: vec![format!("chain: {}", render_chain(ws, chain))],
                anchor: format!("{}/{}", f.qualname(), site.what),
                fingerprint: String::new(),
            };
            if chain.len() == 1 {
                v.chain = vec![format!("chain: {} (entry point itself)", entry.qualname())];
            }
            out.push(v);
        }
    }
    out
}
