//! A lightweight Rust lexer: just enough token structure for the lint
//! rules, with none of the grammar.
//!
//! The rules only ever need four things from a source file: identifier
//! and punctuation tokens with line numbers, comment text (for
//! `lint:allow` escapes), and the guarantee that string/char literal
//! *content* never leaks into the token stream (so `"Instant::now"` in
//! an error message is not a violation). Everything else — expressions,
//! types, items — stays flat. This keeps the analyzer fully offline and
//! dependency-free, per the workspace's vendored-deps policy.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Token payload.
    pub kind: TokKind,
}

/// The token classes the rules distinguish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident(String),
    /// A single punctuation character (`.`, `:`, `!`, `[`, …).
    Punct(char),
    /// Any string literal (`"…"`, `r#"…"#`, `b"…"`); content dropped.
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A numeric literal (content dropped).
    Num,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the exact punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// True when this token is the exact identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(t) if t == s)
    }
}

/// A comment with its starting line (text excludes the `//`/`/*` markers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body text.
    pub text: String,
}

/// Lex `src` into tokens and comments.
///
/// The lexer is total: any byte sequence produces *some* token stream
/// (unterminated literals consume to end of file), so the linter can
/// never panic on weird input — it is itself subject to the
/// panic-safety rules it enforces.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    toks: Vec<Tok>,
    comments: Vec<Comment>,
    src: &'s str,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Self {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            toks: Vec::new(),
            comments: Vec::new(),
            src,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(ch) = c {
            self.pos += 1;
            if ch == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn run(mut self) -> (Vec<Tok>, Vec<Comment>) {
        // Tolerate a shebang / BOM on the first line.
        if self.src.starts_with("#!") && !self.src.starts_with("#![") {
            while let Some(c) = self.peek(0) {
                if c == '\n' {
                    break;
                }
                self.bump();
            }
        }
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == 'r' && matches!(self.peek(1), Some('"' | '#')) && self.is_raw_start(1) {
                self.raw_string(1);
            } else if c == 'b' {
                self.byte_prefixed();
            } else if c == '"' {
                self.string();
            } else if c == '\'' {
                self.quote();
            } else if c.is_ascii_digit() {
                self.number();
            } else if c == '_' || c.is_alphabetic() {
                self.ident();
            } else {
                let line = self.line;
                self.bump();
                self.toks.push(Tok {
                    line,
                    kind: TokKind::Punct(c),
                });
            }
        }
        (self.toks, self.comments)
    }

    /// Does a raw-string opener (`"`, `#"`, `##"`, …) start at offset `at`?
    fn is_raw_start(&self, at: usize) -> bool {
        let mut i = at;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.comments.push(Comment { line, text });
    }

    /// `b"…"`, `b'…'`, `br"…"`, or just an identifier starting with `b`.
    fn byte_prefixed(&mut self) {
        match self.peek(1) {
            Some('"') => {
                self.bump();
                self.string();
            }
            Some('\'') => {
                self.bump();
                self.char_lit();
            }
            Some('r') if self.is_raw_start(2) => self.raw_string(2),
            _ => self.ident(),
        }
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == '"' {
                break;
            }
        }
        self.toks.push(Tok {
            line,
            kind: TokKind::Str,
        });
    }

    /// Raw string starting with `prefix_len` chars of prefix (`r`/`br`)
    /// before the `#…"` opener.
    fn raw_string(&mut self, prefix_len: usize) {
        let line = self.line;
        for _ in 0..prefix_len {
            self.bump();
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.toks.push(Tok {
            line,
            kind: TokKind::Str,
        });
    }

    /// `'a` (lifetime) vs `'a'` (char literal).
    fn quote(&mut self) {
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(c) if c == '_' || c.is_alphabetic() => {
                // Scan the identifier run; a closing quote right after
                // makes it a char literal ('q'), otherwise a lifetime.
                let mut i = 2;
                while matches!(self.peek(i), Some(c) if c == '_' || c.is_alphanumeric()) {
                    i += 1;
                }
                self.peek(i) != Some('\'')
            }
            _ => false,
        };
        if is_lifetime {
            let line = self.line;
            self.bump(); // '
            while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
                self.bump();
            }
            self.toks.push(Tok {
                line,
                kind: TokKind::Lifetime,
            });
        } else {
            self.char_lit();
        }
    }

    fn char_lit(&mut self) {
        let line = self.line;
        self.bump(); // opening '
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == '\'' {
                break;
            }
        }
        self.toks.push(Tok {
            line,
            kind: TokKind::Char,
        });
    }

    fn number(&mut self) {
        let line = self.line;
        self.bump();
        loop {
            match self.peek(0) {
                Some(c) if c.is_alphanumeric() || c == '_' => {
                    self.bump();
                }
                // `1.5` continues the number; `1..n` is a range.
                Some('.') if matches!(self.peek(1), Some(d) if d.is_ascii_digit()) => {
                    self.bump();
                }
                _ => break,
            }
        }
        self.toks.push(Tok {
            line,
            kind: TokKind::Num,
        });
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut s = String::new();
        // Raw identifier `r#ident` — the `r#` is consumed by the caller
        // only for raw strings, so handle it here.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.toks.push(Tok {
            line,
            kind: TokKind::Ident(s),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_hide_their_content() {
        let ids = idents(r#"let x = "Instant::now inside a string";"#);
        assert_eq!(ids, ["let", "x"]);
    }

    #[test]
    fn raw_strings_and_bytes() {
        let ids = idents(r##"let y = r#"panic! "quoted" inside"#; let z = b"unwrap()";"##);
        assert_eq!(ids, ["let", "y", "let", "z"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn comments_captured_with_lines() {
        let (_, comments) = lex("let a = 1; // trailing\n/* block\nspans */ let b = 2;");
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].line, 1);
        assert_eq!(comments[0].text, " trailing");
        assert_eq!(comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = lex("/* a /* nested */ b */ fn f() {}");
        assert_eq!(comments.len(), 1);
        assert!(toks.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn line_numbers_advance() {
        let (toks, _) = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn unterminated_literals_do_not_hang() {
        let (toks, _) = lex("let s = \"never closed");
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
        let (toks, _) = lex("let s = r#\"never closed");
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
    }
}
