//! Interprocedural determinism taint.
//!
//! Wall-clock reads, entropy-seeded RNGs, `HashMap`/`HashSet` iteration
//! order, thread IDs, and pointer-to-integer casts are all values that
//! differ between two runs of the same `(seed, origin, trial)`. The
//! per-file `det-*` rules catch them inside the determinism-scoped
//! crates; this pass catches the laundered version — a helper *outside*
//! the scope (or any number of hops away) whose nondeterminism flows
//! into an output/serialization function, where it would perturb bytes
//! that the golden and determinism tests compare.

use crate::callgraph::{render_chain, shortest_chains, CallGraph, FnBodies};
use crate::lexer::Tok;
use crate::parse::{SourceFile, Workspace};
use crate::rules::Allows;
use crate::Violation;

/// Output/serialization surfaces: every byte these functions emit is
/// compared bit-wise by goldens, determinism tests, or the paper's
/// diffing analyses. Nondeterminism must never flow into them.
pub const DET_SINK_FILES: &[&str] = &[
    "crates/core/src/report.rs",
    "crates/core/src/summary.rs",
    "crates/scanner/src/output.rs",
    "crates/store/src/format.rs",
    "crates/serve/src/engine.rs",
    "crates/serve/src/http.rs",
    "crates/telemetry/src/json.rs",
    "crates/telemetry/src/event.rs",
];

/// One taint source site inside a function body.
#[derive(Debug, Clone)]
pub struct TaintSource {
    /// 1-based line.
    pub line: u32,
    /// Human-readable source kind for the message.
    pub what: String,
    /// Per-file rule whose `lint:allow` also covers this source kind.
    pub legacy_rule: &'static str,
}

/// Integer types a pointer can be laundered into.
const PTR_INT_TYPES: &[&str] = &["usize", "u64", "u32", "i64", "u128"];

/// Scan one body range for taint sources (nested bodies excluded).
pub fn taint_sources(
    toks: &[Tok],
    range: std::ops::Range<usize>,
    skip: &[std::ops::Range<usize>],
) -> Vec<TaintSource> {
    let mut out = Vec::new();
    let hash_bound = crate::rules::hash_bindings(toks);
    let hi = range.end.min(toks.len());
    let mut j = range.start;
    while j < hi {
        if let Some(s) = skip.iter().find(|s| s.contains(&j)) {
            j = s.end;
            continue;
        }
        let t = &toks[j];
        if let Some(name) = t.ident() {
            // Wall clock: `Instant::now()` / `SystemTime::now()`.
            if (name == "Instant" || name == "SystemTime")
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 3).is_some_and(|t| t.is_ident("now"))
            {
                out.push(TaintSource {
                    line: t.line,
                    what: format!("`{name}::now()` wall-clock read"),
                    legacy_rule: "det-wall-clock",
                });
            }
            // Entropy-seeded RNGs.
            if crate::rules::UNSEEDED_RNG_IDENTS.contains(&name) {
                out.push(TaintSource {
                    line: t.line,
                    what: format!("`{name}` entropy-seeded randomness"),
                    legacy_rule: "det-unseeded-rng",
                });
            }
            // Thread identity.
            if name == "ThreadId"
                || (name == "thread"
                    && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
                    && toks.get(j + 3).is_some_and(|t| t.is_ident("current")))
            {
                out.push(TaintSource {
                    line: t.line,
                    what: "thread identity (differs across runs)".to_string(),
                    legacy_rule: "det-taint",
                });
            }
            // Hash-order iteration on a bound HashMap/HashSet.
            if hash_bound.contains(name)
                && toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
                && toks
                    .get(j + 2)
                    .and_then(Tok::ident)
                    .is_some_and(|m| crate::rules::HASH_ITER_METHODS.contains(&m))
                && toks.get(j + 3).is_some_and(|t| t.is_punct('('))
            {
                out.push(TaintSource {
                    line: t.line,
                    what: format!("`{name}` hash-order iteration"),
                    legacy_rule: "det-hash-iter",
                });
            }
            // Pointer-to-integer cast: `….as_ptr() as usize`.
            if name == "as" {
                if let Some(ty) = toks.get(j + 1).and_then(Tok::ident) {
                    if PTR_INT_TYPES.contains(&ty) {
                        let lo = j.saturating_sub(8).max(range.start);
                        let ptrish = toks[lo..j]
                            .iter()
                            .any(|t| t.is_ident("as_ptr") || t.is_ident("as_mut_ptr"));
                        if ptrish {
                            out.push(TaintSource {
                                line: t.line,
                                what: format!("pointer-to-`{ty}` cast (ASLR-dependent)"),
                                legacy_rule: "det-taint",
                            });
                        }
                    }
                }
            }
        }
        j += 1;
    }
    out
}

/// Indices of sink functions: non-exempt functions defined in
/// [`DET_SINK_FILES`].
pub fn sink_fns(ws: &Workspace, files: &[SourceFile]) -> Vec<usize> {
    ws.fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.exempt && DET_SINK_FILES.iter().any(|p| files[f.file].path == *p))
        .map(|(i, _)| i)
        .collect()
}

/// Run the pass: a taint source in any function reachable *from* a sink
/// function means the sink's output can depend on it. Direct sites in
/// files the per-file `det-*` rules already police are left to them.
pub(crate) fn check(
    ws: &Workspace,
    graph: &CallGraph,
    files: &[SourceFile],
    bodies: &FnBodies,
    allows: &mut [Allows],
) -> Vec<Violation> {
    let sinks = sink_fns(ws, files);
    let chains = shortest_chains(graph, ws.fns.len(), &sinks);
    let mut out = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.exempt {
            continue;
        }
        let Some(chain) = &chains[i] else { continue };
        let direct = chain.len() == 1;
        // Direct sites inside a determinism-scoped sink file are the
        // per-file rules' findings; re-reporting them here would be
        // double jeopardy.
        if direct && crate::rules::in_det_scope(&files[f.file].path) {
            continue;
        }
        let toks = &files[f.file].toks;
        for src in taint_sources(toks, f.body.clone(), &bodies.skips[i]) {
            let al = &mut allows[f.file];
            if al.suppresses("det-taint", src.line)
                || (src.legacy_rule != "det-taint" && al.suppresses(src.legacy_rule, src.line))
            {
                continue;
            }
            let sink = &ws.fns[chain[0].func];
            out.push(Violation {
                file: files[f.file].path.clone(),
                line: src.line,
                rule: "det-taint",
                msg: format!(
                    "{} in `{}` taints output function `{}`",
                    src.what,
                    f.qualname(),
                    sink.qualname(),
                ),
                chain: vec![format!("flow: {}", render_chain(ws, chain))],
                anchor: format!("{}/{}", f.qualname(), src.what),
                fingerprint: String::new(),
            });
        }
    }
    out
}
