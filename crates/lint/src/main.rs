//! `originscan-lint` — offline determinism & panic-safety analyzer.
//!
//! ```text
//! originscan-lint [ROOT]             lint the workspace rooted at ROOT (default .)
//! originscan-lint --json             emit findings as a JSON array on stdout
//! originscan-lint --baseline FILE    diff against FILE instead of ROOT/lint-baseline.txt
//! originscan-lint --no-baseline      report every finding, baseline ignored
//! originscan-lint --write-baseline   accept all current findings into the baseline
//! originscan-lint --list-rules       print the rule catalogue and exit
//! ```
//!
//! By default findings are diffed against `ROOT/lint-baseline.txt` (when
//! present): baselined findings are reported but do not fail the run,
//! and stale baseline entries are warned about.
//!
//! Exit codes: 0 clean (or all findings baselined), 1 new violations
//! found, 2 usage or I/O error.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use originscan_lint::report::{to_json, Baseline};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut list_rules = false;
    let mut json = false;
    let mut no_baseline = false;
    let mut write_baseline = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => list_rules = true,
            "--json" => json = true,
            "--no-baseline" => no_baseline = true,
            "--write-baseline" => write_baseline = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("originscan-lint: --baseline needs a file argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "originscan-lint [ROOT]             lint the workspace rooted at ROOT (default .)\n\
                     originscan-lint --json             emit findings as a JSON array on stdout\n\
                     originscan-lint --baseline FILE    diff against FILE instead of ROOT/lint-baseline.txt\n\
                     originscan-lint --no-baseline      report every finding, baseline ignored\n\
                     originscan-lint --write-baseline   accept all current findings into the baseline\n\
                     originscan-lint --list-rules       print the rule catalogue and exit"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("originscan-lint: unknown flag `{flag}` (try --help)");
                return ExitCode::from(2);
            }
            path => root = PathBuf::from(path),
        }
    }

    if list_rules {
        for r in originscan_lint::RULES {
            println!("{:<18} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    // A typo'd root would otherwise walk zero files and report "clean".
    if !root.join("crates").is_dir() {
        eprintln!(
            "originscan-lint: {} has no crates/ directory — not a workspace root",
            root.display()
        );
        return ExitCode::from(2);
    }

    let violations = match originscan_lint::check_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("originscan-lint: I/O error under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let baseline_file = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));
    if write_baseline {
        let text = Baseline::render(&violations);
        if let Err(e) = std::fs::write(&baseline_file, text) {
            eprintln!(
                "originscan-lint: cannot write {}: {e}",
                baseline_file.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "originscan-lint: wrote {} finding(s) to {}",
            violations.len(),
            baseline_file.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if no_baseline {
        Baseline::default()
    } else {
        match Baseline::load(&baseline_file) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "originscan-lint: cannot read {}: {e}",
                    baseline_file.display()
                );
                return ExitCode::from(2);
            }
        }
    };
    let (new_fps, stale) = baseline.diff(&violations);

    if json {
        println!("{}", to_json(&violations, &new_fps));
    } else {
        for v in &violations {
            let mark = if new_fps.contains(&v.fingerprint) {
                ""
            } else {
                " [baselined]"
            };
            println!("{v}{mark}");
        }
        for fp in &stale {
            eprintln!("originscan-lint: stale baseline entry (no longer fires): {fp}");
        }
        report_summary(violations.len(), &new_fps, &stale);
    }
    if new_fps.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn report_summary(total: usize, new_fps: &BTreeSet<String>, stale: &BTreeSet<String>) {
    if total == 0 && stale.is_empty() {
        println!(
            "originscan-lint: clean ({} rules enforced)",
            originscan_lint::RULES.len()
        );
    } else {
        println!(
            "originscan-lint: {} finding(s), {} new, {} baselined, {} stale baseline entr{}",
            total,
            new_fps.len(),
            total - new_fps.len(),
            stale.len(),
            if stale.len() == 1 { "y" } else { "ies" },
        );
    }
}
