//! `originscan-lint` — offline determinism & panic-safety analyzer.
//!
//! ```text
//! originscan-lint [ROOT]        lint the workspace rooted at ROOT (default .)
//! originscan-lint --list-rules  print the rule catalogue and exit
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut list_rules = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                println!(
                    "originscan-lint [ROOT]        lint the workspace rooted at ROOT (default .)\n\
                     originscan-lint --list-rules  print the rule catalogue and exit"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("originscan-lint: unknown flag `{flag}` (try --help)");
                return ExitCode::from(2);
            }
            path => root = PathBuf::from(path),
        }
    }

    if list_rules {
        for r in originscan_lint::RULES {
            println!("{:<18} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    // A typo'd root would otherwise walk zero files and report "clean".
    if !root.join("crates").is_dir() {
        eprintln!(
            "originscan-lint: {} has no crates/ directory — not a workspace root",
            root.display()
        );
        return ExitCode::from(2);
    }

    match originscan_lint::check_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!(
                "originscan-lint: clean ({} rules enforced)",
                originscan_lint::RULES.len()
            );
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("originscan-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("originscan-lint: I/O error under {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
