//! Fixture tests: every rule in the catalogue has a violating snippet
//! (exact rule ids and line numbers asserted) and a clean counterpart,
//! `lint:allow` escapes suppress exactly the line they annotate, and the
//! real workspace lints clean.

use originscan_lint::report::Baseline;
use originscan_lint::{check_source, check_workspace, Violation, RULES};
use std::path::{Path, PathBuf};

/// Virtual path that puts a fixture in the determinism scope.
const DET_PATH: &str = "crates/netmodel/src/fixture.rs";
/// Virtual path of a report module (det-hash-report applies).
const REPORT_PATH: &str = "crates/core/src/report.rs";
/// Virtual path that puts a fixture in the panic-safety scope.
const WIRE_PATH: &str = "crates/wire/src/fixture.rs";
/// Virtual path in a crate outside the det/panic scopes: only the
/// everywhere rules (`obs-*`, `lint-bad-allow`) apply.
const LIB_PATH: &str = "crates/stats/src/fixture.rs";
/// Virtual path inside the serve crate (det + panic scopes; its socket
/// module audits wall-clock reads with `lint:allow`).
const SERVE_PATH: &str = "crates/serve/src/fixture.rs";
/// Exact-file panic-scope entries: the defender agent layer and the
/// adversarial sweep harness are panic-scoped individually, while their
/// sibling modules are not.
const DEFEND_PATH: &str = "crates/netmodel/src/defend.rs";
const ADVERSARIAL_PATH: &str = "crates/core/src/adversarial.rs";

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture(name: &str) -> String {
    let p = fixture_dir().join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("reading {}: {e}", p.display()))
}

/// (fixture file, virtual path, expected (rule, line) pairs).
type BadCase = (&'static str, &'static str, Vec<(&'static str, u32)>);

fn bad_cases() -> Vec<BadCase> {
    vec![
        (
            "det_wall_clock_bad.rs",
            DET_PATH,
            vec![("det-wall-clock", 5), ("det-wall-clock", 6)],
        ),
        (
            "det_unseeded_rng_bad.rs",
            DET_PATH,
            vec![("det-unseeded-rng", 3), ("det-unseeded-rng", 4)],
        ),
        (
            "det_hash_iter_bad.rs",
            DET_PATH,
            vec![("det-hash-iter", 7), ("det-hash-iter", 10)],
        ),
        (
            "det_hash_report_bad.rs",
            REPORT_PATH,
            vec![("det-hash-report", 2), ("det-hash-report", 4)],
        ),
        ("panic_unwrap_bad.rs", WIRE_PATH, vec![("panic-unwrap", 3)]),
        (
            "panic_unwrap_bad.rs",
            DEFEND_PATH,
            vec![("panic-unwrap", 3)],
        ),
        (
            "panic_unwrap_bad.rs",
            ADVERSARIAL_PATH,
            vec![("panic-unwrap", 3)],
        ),
        ("panic_expect_bad.rs", WIRE_PATH, vec![("panic-expect", 3)]),
        ("panic_macro_bad.rs", WIRE_PATH, vec![("panic-macro", 5)]),
        (
            "panic_lossy_cast_bad.rs",
            WIRE_PATH,
            vec![("panic-lossy-cast", 3), ("panic-lossy-cast", 7)],
        ),
        (
            "obs_print_bad.rs",
            LIB_PATH,
            vec![("obs-print", 3), ("obs-print", 4)],
        ),
        ("obs_dbg_bad.rs", LIB_PATH, vec![("obs-dbg", 3)]),
        (
            "reg_protocol_all_bad.rs",
            LIB_PATH,
            vec![("reg-protocol-all", 4)],
        ),
        (
            "lint_bad_allow_bad.rs",
            WIRE_PATH,
            vec![("lint-bad-allow", 2), ("lint-bad-allow", 5)],
        ),
        (
            "serve_wall_clock_bad.rs",
            SERVE_PATH,
            vec![("det-wall-clock", 4)],
        ),
    ]
}

/// Every clean fixture: (file, virtual path).
fn clean_cases() -> Vec<(&'static str, &'static str)> {
    vec![
        ("det_wall_clock_clean.rs", DET_PATH),
        ("det_unseeded_rng_clean.rs", DET_PATH),
        ("det_hash_iter_clean.rs", DET_PATH),
        ("det_hash_report_clean.rs", REPORT_PATH),
        ("panic_unwrap_clean.rs", WIRE_PATH),
        ("panic_unwrap_clean.rs", DEFEND_PATH),
        ("panic_unwrap_clean.rs", ADVERSARIAL_PATH),
        // A sibling of an exact-file entry is *not* panic-scoped: the
        // same unwrap that fires at DEFEND_PATH passes one file over.
        ("panic_unwrap_bad.rs", "crates/netmodel/src/netimpl.rs"),
        ("panic_expect_clean.rs", WIRE_PATH),
        ("panic_macro_clean.rs", WIRE_PATH),
        ("panic_lossy_cast_clean.rs", WIRE_PATH),
        ("obs_print_clean.rs", LIB_PATH),
        ("obs_dbg_clean.rs", LIB_PATH),
        ("reg_protocol_all_clean.rs", LIB_PATH),
        ("lint_bad_allow_clean.rs", WIRE_PATH),
        ("exempt_clean.rs", WIRE_PATH),
        ("serve_wall_clock_clean.rs", SERVE_PATH),
    ]
}

fn found(violations: &[Violation]) -> Vec<(&'static str, u32)> {
    violations.iter().map(|v| (v.rule, v.line)).collect()
}

#[test]
fn every_bad_fixture_reports_exact_rule_and_line() {
    for (file, path, expected) in bad_cases() {
        let out = check_source(path, &fixture(file));
        assert_eq!(
            found(&out),
            expected,
            "{file}: got {:#?}",
            out.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
        for v in &out {
            assert_eq!(v.file, path, "{file}: violation carries the analyzed path");
        }
    }
}

#[test]
fn every_clean_fixture_is_clean() {
    for (file, path) in clean_cases() {
        let out = check_source(path, &fixture(file));
        assert!(
            out.is_empty(),
            "{file}: expected clean, got {:#?}",
            out.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }
}

/// Insert a `lint:allow` comment line directly above each violation.
fn with_allows(src: &str, violations: &[Violation]) -> String {
    let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
    let mut vs: Vec<&Violation> = violations.iter().collect();
    vs.sort_by_key(|v| std::cmp::Reverse(v.line));
    for v in vs {
        let at = v.line as usize - 1;
        let indent: String = lines[at]
            .chars()
            .take_while(|c| c.is_whitespace())
            .collect();
        lines.insert(
            at,
            format!(
                "{indent}// lint:allow({}) reason= fixture escape audit",
                v.rule
            ),
        );
    }
    lines.join("\n")
}

#[test]
fn lint_allow_suppresses_each_violation() {
    for (file, path, _) in bad_cases() {
        if file == "lint_bad_allow_bad.rs" {
            continue; // malformed escapes cannot be escaped; covered below
        }
        let src = fixture(file);
        let out = check_source(path, &src);
        assert!(
            !out.is_empty(),
            "{file}: fixture must violate to test allows"
        );
        let suppressed = check_source(path, &with_allows(&src, &out));
        assert!(
            suppressed.is_empty(),
            "{file}: allows left {:#?}",
            suppressed
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn bad_allow_cannot_be_self_suppressed() {
    let src = fixture("lint_bad_allow_bad.rs");
    let out = check_source(WIRE_PATH, &src);
    let still = check_source(WIRE_PATH, &with_allows(&src, &out));
    assert_eq!(
        still.iter().filter(|v| v.rule == "lint-bad-allow").count(),
        2,
        "malformed escapes must survive an allow aimed at them: {:#?}",
        still.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
}

#[test]
fn registry_bad_tree_flags_orphan_and_undocumented_bench() {
    let out = check_workspace(&fixture_dir().join("registry_bad")).unwrap();
    let got: Vec<(&str, &str, u32)> = out
        .iter()
        .map(|v| (v.file.as_str(), v.rule, v.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("crates/bench/benches/fig9_extra.rs", "reg-bench-doc", 1),
            ("crates/netmodel/src/policy/orphan.rs", "reg-policy-mod", 1),
        ],
        "got {:#?}",
        out.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
}

#[test]
fn registry_clean_tree_is_clean() {
    let out = check_workspace(&fixture_dir().join("registry_clean")).unwrap();
    assert!(
        out.is_empty(),
        "got {:#?}",
        out.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
}

#[test]
fn every_rule_in_the_catalogue_is_exercised() {
    let mut covered: Vec<&str> = bad_cases()
        .iter()
        .flat_map(|(_, _, exp)| exp.iter().map(|(r, _)| *r))
        .collect();
    covered.extend(["reg-policy-mod", "reg-bench-doc"]); // registry_bad tree
                                                         // The interprocedural passes are exercised by tests/interprocedural.rs
                                                         // on seeded multi-file workspaces (they need a call graph, not a
                                                         // single fixture file).
    covered.extend([
        "reach-panic",
        "det-taint",
        "lock-cycle",
        "lock-blocking",
        "lint-stale-allow",
    ]);
    for r in RULES {
        assert!(
            covered.contains(&r.id),
            "rule {} has no violating fixture",
            r.id
        );
    }
}

#[test]
fn violation_display_carries_location_rule_and_hint() {
    let out = check_source(WIRE_PATH, &fixture("panic_unwrap_bad.rs"));
    let text = out[0].to_string();
    assert!(
        text.starts_with("crates/wire/src/fixture.rs:3: [panic-unwrap]"),
        "{text}"
    );
    assert!(text.contains("hint:"), "{text}");
}

#[test]
fn the_workspace_itself_lints_clean_modulo_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = check_workspace(&root).unwrap();
    let baseline = Baseline::load(&root.join("lint-baseline.txt")).unwrap();
    let (new, stale) = baseline.diff(&out);
    assert!(
        new.is_empty(),
        "new findings (not in lint-baseline.txt):\n{}",
        out.iter()
            .filter(|v| new.contains(&v.fingerprint))
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        stale.is_empty(),
        "stale baseline entries (no longer firing):\n{}",
        stale.into_iter().collect::<Vec<_>>().join("\n")
    );
}
