//! Ratchet on the accepted-findings baseline: the entry count may only
//! shrink. Adding a new suppression means raising the ceiling here in
//! the same change, which makes every newly-accepted finding an explicit
//! reviewed decision instead of a silent baseline regeneration.

use std::path::Path;

/// The baseline entry count as of the last burn-down. Lower it as
/// entries are retired; never raise it without burning something else
/// down first (new findings belong in code fixes, not the baseline).
const BASELINE_CEILING: usize = 129;

fn baseline_entries() -> Vec<String> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("lint-baseline.txt");
    let text = std::fs::read_to_string(&path).expect("read lint-baseline.txt at the repo root");
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

#[test]
fn baseline_only_shrinks() {
    let entries = baseline_entries();
    assert!(
        entries.len() <= BASELINE_CEILING,
        "lint-baseline.txt grew to {} entries (ceiling {BASELINE_CEILING}); \
         fix the new finding instead of baselining it, or lower tech debt \
         elsewhere before raising the ceiling",
        entries.len()
    );
}

#[test]
fn baseline_is_sorted_and_unique() {
    // `--write-baseline` emits sorted unique fingerprints; hand edits
    // that break that invariant make diffs noisy and hide duplicates.
    let entries = baseline_entries();
    let mut sorted = entries.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(
        entries, sorted,
        "baseline entries must stay sorted and duplicate-free \
         (regenerate with `cargo run -p originscan-lint -- --write-baseline`)"
    );
}

#[test]
fn wire_codec_index_burndown_holds() {
    // The siphash and TLS codecs were rewritten onto slice patterns and
    // checked accessors; no reach-panic indexing entry for them may come
    // back.
    let offenders: Vec<String> = baseline_entries()
        .into_iter()
        .filter(|e| {
            e.starts_with("reach-panic@crates/wire/src/siphash.rs")
                || e.starts_with("reach-panic@crates/wire/src/tls.rs")
        })
        .collect();
    assert!(
        offenders.is_empty(),
        "wire codec indexing findings reappeared in the baseline: {offenders:?}"
    );
}
