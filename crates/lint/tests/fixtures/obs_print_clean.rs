//! Fixture: progress is built as a structured line for a sink to write,
//! not printed bare from library code.
pub fn progress_line(done: usize, total: usize) -> String {
    format!("{{\"type\":\"progress\",\"done\":{done},\"total\":{total}}}")
}
