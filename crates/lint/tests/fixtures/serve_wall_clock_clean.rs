//! Fixture: the serve crate's audited I/O boundary — a wall-clock read
//! carrying the `lint:allow` escape with its audit reason is accepted,
//! and the surrounding deterministic code stays covered.
pub fn handle(query: &str) -> (usize, f64) {
    // lint:allow(det-wall-clock) reason= latency telemetry at the audited socket boundary; never reaches a response body.
    let t = std::time::Instant::now();
    (query.len(), t.elapsed().as_secs_f64())
}
