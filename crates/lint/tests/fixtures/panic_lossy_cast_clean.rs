//! Fixture: checked conversions with typed failure.
pub fn header_len(buf: &[u8]) -> Result<u16, std::num::TryFromIntError> {
    u16::try_from(buf.len())
}

pub fn lookup(xs: &[u8], i: usize) -> Option<u8> {
    xs.get(i).copied()
}
