//! Fixture: truncating casts on lengths and indexes.
pub fn header_len(buf: &[u8]) -> u16 {
    buf.len() as u16
}

pub fn lookup(xs: &[u8], i: u64) -> u8 {
    xs[i as u16 as usize]
}
