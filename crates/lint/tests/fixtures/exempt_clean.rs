//! Fixture: `fn main` bodies and test items are exempt.
fn main() {
    let xs = [1u8];
    let _ = xs.first().unwrap();
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        "7".parse::<u32>().unwrap();
    }
}
