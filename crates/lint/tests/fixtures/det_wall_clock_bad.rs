//! Fixture: wall-clock reads in simulation code.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let t = Instant::now();
    let _ = SystemTime::now();
    t.elapsed().as_nanos()
}
