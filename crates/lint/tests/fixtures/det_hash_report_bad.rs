//! Fixture: hash collections banned outright in report modules.
use std::collections::HashMap;

pub fn render(rows: &HashMap<String, u64>) -> String {
    format!("{} rows", rows.len())
}
