//! Fixture: leftover dbg! in library code.
pub fn fraction(n: u64, d: u64) -> f64 {
    dbg!(n as f64 / d as f64)
}
