//! Fixture: malformed escapes are violations themselves.
// lint:allow(no-such-rule) reason= the rule id must exist
pub fn a() {}

// lint:allow(panic-unwrap)
pub fn b() {}
