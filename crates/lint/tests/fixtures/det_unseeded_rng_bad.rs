//! Fixture: entropy-seeded randomness.
pub fn jitter() -> u64 {
    let a: u64 = rand::random();
    let b = thread_rng().gen::<u64>();
    a ^ b
}
