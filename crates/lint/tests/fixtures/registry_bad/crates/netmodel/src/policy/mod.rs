//! Fixture policy registry.
pub mod rate_limit;
