//! Registered policy module.
