//! This module is declared nowhere.
