fn main() {}
