//! Fixture: the serve crate is inside the determinism scope — an
//! unaudited wall-clock read in query handling is a violation.
pub fn handle(query: &str) -> usize {
    let t = std::time::Instant::now();
    query.len() + t.elapsed().as_secs() as usize
}
