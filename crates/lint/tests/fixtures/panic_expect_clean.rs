//! Fixture: parse errors propagate.
pub fn parse(s: &str) -> Result<u32, std::num::ParseIntError> {
    s.parse()
}
