fn main() {}
