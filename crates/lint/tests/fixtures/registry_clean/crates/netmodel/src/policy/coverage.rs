//! Also registered.
