//! Registered policy module.
