//! Fixture policy registry.
pub mod coverage;
pub mod rate_limit;
