//! Fixture: library code consulting the probe-module registry instead.

pub fn roster() -> Vec<String> {
    modules().iter().map(|m| m.protocol().to_string()).collect()
}

pub fn paper_trio() -> [Protocol; 3] {
    PAPER_PROTOCOLS
}
