//! Fixture: no debugging macros left behind.
pub fn fraction(n: u64, d: u64) -> f64 {
    n as f64 / d as f64
}
