//! Fixture: report modules use ordered collections end to end.
use std::collections::BTreeMap;

pub fn render(rows: &BTreeMap<String, u64>) -> String {
    format!("{} rows", rows.len())
}
