//! Fixture: library code iterating the deprecated hardcoded roster.

pub fn roster() -> Vec<String> {
    Protocol::ALL.iter().map(|p| p.to_string()).collect()
}
