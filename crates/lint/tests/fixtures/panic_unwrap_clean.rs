//! Fixture: the failure stays typed.
pub fn first(xs: &[u8]) -> Option<u8> {
    xs.first().copied()
}
