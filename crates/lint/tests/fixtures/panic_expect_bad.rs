//! Fixture: expect in wire library code.
pub fn parse(s: &str) -> u32 {
    s.parse().expect("caller promised digits")
}
