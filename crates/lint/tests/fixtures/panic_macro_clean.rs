//! Fixture: the dead arm returns an error instead.
pub fn pick(x: u8) -> Result<u8, ()> {
    match x {
        0 => Ok(1),
        _ => Err(()),
    }
}
