//! Fixture: randomness derived from the experiment key.
pub fn jitter(seed: u64, origin: u64, trial: u64) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ origin.rotate_left(17) ^ trial
}
