//! Fixture: a well-formed escape suppresses exactly its line.
pub fn first(xs: &[u8]) -> u8 {
    debug_assert!(!xs.is_empty());
    // lint:allow(panic-unwrap) reason= fixture: emptiness asserted one line up
    *xs.first().unwrap()
}
