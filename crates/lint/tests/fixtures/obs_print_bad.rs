//! Fixture: bare stdio prints in library code.
pub fn report_progress(done: usize, total: usize) {
    println!("{done}/{total} scans complete");
    eprintln!("still alive, {done} done");
}
