//! Fixture: simulated time threaded explicitly.
pub fn stamp(sim_clock_ns: u128) -> u128 {
    sim_clock_ns
}
