//! Fixture: iterating a hash collection feeds ordered output.
use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    let mut out = Vec::new();
    for (k, v) in &counts {
        out.push((*k, *v));
    }
    let order: Vec<u32> = counts.keys().copied().collect();
    drop(order);
    for &x in xs {
        *counts.entry(x).or_default() += 1;
    }
    out
}
