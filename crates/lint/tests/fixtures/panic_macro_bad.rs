//! Fixture: panicking macro in library code.
pub fn pick(x: u8) -> u8 {
    match x {
        0 => 1,
        _ => unreachable!("fixture"),
    }
}
