//! Interprocedural fixture tests: each deep pass (panic-reachability,
//! determinism taint, lock order) catches a seeded violation the
//! per-file rules miss, with the call/flow chain asserted, plus the
//! call-graph edge cases (cross-crate paths, trait dispatch, shadowed
//! names, test exemption, recursion) and stale-allow detection.

use originscan_lint::{check_files, check_source, Violation};

/// Run the workspace analyzer over an in-memory file set.
fn ws(files: &[(&str, &str)]) -> Vec<Violation> {
    let inputs: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    check_files(&inputs)
}

fn render(out: &[Violation]) -> String {
    out.iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

// ---------------------------------------------------------------------
// reach-panic
// ---------------------------------------------------------------------

/// A panic laundered through a helper crate outside every per-file
/// panic scope: only the interprocedural pass can see it, and the
/// diagnostic carries the shortest call chain from the entry point.
#[test]
fn reach_panic_catches_cross_crate_laundering() {
    let stats = "//! Stats helpers.\n\
                 pub fn percentile(xs: &[u64]) -> u64 {\n\
                 \x20   *xs.last().unwrap()\n\
                 }\n";
    // The per-file rules miss it: `stats` is outside the panic scope.
    assert!(
        check_source("crates/stats/src/lib.rs", stats).is_empty(),
        "per-file rules must not see the laundered unwrap"
    );

    let http = "//! Serve handlers.\n\
                pub fn handle(xs: &[u64]) -> u64 {\n\
                \x20   originscan_stats::percentile(xs)\n\
                }\n";
    let out = ws(&[
        ("crates/serve/src/http.rs", http),
        ("crates/stats/src/lib.rs", stats),
    ]);
    assert_eq!(out.len(), 1, "got:\n{}", render(&out));
    let v = &out[0];
    assert_eq!(v.rule, "reach-panic");
    assert_eq!(v.file, "crates/stats/src/lib.rs");
    assert_eq!(v.line, 3);
    assert!(
        v.msg.contains("`stats::percentile`")
            && v.msg
                .contains("reachable from supervised entry `serve::http::handle`"),
        "{}",
        v.msg
    );
    assert_eq!(v.chain.len(), 1, "shortest chain printed once");
    assert!(
        v.chain[0].starts_with("chain: ")
            && v.chain[0].contains("serve::http::handle")
            && v.chain[0].contains("stats::percentile"),
        "{}",
        v.chain[0]
    );
    assert!(
        v.fingerprint
            .starts_with("reach-panic@crates/stats/src/lib.rs@"),
        "{}",
        v.fingerprint
    );
}

/// A `lint:allow` for the matching per-file rule at the panic site also
/// covers the interprocedural finding, and is counted as used (no
/// stale-allow report).
#[test]
fn reach_panic_respects_legacy_allow_at_site() {
    let stats = "//! Stats helpers.\n\
                 pub fn percentile(xs: &[u64]) -> u64 {\n\
                 \x20   // lint:allow(panic-unwrap) reason= caller guarantees non-empty input\n\
                 \x20   *xs.last().unwrap()\n\
                 }\n";
    let http = "//! Serve handlers.\n\
                pub fn handle(xs: &[u64]) -> u64 {\n\
                \x20   originscan_stats::percentile(xs)\n\
                }\n";
    let out = ws(&[
        ("crates/serve/src/http.rs", http),
        ("crates/stats/src/lib.rs", stats),
    ]);
    assert!(out.is_empty(), "got:\n{}", render(&out));
}

/// A bare call whose name is only defined in another crate does not
/// resolve (no import, so it must be `std` or out of scope): the
/// shadow-safe resolution keeps the graph free of false edges.
#[test]
fn bare_call_does_not_link_across_crates_without_import() {
    let stats = "//! Stats helpers.\n\
                 pub fn percentile(xs: &[u64]) -> u64 {\n\
                 \x20   *xs.last().unwrap()\n\
                 }\n";
    let http = "//! Serve handlers.\n\
                pub fn handle(xs: &[u64]) -> u64 {\n\
                \x20   percentile(xs)\n\
                }\n";
    let out = ws(&[
        ("crates/serve/src/http.rs", http),
        ("crates/stats/src/lib.rs", stats),
    ]);
    assert!(out.is_empty(), "got:\n{}", render(&out));
}

/// A `use` import makes the same bare call resolve cross-crate.
#[test]
fn bare_call_links_across_crates_through_use_import() {
    let stats = "//! Stats helpers.\n\
                 pub fn percentile(xs: &[u64]) -> u64 {\n\
                 \x20   *xs.last().unwrap()\n\
                 }\n";
    let http = "//! Serve handlers.\n\
                use originscan_stats::percentile;\n\
                pub fn handle(xs: &[u64]) -> u64 {\n\
                \x20   percentile(xs)\n\
                }\n";
    let out = ws(&[
        ("crates/serve/src/http.rs", http),
        ("crates/stats/src/lib.rs", stats),
    ]);
    assert_eq!(out.len(), 1, "got:\n{}", render(&out));
    assert_eq!(out[0].rule, "reach-panic");
}

/// Functions inside `#[cfg(test)]` modules are exempt: a panicking
/// test helper in an entry-scope file reports nothing.
#[test]
fn test_module_functions_are_exempt_from_reachability() {
    let http = "//! Serve handlers.\n\
                pub fn handle() -> usize {\n\
                \x20   7\n\
                }\n\
                \n\
                #[cfg(test)]\n\
                mod tests {\n\
                \x20   pub fn helper(xs: &[u64]) -> u64 {\n\
                \x20       *xs.last().unwrap()\n\
                \x20   }\n\
                }\n";
    let out = ws(&[("crates/serve/src/http.rs", http)]);
    assert!(out.is_empty(), "got:\n{}", render(&out));
}

/// Method calls on untyped receivers link every same-named workspace
/// method (sound under trait dispatch): the panicking impl is found
/// even though the receiver's type is unknown.
#[test]
fn trait_dispatch_links_all_candidate_methods() {
    let http = "//! Serve handlers.\n\
                pub fn handle(q: usize) -> u64 {\n\
                \x20   let p = pick(q);\n\
                \x20   p.launch()\n\
                }\n\
                fn pick(_q: usize) -> usize {\n\
                \x20   0\n\
                }\n";
    let probes = "//! Probe impls.\n\
                  pub struct FastProbe;\n\
                  impl FastProbe {\n\
                  \x20   pub fn launch(&self) -> u64 {\n\
                  \x20       1\n\
                  \x20   }\n\
                  }\n\
                  pub struct SlowProbe;\n\
                  impl SlowProbe {\n\
                  \x20   pub fn launch(&self) -> u64 {\n\
                  \x20       unreachable!()\n\
                  \x20   }\n\
                  }\n";
    let out = ws(&[
        ("crates/serve/src/http.rs", http),
        ("crates/stats/src/probe.rs", probes),
    ]);
    assert_eq!(out.len(), 1, "got:\n{}", render(&out));
    let v = &out[0];
    assert_eq!(v.rule, "reach-panic");
    assert_eq!(v.file, "crates/stats/src/probe.rs");
    assert!(v.msg.contains("unreachable!"), "{}", v.msg);
    assert!(v.chain[0].contains("launch"), "{}", v.chain[0]);
}

/// Recursive call chains terminate and still surface the panic at the
/// end of the chain.
#[test]
fn recursive_chains_terminate() {
    let stats = "//! Stats helpers.\n\
                 pub fn walk(n: u64) -> u64 {\n\
                 \x20   if n == 0 {\n\
                 \x20       return finish(n);\n\
                 \x20   }\n\
                 \x20   walk(n - 1)\n\
                 }\n\
                 fn finish(n: u64) -> u64 {\n\
                 \x20   n.checked_sub(1).unwrap()\n\
                 }\n";
    let http = "//! Serve handlers.\n\
                pub fn handle(n: u64) -> u64 {\n\
                \x20   originscan_stats::walk(n)\n\
                }\n";
    let out = ws(&[
        ("crates/serve/src/http.rs", http),
        ("crates/stats/src/lib.rs", stats),
    ]);
    assert_eq!(out.len(), 1, "got:\n{}", render(&out));
    let v = &out[0];
    assert_eq!(v.rule, "reach-panic");
    assert!(
        v.chain[0].contains("walk") && v.chain[0].contains("finish"),
        "{}",
        v.chain[0]
    );
}

// ---------------------------------------------------------------------
// det-taint
// ---------------------------------------------------------------------

/// A wall-clock read laundered through a crate outside the determinism
/// scope taints an output function; the flow chain names the sink.
#[test]
fn det_taint_catches_laundered_wall_clock() {
    let util = "//! Misc utilities.\n\
                pub fn stamp() -> u64 {\n\
                \x20   let t = std::time::Instant::now();\n\
                \x20   t.elapsed().as_secs()\n\
                }\n";
    // The per-file rules miss it: `stats` is outside the det scope.
    assert!(
        check_source("crates/stats/src/util.rs", util).is_empty(),
        "per-file rules must not see the laundered clock read"
    );

    let report = "//! Report rendering.\n\
                  pub fn render(rows: usize) -> String {\n\
                  \x20   format!(\"{} {}\", rows, originscan_stats::util::stamp())\n\
                  }\n";
    let out = ws(&[
        ("crates/core/src/report.rs", report),
        ("crates/stats/src/util.rs", util),
    ]);
    assert_eq!(out.len(), 1, "got:\n{}", render(&out));
    let v = &out[0];
    assert_eq!(v.rule, "det-taint");
    assert_eq!(v.file, "crates/stats/src/util.rs");
    assert_eq!(v.line, 3);
    assert!(
        v.msg.contains("`Instant::now()` wall-clock read")
            && v.msg
                .contains("taints output function `core::report::render`"),
        "{}",
        v.msg
    );
    assert!(
        v.chain[0].starts_with("flow: ")
            && v.chain[0].contains("core::report::render")
            && v.chain[0].contains("stats::util::stamp"),
        "{}",
        v.chain[0]
    );
}

/// A helper that is *not* called from any output function carries no
/// taint finding, wherever its nondeterminism lives.
#[test]
fn det_taint_requires_a_flow_to_a_sink() {
    let util = "//! Misc utilities.\n\
                pub fn stamp() -> u64 {\n\
                \x20   let t = std::time::Instant::now();\n\
                \x20   t.elapsed().as_secs()\n\
                }\n";
    let out = ws(&[("crates/stats/src/util.rs", util)]);
    assert!(out.is_empty(), "got:\n{}", render(&out));
}

// ---------------------------------------------------------------------
// lock-cycle / lock-blocking
// ---------------------------------------------------------------------

/// Two serve-tier lock classes acquired in opposite orders on two paths
/// form a reported deadlock cycle.
#[test]
fn lock_cycle_detects_opposite_acquisition_orders() {
    let state = "//! Serve shared state.\n\
                 use std::sync::Mutex;\n\
                 pub struct QueueInner {\n\
                 \x20   pub depth: usize,\n\
                 }\n\
                 pub struct CacheInner {\n\
                 \x20   pub hits: usize,\n\
                 }\n\
                 pub struct State {\n\
                 \x20   queue: Mutex<QueueInner>,\n\
                 \x20   cache: Mutex<CacheInner>,\n\
                 }\n\
                 pub fn enqueue(s: &State) {\n\
                 \x20   if let Ok(q) = s.queue.lock() {\n\
                 \x20       if let Ok(c) = s.cache.lock() {\n\
                 \x20           let _ = (q.depth, c.hits);\n\
                 \x20       }\n\
                 \x20   }\n\
                 }\n\
                 pub fn refresh(s: &State) {\n\
                 \x20   if let Ok(c) = s.cache.lock() {\n\
                 \x20       if let Ok(q) = s.queue.lock() {\n\
                 \x20           let _ = (q.depth, c.hits);\n\
                 \x20       }\n\
                 \x20   }\n\
                 }\n";
    let out = ws(&[("crates/serve/src/state.rs", state)]);
    assert_eq!(out.len(), 1, "got:\n{}", render(&out));
    let v = &out[0];
    assert_eq!(v.rule, "lock-cycle");
    assert!(
        v.msg.contains("QueueInner") && v.msg.contains("CacheInner"),
        "{}",
        v.msg
    );
    assert!(v.chain[0].starts_with("order: "), "{}", v.chain[0]);
}

/// Consistent acquisition order on every path: no cycle.
#[test]
fn lock_cycle_silent_on_consistent_order() {
    let state = "//! Serve shared state.\n\
                 use std::sync::Mutex;\n\
                 pub struct QueueInner {\n\
                 \x20   pub depth: usize,\n\
                 }\n\
                 pub struct CacheInner {\n\
                 \x20   pub hits: usize,\n\
                 }\n\
                 pub struct State {\n\
                 \x20   queue: Mutex<QueueInner>,\n\
                 \x20   cache: Mutex<CacheInner>,\n\
                 }\n\
                 pub fn enqueue(s: &State) {\n\
                 \x20   if let Ok(q) = s.queue.lock() {\n\
                 \x20       if let Ok(c) = s.cache.lock() {\n\
                 \x20           let _ = (q.depth, c.hits);\n\
                 \x20       }\n\
                 \x20   }\n\
                 }\n\
                 pub fn refresh(s: &State) {\n\
                 \x20   if let Ok(q) = s.queue.lock() {\n\
                 \x20       if let Ok(c) = s.cache.lock() {\n\
                 \x20           let _ = (q.depth, c.hits);\n\
                 \x20       }\n\
                 \x20   }\n\
                 }\n";
    let out = ws(&[("crates/serve/src/state.rs", state)]);
    assert!(out.is_empty(), "got:\n{}", render(&out));
}

/// A guard held across a call that (transitively) blocks on file I/O —
/// the blocking summary crosses crates to the store read.
#[test]
fn lock_blocking_sees_blocking_call_through_other_crate() {
    let shard = "//! Shard readers.\n\
                 use std::sync::Mutex;\n\
                 pub struct ReaderSet {\n\
                 \x20   pub open: usize,\n\
                 }\n\
                 pub struct Shards {\n\
                 \x20   readers: Mutex<ReaderSet>,\n\
                 }\n\
                 pub fn answer(s: &Shards) -> usize {\n\
                 \x20   let g = s.readers.lock();\n\
                 \x20   let n = originscan_store::page::load_page();\n\
                 \x20   drop(g);\n\
                 \x20   n\n\
                 }\n";
    let page = "//! Page loads.\n\
                pub fn load_page() -> usize {\n\
                \x20   let f = std::fs::File::open(\"pages.bin\");\n\
                \x20   match f {\n\
                \x20       Ok(_) => 1,\n\
                \x20       Err(_) => 0,\n\
                \x20   }\n\
                }\n";
    let out = ws(&[
        ("crates/serve/src/shard.rs", shard),
        ("crates/store/src/page.rs", page),
    ]);
    assert_eq!(out.len(), 1, "got:\n{}", render(&out));
    let v = &out[0];
    assert_eq!(v.rule, "lock-blocking");
    assert_eq!(v.file, "crates/serve/src/shard.rs");
    assert_eq!(v.line, 11);
    assert!(
        v.msg
            .contains("lock `ReaderSet` held across call to blocking `store::page::load_page`"),
        "{}",
        v.msg
    );
    assert!(v.chain[0].contains("acquired at line 10"), "{}", v.chain[0]);
}

/// Dropping the guard before the blocking call clears the finding.
#[test]
fn lock_blocking_silent_when_guard_scoped_tightly() {
    let shard = "//! Shard readers.\n\
                 use std::sync::Mutex;\n\
                 pub struct ReaderSet {\n\
                 \x20   pub open: usize,\n\
                 }\n\
                 pub struct Shards {\n\
                 \x20   readers: Mutex<ReaderSet>,\n\
                 }\n\
                 pub fn answer(s: &Shards) -> usize {\n\
                 \x20   {\n\
                 \x20       let g = s.readers.lock();\n\
                 \x20       drop(g);\n\
                 \x20   }\n\
                 \x20   originscan_store::page::load_page()\n\
                 }\n";
    let page = "//! Page loads.\n\
                pub fn load_page() -> usize {\n\
                \x20   let f = std::fs::File::open(\"pages.bin\");\n\
                \x20   match f {\n\
                \x20       Ok(_) => 1,\n\
                \x20       Err(_) => 0,\n\
                \x20   }\n\
                }\n";
    let out = ws(&[
        ("crates/serve/src/shard.rs", shard),
        ("crates/store/src/page.rs", page),
    ]);
    assert!(out.is_empty(), "got:\n{}", render(&out));
}

// ---------------------------------------------------------------------
// lint-stale-allow
// ---------------------------------------------------------------------

/// An allow whose rule no longer fires at the site is reported as
/// stale at workspace level (and only there — single-file scans stay
/// quiet so fixtures and editors see no noise).
#[test]
fn stale_allow_reported_at_workspace_level_only() {
    let src = "//! Fixture.\n\
               pub fn double(x: u32) -> u32 {\n\
               \x20   // lint:allow(det-wall-clock) reason= leftover from a removed clock read\n\
               \x20   x * 2\n\
               }\n";
    assert!(
        check_source("crates/netmodel/src/fixture.rs", src).is_empty(),
        "single-file scans do not judge staleness"
    );
    let out = ws(&[("crates/netmodel/src/fixture.rs", src)]);
    assert_eq!(out.len(), 1, "got:\n{}", render(&out));
    let v = &out[0];
    assert_eq!(v.rule, "lint-stale-allow");
    assert_eq!(v.line, 3);
    assert!(
        v.msg
            .contains("lint:allow(det-wall-clock) no longer suppresses anything"),
        "{}",
        v.msg
    );
}

/// An allow that still suppresses a live per-file finding is used, not
/// stale.
#[test]
fn live_allow_is_not_stale() {
    let src = "//! Fixture.\n\
               pub fn elapsed() -> f64 {\n\
               \x20   // lint:allow(det-wall-clock) reason= audited boundary for this fixture\n\
               \x20   let t = std::time::Instant::now();\n\
               \x20   t.elapsed().as_secs_f64()\n\
               }\n";
    let out = ws(&[("crates/netmodel/src/fixture.rs", src)]);
    assert!(out.is_empty(), "got:\n{}", render(&out));
}
