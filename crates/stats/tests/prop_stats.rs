//! Property tests for the statistics crate's invariants.
// Gated: runs only with `--features proptest` (vendored shim; see
// third_party/proptest). The default offline build skips these suites.
#![cfg(feature = "proptest")]

use originscan_stats::combos::{choose, k_subsets};
use originscan_stats::descriptive::{quantile, std_dev, Ecdf, FiveNumber};
use originscan_stats::dist::{chi2_cdf, normal_cdf, t_sf_two_sided};
use originscan_stats::mcnemar::{mcnemar_test, PairedCounts};
use originscan_stats::spearman::{average_ranks, spearman};
use originscan_stats::timeseries::{detect_bursts, rolling_mean};
use proptest::prelude::*;

fn finite_vec(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, n)
}

proptest! {
    #[test]
    fn quantiles_within_range(xs in finite_vec(1..50), q in 0.0f64..=1.0) {
        let v = quantile(&xs, q);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min && v <= max);
    }

    #[test]
    fn five_number_ordered(xs in finite_vec(1..50)) {
        let f = FiveNumber::of(&xs);
        prop_assert!(f.min <= f.q1 && f.q1 <= f.median && f.median <= f.q3 && f.q3 <= f.max);
        prop_assert!(f.iqr() >= 0.0);
    }

    #[test]
    fn std_dev_nonnegative_and_shift_invariant(xs in finite_vec(2..30), shift in -1e5f64..1e5) {
        let a = std_dev(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let b = std_dev(&shifted);
        prop_assert!(a >= 0.0);
        prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
    }

    #[test]
    fn ecdf_monotone(xs in finite_vec(1..40), probes in finite_vec(2..10)) {
        let e = Ecdf::new(&xs);
        let mut sorted = probes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let vals: Vec<f64> = sorted.iter().map(|&p| e.eval(p)).collect();
        prop_assert!(vals.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(vals.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn normal_cdf_monotone_and_bounded(a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&normal_cdf(a)));
    }

    #[test]
    fn chi2_cdf_bounded_monotone(x in 0.0f64..100.0, dx in 0.0f64..10.0, df in 0.5f64..30.0) {
        let a = chi2_cdf(x, df);
        let b = chi2_cdf(x + dx, df);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!(a <= b + 1e-12);
    }

    #[test]
    fn t_pvalue_valid(t in -50.0f64..50.0, df in 1.0f64..200.0) {
        let p = t_sf_two_sided(t, df);
        prop_assert!((0.0..=1.0).contains(&p));
        // Symmetry in |t|.
        prop_assert!((p - t_sf_two_sided(-t, df)).abs() < 1e-12);
    }

    #[test]
    fn mcnemar_pvalue_valid(both in 0u64..1000, a in 0u64..1000, b in 0u64..1000, neither in 0u64..1000) {
        let c = PairedCounts { both, only_a: a, only_b: b, neither };
        let r = mcnemar_test(&c);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        prop_assert!(r.statistic >= 0.0);
        // Swapping the origins leaves the test unchanged.
        let swapped = PairedCounts { both, only_a: b, only_b: a, neither };
        let r2 = mcnemar_test(&swapped);
        prop_assert!((r.p_value - r2.p_value).abs() < 1e-12);
    }

    #[test]
    fn spearman_bounded_and_symmetric(pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..40)) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = spearman(&xs, &ys).unwrap();
        prop_assert!((-1.0..=1.0).contains(&r.rho), "rho = {}", r.rho);
        let r2 = spearman(&ys, &xs).unwrap();
        prop_assert!((r.rho - r2.rho).abs() < 1e-9);
    }

    #[test]
    fn ranks_are_a_permutation_mass(xs in finite_vec(1..30)) {
        let ranks = average_ranks(&xs);
        // Sum of ranks = n(n+1)/2 regardless of ties.
        let n = xs.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn rolling_mean_bounded(xs in finite_vec(1..40), w in 1usize..8) {
        let sm = rolling_mean(&xs, w);
        prop_assert_eq!(sm.len(), xs.len());
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(sm.iter().all(|&v| v >= min - 1e-9 && v <= max + 1e-9));
    }

    #[test]
    fn bursts_only_at_positive_residuals(xs in proptest::collection::vec(0.0f64..100.0, 5..40)) {
        let bursts = detect_bursts(&xs, 4, 2.0);
        for b in bursts {
            prop_assert!(b.residual > 0.0);
            prop_assert!(b.index < xs.len());
            prop_assert_eq!(b.value, xs[b.index]);
        }
    }

    #[test]
    fn k_subsets_counts(n in 0usize..10, k in 0usize..10) {
        let subs = k_subsets(n, k);
        prop_assert_eq!(subs.len() as u64, choose(n as u64, k as u64));
        for s in &subs {
            prop_assert_eq!(s.len(), k);
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(s.iter().all(|&i| i < n));
        }
    }
}
