//! Descriptive statistics: means, standard deviations, quantiles,
//! empirical CDFs, and the five-number summaries the paper's box plots
//! (Figs 15, 17, 18) report.

/// Mean of a slice; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than 2 samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Linear-interpolation quantile (type 7, the R/numpy default).
///
/// `q` must lie in `[0, 1]`; the input need not be sorted.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    assert!(!xs.is_empty(), "quantile of empty slice");
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&v, q)
}

/// Quantile of an already-sorted slice (type 7).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
}

/// Median convenience wrapper.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// The five-number summary behind a box plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl FiveNumber {
    /// Compute a five-number summary. Panics on empty input.
    pub fn of(xs: &[f64]) -> Self {
        let mut v: Vec<f64> = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN input"));
        Self {
            min: v[0],
            q1: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.5),
            q3: quantile_sorted(&v, 0.75),
            max: v[v.len() - 1],
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Mean / std-dev / n bundle for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Summarize a slice.
    pub fn of(xs: &[f64]) -> Self {
        Self {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
        }
    }
}

/// An empirical CDF over a finite sample, supporting evaluation and
/// inverse lookup; used for Fig 9 ("distribution of differences in
/// transient loss rate") and Fig 4 (AS concentration curves).
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
    /// Optional weights aligned with `sorted` (Fig 9's AS-size weighting).
    cum_weight: Vec<f64>,
}

impl Ecdf {
    /// Unweighted ECDF.
    pub fn new(xs: &[f64]) -> Self {
        Self::weighted(xs, None)
    }

    /// ECDF with optional per-sample weights (e.g. AS host counts).
    pub fn weighted(xs: &[f64], weights: Option<&[f64]>) -> Self {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN input"));
        let sorted: Vec<f64> = idx.iter().map(|&i| xs[i]).collect();
        let mut cum = 0.0;
        let cum_weight = idx
            .iter()
            .map(|&i| {
                cum += weights.map_or(1.0, |w| w[i]);
                cum
            })
            .collect();
        Self { sorted, cum_weight }
    }

    /// Fraction of (weighted) mass at values ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let total = *self.cum_weight.last().unwrap();
        // Index of the last element <= x.
        let k = self.sorted.partition_point(|&v| v <= x);
        if k == 0 {
            0.0
        } else {
            self.cum_weight[k - 1] / total
        }
    }

    /// Smallest sample value v with `eval(v) >= q`.
    pub fn inverse(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty());
        let total = *self.cum_weight.last().unwrap();
        let target = q * total;
        let k = self.cum_weight.partition_point(|&c| c < target);
        self.sorted[k.min(self.sorted.len() - 1)]
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when constructed from no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(median(&xs), 2.5);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn five_number_summary() {
        let f = FiveNumber::of(&[7.0, 1.0, 3.0, 5.0, 9.0]);
        assert_eq!(f.min, 1.0);
        assert_eq!(f.median, 5.0);
        assert_eq!(f.max, 9.0);
        assert_eq!(f.iqr(), f.q3 - f.q1);
        assert!(f.q1 <= f.median && f.median <= f.q3);
    }

    #[test]
    fn ecdf_eval() {
        let e = Ecdf::new(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn ecdf_weighted_by_size() {
        // One "AS" of weight 9 at x=0, one of weight 1 at x=1: the weighted
        // CDF jumps to 0.9 immediately (Fig 9's dashed line behaviour).
        let e = Ecdf::weighted(&[0.0, 1.0], Some(&[9.0, 1.0]));
        assert!((e.eval(0.0) - 0.9).abs() < 1e-12);
        assert_eq!(e.eval(1.0), 1.0);
    }

    #[test]
    fn ecdf_inverse() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.inverse(0.25), 10.0);
        assert_eq!(e.inverse(0.5), 20.0);
        assert_eq!(e.inverse(1.0), 40.0);
    }

    #[test]
    fn summary_bundle() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
    }
}
