//! # originscan-stats
//!
//! Statistical machinery used by the `originscan` analyses, implemented
//! from scratch (no third-party numerics):
//!
//! * [`special`] — special functions: `erf`, regularized incomplete gamma,
//!   log-gamma (Lanczos).
//! * [`dist`] — normal, chi-square, and Student-t distribution CDFs built
//!   on [`special`].
//! * [`descriptive`] — means, variances, quantiles, empirical CDFs and
//!   five-number summaries (for the paper's box plots, Figs 15/17/18).
//! * [`mcnemar`] — McNemar's test for paired binary outcomes (§3 uses it
//!   to show origins see statistically different host sets) plus the
//!   Bonferroni correction, and Cochran's Q for completeness.
//! * [`mod@spearman`] — Spearman rank correlation with tie handling (§4.4 and
//!   §5.2 report ρ between host counts / packet loss and transient loss).
//! * [`timeseries`] — rolling-window smoothing and the 2σ-noise burst
//!   outlier detector of §5.3.
//! * [`combos`] — k-subset enumeration for multi-origin coverage sweeps
//!   (§7, Figs 15/17/18).
//! * [`interval`] — Wilson score confidence intervals for the coverage
//!   proportions reported at reduced simulation scale.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod combos;
pub mod descriptive;
pub mod dist;
pub mod interval;
pub mod mcnemar;
pub mod spearman;
pub mod special;
pub mod timeseries;

pub use descriptive::{FiveNumber, Summary};
pub use mcnemar::{bonferroni, cochran_q, mcnemar_test, McNemarResult, PairedCounts};
pub use spearman::{spearman, SpearmanResult};
pub use timeseries::{detect_bursts, rolling_mean, Burst};
