//! Special functions: error function, log-gamma, regularized incomplete
//! gamma. Accuracy targets are modest (~1e-9 relative), which is far more
//! than the p-value thresholds in the paper (p < 0.001) require.

/// Error function, via the Abramowitz & Stegun 7.1.26-style rational
/// approximation refined with one continued-fraction correction.
///
/// Maximum absolute error ≈ 1.2e-7 from the base approximation; we instead
/// use the higher-precision series/continued-fraction split on `erf` via
/// the incomplete gamma identity `erf(x) = P(1/2, x^2)` for x ≥ 0.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    } else {
        lower_regularized_gamma(0.5, x * x)
    }
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients from the standard g=7, 9-term Lanczos fit.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + 7.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Regularized lower incomplete gamma function P(a, x).
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise (Numerical Recipes' `gammp` split).
pub fn lower_regularized_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
pub fn upper_regularized_gamma(a: f64, x: f64) -> f64 {
    1.0 - lower_regularized_gamma(a, x)
}

/// Series representation of P(a, x), valid for x < a + 1.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of Q(a, x), valid for x ≥ a + 1
/// (modified Lentz's method).
fn gamma_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized incomplete beta function I_x(a, b), via the standard
/// continued-fraction evaluation (Numerical Recipes `betai`).
pub fn regularized_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "shapes must be positive");
    assert!((0.0..=1.0).contains(&x), "x out of [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let front =
        (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp();
    // Use the symmetry relation so the continued fraction converges fast.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp()
            * beta_cf(b, a, 1.0 - x)
            / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-14 {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        close(erf(0.0), 0.0, 1e-12);
        close(erf(0.5), 0.5204998778, 1e-8);
        close(erf(1.0), 0.8427007929, 1e-8);
        close(erf(2.0), 0.9953222650, 1e-8);
        close(erf(-1.0), -0.8427007929, 1e-8);
        close(erf(6.0), 1.0, 1e-12);
    }

    #[test]
    fn erfc_complements() {
        for x in [0.1, 0.7, 1.3, 2.9] {
            close(erf(x) + erfc(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn ln_gamma_factorials() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-10);
        close(ln_gamma(2.0), 0.0, 1e-10);
        close(ln_gamma(5.0), 24f64.ln(), 1e-10);
        close(ln_gamma(11.0), 3628800f64.ln(), 1e-9);
        // Γ(1/2) = sqrt(pi)
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
    }

    #[test]
    fn incomplete_gamma_limits() {
        close(lower_regularized_gamma(2.5, 0.0), 0.0, 1e-15);
        close(lower_regularized_gamma(2.5, 1e9), 1.0, 1e-12);
        // P(1, x) = 1 - e^{-x}
        for x in [0.2, 1.0, 3.0, 10.0] {
            close(lower_regularized_gamma(1.0, x), 1.0 - (-x).exp(), 1e-10);
        }
    }

    #[test]
    fn incomplete_gamma_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 * 0.2;
            let p = lower_regularized_gamma(3.0, x);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn beta_reference() {
        // I_x(1, 1) = x (uniform CDF).
        for x in [0.0, 0.25, 0.5, 0.9, 1.0] {
            close(regularized_beta(1.0, 1.0, x), x, 1e-12);
        }
        // I_x(2, 2) = 3x^2 - 2x^3.
        for x in [0.1, 0.4, 0.7] {
            close(
                regularized_beta(2.0, 2.0, x),
                3.0 * x * x - 2.0 * x * x * x,
                1e-10,
            );
        }
        // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
        close(
            regularized_beta(2.5, 0.7, 0.3),
            1.0 - regularized_beta(0.7, 2.5, 0.7),
            1e-10,
        );
    }

    #[test]
    fn upper_plus_lower_is_one() {
        for a in [0.5, 1.0, 4.2] {
            for x in [0.3, 2.0, 9.0] {
                close(
                    lower_regularized_gamma(a, x) + upper_regularized_gamma(a, x),
                    1.0,
                    1e-12,
                );
            }
        }
    }
}
