//! k-subset enumeration for multi-origin coverage sweeps.
//!
//! §7 evaluates the coverage of every pair and triad of origins (Figs 15,
//! 17, 18). The number of origins is small (≤ 8), so exhaustive
//! enumeration is exact and cheap.

/// Enumerate all k-element subsets of `0..n` in lexicographic order.
pub fn k_subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if k > n {
        return out;
    }
    if k == 0 {
        out.push(Vec::new());
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.clone());
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Binomial coefficient n-choose-k (saturating, for sanity checks).
pub fn choose(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = acc.saturating_mul(n - i) / (i + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_of_four() {
        let subs = k_subsets(4, 2);
        assert_eq!(
            subs,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }

    #[test]
    fn counts_match_binomial() {
        for n in 0..8 {
            for k in 0..=n {
                assert_eq!(k_subsets(n, k).len() as u64, choose(n as u64, k as u64));
            }
        }
    }

    #[test]
    fn edge_cases() {
        assert_eq!(k_subsets(3, 0), vec![Vec::<usize>::new()]);
        assert_eq!(k_subsets(2, 3), Vec::<Vec<usize>>::new());
        assert_eq!(k_subsets(1, 1), vec![vec![0]]);
    }

    #[test]
    fn choose_values() {
        assert_eq!(choose(7, 2), 21); // origin pairs in the paper
        assert_eq!(choose(7, 3), 35);
        assert_eq!(choose(5, 0), 1);
        assert_eq!(choose(3, 5), 0);
    }

    #[test]
    fn subsets_strictly_increasing() {
        for s in k_subsets(6, 3) {
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
