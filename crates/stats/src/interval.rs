//! Binomial confidence intervals.
//!
//! Coverage numbers are proportions of finite host samples; at reduced
//! simulation scale the sampling error is visible, so reports attach
//! Wilson score intervals (well-behaved near 0 and 1, unlike the normal
//! approximation).

/// A two-sided confidence interval for a proportion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Point estimate.
    pub estimate: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Does the interval contain `p`?
    pub fn contains(&self, p: f64) -> bool {
        (self.lo..=self.hi).contains(&p)
    }
}

/// Wilson score interval for `successes` out of `n` at normal quantile
/// `z` (1.96 for 95 %).
pub fn wilson(successes: u64, n: u64, z: f64) -> Interval {
    assert!(successes <= n, "successes exceed trials");
    if n == 0 {
        return Interval {
            lo: 0.0,
            estimate: 0.0,
            hi: 1.0,
        };
    }
    let nf = n as f64;
    let p = successes as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let margin = (z / denom) * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    // Clamp against floating-point wobble so the interval always brackets
    // the point estimate and stays inside [0, 1].
    Interval {
        lo: (center - margin).max(0.0).min(p),
        estimate: p,
        hi: (center + margin).min(1.0).max(p),
    }
}

/// Wilson interval at 95 % confidence.
pub fn wilson95(successes: u64, n: u64) -> Interval {
    wilson(successes, n, 1.959_964)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_value() {
        // Classic check: 10/100 at 95% → approx (0.055, 0.174).
        let i = wilson95(10, 100);
        assert!((i.lo - 0.0552).abs() < 0.002, "lo {}", i.lo);
        assert!((i.hi - 0.1744).abs() < 0.002, "hi {}", i.hi);
        assert_eq!(i.estimate, 0.10);
        assert!(i.contains(0.1));
    }

    #[test]
    fn extremes_behave() {
        let zero = wilson95(0, 50);
        assert_eq!(zero.lo, 0.0);
        assert!(zero.hi > 0.0 && zero.hi < 0.15);
        let all = wilson95(50, 50);
        assert_eq!(all.hi, 1.0);
        assert!(all.lo > 0.85);
        let empty = wilson95(0, 0);
        assert_eq!((empty.lo, empty.hi), (0.0, 1.0));
    }

    #[test]
    fn width_shrinks_with_n() {
        let small = wilson95(50, 100);
        let large = wilson95(50_000, 100_000);
        assert!(large.half_width() < small.half_width() / 10.0);
    }

    #[test]
    fn interval_always_contains_estimate() {
        for (s, n) in [
            (0u64, 10u64),
            (1, 10),
            (5, 10),
            (9, 10),
            (10, 10),
            (997, 1000),
        ] {
            let i = wilson95(s, n);
            assert!(i.lo <= i.estimate && i.estimate <= i.hi, "{s}/{n}: {i:?}");
        }
    }
}
