//! Spearman rank correlation with tie handling.
//!
//! The paper uses Spearman's ρ twice: §4.4 (ρ = 0.92 between a country's
//! host count and its inaccessible-host count) and §5.2 (ρ = 0.40–0.52
//! between per-AS packet drop and transient host loss). Both involve heavy
//! ties (many ASes with identical small loss counts), so we rank with
//! average ties and compute ρ as the Pearson correlation of the ranks.

use crate::dist::t_sf_two_sided;

/// Result of a Spearman correlation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpearmanResult {
    /// The rank correlation coefficient in [-1, 1].
    pub rho: f64,
    /// Two-sided p-value from the t approximation (n ≥ 3 required).
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

/// Assign average ranks (1-based) to a sample, ties share the mean rank.
pub fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in rank input"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share rank mean of (i+1)..=(j+1).
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Pearson correlation of two equal-length samples.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// Spearman's ρ with average-tie ranking and a t-distribution p-value.
///
/// Returns `None` when fewer than 3 pairs are supplied.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<SpearmanResult> {
    assert_eq!(xs.len(), ys.len(), "paired samples must align");
    let n = xs.len();
    if n < 3 {
        return None;
    }
    let rho = pearson(&average_ranks(xs), &average_ranks(ys));
    let p_value = if rho.abs() >= 1.0 {
        0.0
    } else {
        let t = rho * ((n as f64 - 2.0) / (1.0 - rho * rho)).sqrt();
        t_sf_two_sided(t, n as f64 - 2.0)
    };
    Some(SpearmanResult { rho, p_value, n })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_monotone() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [10.0, 100.0, 1000.0, 10000.0, 100000.0];
        let r = spearman(&xs, &ys).unwrap();
        assert!((r.rho - 1.0).abs() < 1e-12);
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    fn perfect_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&xs, &ys).unwrap().rho + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        let r = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn reference_with_ties() {
        // Hand-computed: ranks x = [1, 2.5, 2.5, 4, 5], ranks y =
        // [2, 1, 3, 4.5, 4.5]; Pearson of the ranks = 7.5 / 9.5.
        let xs = [1.0, 2.0, 2.0, 3.0, 5.0];
        let ys = [2.0, 1.0, 3.0, 4.0, 4.0];
        let r = spearman(&xs, &ys).unwrap();
        assert!((r.rho - 7.5 / 9.5).abs() < 1e-9, "rho = {}", r.rho);
    }

    #[test]
    fn independent_samples_high_p() {
        // Hand-picked near-orthogonal pattern.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let ys = [5.0, 1.0, 8.0, 2.0, 7.0, 3.0, 6.0, 4.0];
        let r = spearman(&xs, &ys).unwrap();
        assert!(r.rho.abs() < 0.4);
        assert!(r.p_value > 0.05);
    }

    #[test]
    fn constant_series_rho_zero() {
        let xs = [1.0; 5];
        let ys = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(spearman(&xs, &ys).unwrap().rho, 0.0);
    }

    #[test]
    fn too_small_none() {
        assert!(spearman(&[1.0, 2.0], &[2.0, 1.0]).is_none());
    }
}
