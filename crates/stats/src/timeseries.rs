//! Time-series smoothing and burst-outage detection.
//!
//! §5.3 of the paper: *"We identify statistically significant bursts of
//! transiently missing hosts by searching for outliers in the
//! noise-component of the time series that are two standard deviations
//! away from the average expected noise. To extract the noise component,
//! we subtract the smoothed time series — obtained by a rolling window
//! \[of\] 4 hours — from the original time series."*
//!
//! [`detect_bursts`] implements exactly that recipe: hourly loss counts in,
//! list of burst hours (and the mass they carry) out.

/// A detected burst: one sample index flagged as a significant outlier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Index (hour) of the burst in the input series.
    pub index: usize,
    /// Observed value at the burst hour.
    pub value: f64,
    /// Residual (observed − smoothed) that triggered detection.
    pub residual: f64,
}

/// Centered rolling mean with window `w` (clamped at the edges).
///
/// The paper's 4-hour window over a 21-hour scan is small relative to the
/// series; near the ends the window shrinks to the available samples so
/// every point gets a smoothed value.
pub fn rolling_mean(xs: &[f64], w: usize) -> Vec<f64> {
    assert!(w > 0, "window must be positive");
    let n = xs.len();
    let half = w / 2;
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + (w % 2)).min(n).max(lo + 1);
            let slice = &xs[lo..hi];
            slice.iter().sum::<f64>() / slice.len() as f64
        })
        .collect()
}

/// Detect bursts: residuals more than `sigmas` standard deviations above
/// the mean residual, using a rolling mean of window `window`.
///
/// Only *positive* outliers count — a burst is an hour where loss spikes,
/// not an unusually good hour. Returns bursts in index order.
pub fn detect_bursts(xs: &[f64], window: usize, sigmas: f64) -> Vec<Burst> {
    if xs.len() < 3 {
        return Vec::new();
    }
    let smoothed = rolling_mean(xs, window);
    let residuals: Vec<f64> = xs.iter().zip(&smoothed).map(|(x, s)| x - s).collect();
    let mean = residuals.iter().sum::<f64>() / residuals.len() as f64;
    let var = residuals
        .iter()
        .map(|r| (r - mean) * (r - mean))
        .sum::<f64>()
        / residuals.len() as f64;
    let sd = var.sqrt();
    if sd == 0.0 {
        return Vec::new();
    }
    residuals
        .iter()
        .enumerate()
        .filter(|(_, &r)| r > mean + sigmas * sd)
        .map(|(i, &r)| Burst {
            index: i,
            value: xs[i],
            residual: r,
        })
        .collect()
}

/// Fraction of total series mass carried by the burst hours.
///
/// §5.3 reports that 14–36 % of transient loss "coincides with a burst
/// outage"; this helper computes that share for one origin–AS series.
pub fn burst_mass_fraction(xs: &[f64], bursts: &[Burst]) -> f64 {
    let total: f64 = xs.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    bursts.iter().map(|b| b.value).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_mean_flat_series() {
        let xs = vec![3.0; 10];
        assert_eq!(rolling_mean(&xs, 4), xs);
    }

    #[test]
    fn rolling_mean_window_one_is_identity() {
        let xs = vec![1.0, 5.0, 2.0, 8.0];
        assert_eq!(rolling_mean(&xs, 1), xs);
    }

    #[test]
    fn rolling_mean_center_value() {
        let xs = vec![0.0, 0.0, 10.0, 0.0, 0.0];
        let sm = rolling_mean(&xs, 5);
        assert!((sm[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_single_spike() {
        // 21 "hours" of ~1 host lost, one hour of 40: a textbook burst.
        let mut xs = vec![1.0; 21];
        xs[13] = 40.0;
        let bursts = detect_bursts(&xs, 4, 2.0);
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].index, 13);
        assert_eq!(bursts[0].value, 40.0);
        let frac = burst_mass_fraction(&xs, &bursts);
        assert!((frac - 40.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn flat_series_no_bursts() {
        assert!(detect_bursts(&[2.0; 21], 4, 2.0).is_empty());
    }

    #[test]
    fn noise_alone_rarely_flags() {
        // Alternating small noise: residuals are symmetric, nothing exceeds
        // 2 sigma by construction of the alternation.
        let xs: Vec<f64> = (0..21)
            .map(|i| if i % 2 == 0 { 1.0 } else { 2.0 })
            .collect();
        assert!(detect_bursts(&xs, 4, 2.0).is_empty());
    }

    #[test]
    fn negative_dips_not_bursts() {
        let mut xs = vec![10.0; 21];
        xs[5] = 0.0; // a *good* hour must not be flagged
        let bursts = detect_bursts(&xs, 4, 2.0);
        assert!(bursts.iter().all(|b| b.index != 5));
    }

    #[test]
    fn short_series_empty() {
        assert!(detect_bursts(&[1.0, 100.0], 4, 2.0).is_empty());
    }

    #[test]
    fn two_spikes_both_found() {
        let mut xs = vec![1.0; 42];
        xs[10] = 30.0;
        xs[30] = 25.0;
        let idx: Vec<usize> = detect_bursts(&xs, 4, 2.0).iter().map(|b| b.index).collect();
        assert!(idx.contains(&10) && idx.contains(&30));
    }
}
