//! McNemar's test for paired binary outcomes, Cochran's Q, and the
//! Bonferroni correction.
//!
//! §3 of the paper: *"we compare the number of hosts seen (and not seen) by
//! each pair of origins per protocol using McNemar's test and find
//! statistically significant differences (p < 0.001) between all pairs of
//! scan origins in all trials"*, choosing pairwise McNemar over Cochran's Q
//! and applying a Bonferroni correction. This module provides all three
//! pieces.

use crate::dist::chi2_sf;

/// The 2×2 discordant/concordant cell counts for two paired binary
/// classifiers (here: two scan origins observing the same host set).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairedCounts {
    /// Hosts seen by both origins.
    pub both: u64,
    /// Hosts seen only by the first origin.
    pub only_a: u64,
    /// Hosts seen only by the second origin.
    pub only_b: u64,
    /// Hosts (in the ground-truth universe) seen by neither.
    pub neither: u64,
}

impl PairedCounts {
    /// Accumulate one paired observation.
    pub fn record(&mut self, a: bool, b: bool) {
        match (a, b) {
            (true, true) => self.both += 1,
            (true, false) => self.only_a += 1,
            (false, true) => self.only_b += 1,
            (false, false) => self.neither += 1,
        }
    }

    /// Total paired observations.
    pub fn total(&self) -> u64 {
        self.both + self.only_a + self.only_b + self.neither
    }
}

/// Result of McNemar's test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McNemarResult {
    /// The chi-square statistic (with continuity correction).
    pub statistic: f64,
    /// Two-sided p-value from the chi-square(1) distribution.
    pub p_value: f64,
    /// Discordant pair count the statistic is based on.
    pub discordant: u64,
}

/// McNemar's chi-square test with Edwards' continuity correction:
/// `(|b - c| - 1)^2 / (b + c)` on the discordant cells.
///
/// With zero discordant pairs the origins are literally indistinguishable
/// and the p-value is 1.
pub fn mcnemar_test(counts: &PairedCounts) -> McNemarResult {
    let b = counts.only_a as f64;
    let c = counts.only_b as f64;
    let discordant = counts.only_a + counts.only_b;
    if discordant == 0 {
        return McNemarResult {
            statistic: 0.0,
            p_value: 1.0,
            discordant,
        };
    }
    let num = ((b - c).abs() - 1.0).max(0.0);
    let statistic = num * num / (b + c);
    McNemarResult {
        statistic,
        p_value: chi2_sf(statistic, 1.0),
        discordant,
    }
}

/// Bonferroni-correct a significance threshold for `m` comparisons.
///
/// Returns the per-comparison alpha. The paper runs one McNemar test per
/// origin pair per protocol per trial and corrects across all of them.
pub fn bonferroni(alpha: f64, m: usize) -> f64 {
    assert!(m > 0);
    alpha / m as f64
}

/// Cochran's Q test over k paired binary classifiers.
///
/// `outcomes[i]` is the length-k response vector of subject i (host i seen
/// by each of the k origins). Returns `(Q, p)` against chi-square(k-1).
/// The paper *rejects* this test for its main analysis — a single deviant
/// origin drives significance — but we implement it both for completeness
/// and to demonstrate that effect in tests.
pub fn cochran_q(outcomes: &[Vec<bool>]) -> Option<(f64, f64)> {
    let n = outcomes.len();
    if n == 0 {
        return None;
    }
    let k = outcomes[0].len();
    if k < 2 || outcomes.iter().any(|row| row.len() != k) {
        return None;
    }
    let col_sums: Vec<f64> = (0..k)
        .map(|j| outcomes.iter().filter(|row| row[j]).count() as f64)
        .collect();
    let row_sums: Vec<f64> = outcomes
        .iter()
        .map(|row| row.iter().filter(|&&v| v).count() as f64)
        .collect();
    let total: f64 = row_sums.iter().sum();
    let mean_col = total / k as f64;
    let num: f64 = (k as f64 - 1.0)
        * k as f64
        * col_sums
            .iter()
            .map(|c| (c - mean_col) * (c - mean_col))
            .sum::<f64>();
    let den: f64 = k as f64 * total - row_sums.iter().map(|r| r * r).sum::<f64>();
    if den <= 0.0 {
        // All rows all-true or all-false: no discriminating information.
        return Some((0.0, 1.0));
    }
    let q = num / den;
    Some((q, chi2_sf(q, (k - 1) as f64)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worked_example() {
        // Classic textbook example: b = 25, c = 5 discordant pairs.
        let counts = PairedCounts {
            both: 100,
            only_a: 25,
            only_b: 5,
            neither: 70,
        };
        let r = mcnemar_test(&counts);
        // (|25-5|-1)^2 / 30 = 361/30 = 12.033..
        assert!((r.statistic - 12.0333333).abs() < 1e-6);
        assert!(r.p_value < 0.001);
        assert_eq!(r.discordant, 30);
    }

    #[test]
    fn symmetric_discordance_not_significant() {
        let counts = PairedCounts {
            both: 1000,
            only_a: 10,
            only_b: 10,
            neither: 0,
        };
        let r = mcnemar_test(&counts);
        assert!(r.p_value > 0.5);
    }

    #[test]
    fn no_discordance_p_one() {
        let counts = PairedCounts {
            both: 50,
            only_a: 0,
            only_b: 0,
            neither: 50,
        };
        assert_eq!(mcnemar_test(&counts).p_value, 1.0);
    }

    #[test]
    fn record_tallies_cells() {
        let mut c = PairedCounts::default();
        c.record(true, true);
        c.record(true, false);
        c.record(false, true);
        c.record(false, false);
        assert_eq!(
            c,
            PairedCounts {
                both: 1,
                only_a: 1,
                only_b: 1,
                neither: 1
            }
        );
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn bonferroni_divides() {
        assert_eq!(bonferroni(0.05, 10), 0.005);
        // 7 origins -> 21 pairs, 3 protocols, 3 trials = 189 tests.
        assert!((bonferroni(0.001, 189) - 5.291005e-6).abs() < 1e-11);
    }

    #[test]
    fn cochran_q_single_deviant_origin_dominates() {
        // Three origins; two identical, one missing many hosts. Q should be
        // highly significant even though origins 0 and 1 are identical —
        // exactly why the paper prefers pairwise McNemar.
        let mut outcomes = Vec::new();
        for i in 0..200 {
            let dev = i % 4 != 0; // origin 2 misses 25% of hosts
            outcomes.push(vec![true, true, dev]);
        }
        // Add some all-false rows (hosts seen by nobody) for den variety.
        for _ in 0..20 {
            outcomes.push(vec![false, false, false]);
        }
        let (q, p) = cochran_q(&outcomes).unwrap();
        assert!(q > 50.0);
        assert!(p < 1e-6);
    }

    #[test]
    fn cochran_q_degenerate_inputs() {
        assert!(cochran_q(&[]).is_none());
        assert!(cochran_q(&[vec![true]]).is_none());
        let uniform = vec![vec![true, true]; 10];
        assert_eq!(cochran_q(&uniform).unwrap().1, 1.0);
    }
}
