//! Distribution CDFs and survival functions built on [`crate::special`].

use crate::special::{erf, lower_regularized_gamma, upper_regularized_gamma};

/// Standard normal CDF Φ(z).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal survival function 1 − Φ(z).
pub fn normal_sf(z: f64) -> f64 {
    0.5 * crate::special::erfc(z / std::f64::consts::SQRT_2)
}

/// Chi-square CDF with `df` degrees of freedom.
pub fn chi2_cdf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0);
    if x <= 0.0 {
        0.0
    } else {
        lower_regularized_gamma(df / 2.0, x / 2.0)
    }
}

/// Chi-square survival function (the p-value of a chi-square statistic).
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0);
    if x <= 0.0 {
        1.0
    } else {
        upper_regularized_gamma(df / 2.0, x / 2.0)
    }
}

/// Exact two-sided p-value for a Student-t statistic with `df` degrees of
/// freedom, via the identity
/// `P(|T| > t) = I_{df/(df + t²)}(df/2, 1/2)`
/// on the regularized incomplete beta function.
pub fn t_sf_two_sided(t: f64, df: f64) -> f64 {
    assert!(df > 0.0);
    let t = t.abs();
    if !t.is_finite() {
        return 0.0;
    }
    crate::special::regularized_beta(df / 2.0, 0.5, df / (df + t * t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn normal_reference() {
        close(normal_cdf(0.0), 0.5, 1e-12);
        close(normal_cdf(1.96), 0.9750021, 1e-6);
        close(normal_cdf(-1.6449), 0.05, 2e-4);
        close(normal_sf(3.0), 0.0013499, 1e-6);
    }

    #[test]
    fn chi2_reference() {
        // Known critical values: chi2_sf(3.841, 1) = 0.05.
        close(chi2_sf(3.841459, 1.0), 0.05, 1e-5);
        close(chi2_sf(6.634897, 1.0), 0.01, 1e-5);
        close(chi2_sf(10.82757, 1.0), 0.001, 1e-5);
        // df = 6: median near 5.348.
        close(chi2_cdf(5.348, 6.0), 0.5, 1e-3);
    }

    #[test]
    fn chi2_edges() {
        assert_eq!(chi2_cdf(0.0, 3.0), 0.0);
        assert_eq!(chi2_sf(-1.0, 3.0), 1.0);
        close(chi2_cdf(1e6, 2.0), 1.0, 1e-12);
    }

    #[test]
    fn t_matches_normal_at_large_df() {
        for t in [0.5, 1.0, 2.0, 3.0] {
            close(t_sf_two_sided(t, 1e7), 2.0 * normal_sf(t), 1e-6);
        }
    }

    #[test]
    fn t_reference_small_df() {
        // t = 2.228, df = 10 is the classic 5% two-sided critical value.
        close(t_sf_two_sided(2.228, 10.0), 0.05, 1e-4);
        // t = 4.587, df = 10 is the 0.1% critical value.
        close(t_sf_two_sided(4.587, 10.0), 0.001, 1e-5);
        // Symmetry.
        close(
            t_sf_two_sided(-2.228, 10.0),
            t_sf_two_sided(2.228, 10.0),
            1e-12,
        );
    }

    #[test]
    fn t_infinite_stat_is_zero() {
        assert_eq!(t_sf_two_sided(f64::INFINITY, 5.0), 0.0);
    }
}
