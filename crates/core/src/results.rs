//! Experiment results: the trial matrices plus cross-trial panels.

use crate::experiment::{ExperimentConfig, RunStatus};
use crate::matrix::TrialMatrix;
use crate::outcome::HostOutcome;
use originscan_netmodel::{OriginId, Protocol, World};
use originscan_store::{ScanSet, ScanSetStore, StoreKey};
use originscan_telemetry::TelemetrySnapshot;

/// All data produced by one experiment.
#[derive(Debug)]
pub struct ExperimentResults<'w> {
    world: &'w World,
    cfg: ExperimentConfig,
    matrices: Vec<TrialMatrix>,
    telemetry: TelemetrySnapshot,
}

/// Coverage of one origin in one trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coverage {
    /// Ground-truth hosts the origin completed L7 with.
    pub seen: usize,
    /// Size of the trial's ground truth.
    pub ground_truth: usize,
}

impl Coverage {
    /// Seen fraction (1.0 for an empty ground truth).
    pub fn fraction(&self) -> f64 {
        if self.ground_truth == 0 {
            1.0
        } else {
            self.seen as f64 / self.ground_truth as f64
        }
    }
}

impl<'w> ExperimentResults<'w> {
    pub(crate) fn new(
        world: &'w World,
        cfg: ExperimentConfig,
        matrices: Vec<TrialMatrix>,
        telemetry: TelemetrySnapshot,
    ) -> Self {
        Self {
            world,
            cfg,
            matrices,
            telemetry,
        }
    }

    /// The world scanned.
    pub fn world(&self) -> &'w World {
        self.world
    }

    /// The configuration used.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// The experiment's telemetry: every scan's events (keyed to
    /// simulated time) plus the full metrics registry, canonically
    /// ordered. Byte-identical across same-seed runs.
    pub fn telemetry(&self) -> &TelemetrySnapshot {
        &self.telemetry
    }

    /// All matrices, ordered by (protocol, trial).
    pub fn matrices(&self) -> &[TrialMatrix] {
        &self.matrices
    }

    /// The matrix for one (protocol, trial), if it was scanned.
    pub fn try_matrix(&self, proto: Protocol, trial: u8) -> Option<&TrialMatrix> {
        self.matrices
            .iter()
            .find(|m| m.protocol == proto && m.trial == trial)
    }

    /// The matrix for one (protocol, trial).
    ///
    /// # Panics
    /// If that (protocol, trial) was not part of the experiment; use
    /// [`Self::try_matrix`] when the pair is not known to exist.
    pub fn matrix(&self, proto: Protocol, trial: u8) -> &TrialMatrix {
        match self.try_matrix(proto, trial) {
            Some(m) => m,
            None => panic!("no such (protocol, trial) in this experiment"),
        }
    }

    /// Index of an origin in the roster, if it took part.
    pub fn try_origin_index(&self, origin: OriginId) -> Option<usize> {
        self.cfg.origins.iter().position(|&o| o == origin)
    }

    /// Index of an origin in the roster.
    ///
    /// # Panics
    /// If the origin was not part of the experiment; use
    /// [`Self::try_origin_index`] when membership is uncertain.
    pub fn origin_index(&self, origin: OriginId) -> usize {
        match self.try_origin_index(origin) {
            Some(i) => i,
            None => panic!("origin not part of this experiment"),
        }
    }

    /// The supervised run status of one (protocol, trial, origin).
    pub fn run_status(&self, proto: Protocol, trial: u8, origin: OriginId) -> Option<RunStatus> {
        let m = self.try_matrix(proto, trial)?;
        let oi = self.try_origin_index(origin)?;
        m.statuses.get(oi).copied()
    }

    /// Every run that was not a clean first-attempt completion, in
    /// (protocol, trial, origin) order. Empty for a fault-free experiment.
    pub fn disrupted_runs(&self) -> Vec<(Protocol, u8, OriginId, RunStatus)> {
        let mut out = Vec::new();
        for m in &self.matrices {
            for (oi, &status) in m.statuses.iter().enumerate() {
                if !status.is_clean() {
                    if let Some(&origin) = self.cfg.origins.get(oi) {
                        out.push((m.protocol, m.trial, origin, status));
                    }
                }
            }
        }
        out
    }

    /// Coverage (2-probe, i.e. as scanned) of `origin` in one trial.
    pub fn coverage(&self, proto: Protocol, trial: u8, origin: OriginId) -> Coverage {
        let m = self.matrix(proto, trial);
        Coverage {
            seen: m.seen_count(self.origin_index(origin)),
            ground_truth: m.len(),
        }
    }

    /// Coverage under the simulated single-probe scan.
    pub fn coverage_one_probe(&self, proto: Protocol, trial: u8, origin: OriginId) -> Coverage {
        let m = self.matrix(proto, trial);
        Coverage {
            seen: m.seen_count_one_probe(self.origin_index(origin)),
            ground_truth: m.len(),
        }
    }

    /// Build the cross-trial panel for one protocol.
    pub fn panel(&self, proto: Protocol) -> Panel {
        let trials: Vec<&TrialMatrix> = self
            .matrices
            .iter()
            .filter(|m| m.protocol == proto)
            .collect();
        assert!(!trials.is_empty(), "protocol not scanned");
        Panel::build(proto, &self.cfg.origins, &trials)
    }

    /// Collect every per-origin L7-success bitmap into a persistable
    /// [`ScanSetStore`], one entry per `(protocol, trial, origin)`.
    /// Entry order (and therefore the serialized bytes) is canonical and
    /// byte-identical across same-seed runs.
    pub fn scan_set_store(&self) -> ScanSetStore {
        let mut store = ScanSetStore::new();
        for m in &self.matrices {
            for (oi, set) in m.seen_sets.iter().enumerate() {
                store.insert(
                    StoreKey::new(m.protocol.name(), m.trial, oi as u16),
                    set.clone(),
                );
            }
        }
        store
    }
}

/// Cross-trial union view for one protocol: who was present when, and who
/// saw whom. This is the substrate for the §3 missing-host taxonomy.
#[derive(Debug)]
pub struct Panel {
    /// Protocol.
    pub protocol: Protocol,
    /// Origin roster (same order as the experiment).
    pub origins: Vec<OriginId>,
    /// Number of trials.
    pub trials: u8,
    /// Union of ground-truth addresses across trials, sorted.
    pub addrs: Vec<u32>,
    /// Bit `t` set ⇔ host was in trial `t`'s ground truth.
    pub present: Vec<u8>,
    /// `seen[origin][host]`: bit `t` set ⇔ origin completed L7 in trial t.
    pub seen: Vec<Vec<u8>>,
    /// Position of each union host in each trial matrix (`u32::MAX` if the
    /// host was absent from that trial).
    pub trial_pos: Vec<Vec<u32>>,
    /// `ever_seen_sets[origin]`: addresses the origin completed L7 with in
    /// at least one trial (compressed bitmap).
    pub ever_seen_sets: Vec<ScanSet>,
    /// Addresses present in ≥ 2 trials' ground truth.
    pub multi_present_set: ScanSet,
    /// `longterm_sets[origin]`: addresses long-term inaccessible from the
    /// origin — present in ≥ 2 trials, never seen by it
    /// (`multi_present_set ∖ ever_seen_sets[origin]`).
    pub longterm_sets: Vec<ScanSet>,
}

impl Panel {
    fn build(protocol: Protocol, origins: &[OriginId], trials: &[&TrialMatrix]) -> Panel {
        let mut union: Vec<u32> = Vec::new();
        for m in trials {
            union.extend_from_slice(&m.addrs);
        }
        union.sort_unstable();
        union.dedup();

        // The sorted union doubles as the index (binary search): no hash
        // map, hence no iteration-order hazard anywhere in the build.
        let n = union.len();
        let mut present = vec![0u8; n];
        let mut seen = vec![vec![0u8; n]; origins.len()];
        let mut trial_pos = vec![vec![u32::MAX; n]; trials.len()];
        for (t, m) in trials.iter().enumerate() {
            for (pos, &addr) in m.addrs.iter().enumerate() {
                let Ok(u) = union.binary_search(&addr) else {
                    continue; // unreachable: the union contains every addr
                };
                present[u] |= 1 << t;
                trial_pos[t][u] = pos as u32;
                for (oi, col) in m.outcomes.iter().enumerate() {
                    if col[pos].l7_success() {
                        seen[oi][u] |= 1 << t;
                    }
                }
            }
        }

        // Bitmap views: scanning union indices ascending yields sorted
        // addresses, so each set builds in one pass.
        let collect_set = |pred: &dyn Fn(usize) -> bool| -> ScanSet {
            ScanSet::from_sorted(
                &(0..n)
                    .filter(|&u| pred(u))
                    .map(|u| union[u])
                    .collect::<Vec<u32>>(),
            )
        };
        let ever_seen_sets: Vec<ScanSet> = (0..origins.len())
            .map(|oi| collect_set(&|u| seen[oi][u] != 0))
            .collect();
        let multi_present_set = collect_set(&|u| present[u].count_ones() >= 2);
        let longterm_sets: Vec<ScanSet> = ever_seen_sets
            .iter()
            .map(|ever| multi_present_set.andnot(ever))
            .collect();
        Panel {
            protocol,
            origins: origins.to_vec(),
            trials: trials.len() as u8,
            addrs: union,
            present,
            seen,
            trial_pos,
            ever_seen_sets,
            multi_present_set,
            longterm_sets,
        }
    }

    /// Number of union hosts.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when no host was ever seen.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Trials in which host `u` was present (bit count).
    pub fn present_trials(&self, u: usize) -> u32 {
        u32::from(self.present[u]).count_ones()
    }

    /// Trials in which `origin` saw host `u` while it was present.
    pub fn seen_trials(&self, origin_idx: usize, u: usize) -> u32 {
        u32::from(self.seen[origin_idx][u] & self.present[u]).count_ones()
    }

    /// The outcome of `origin` for union host `u` in `trial`, if present.
    pub fn outcome_in_trial(
        &self,
        matrices: &[TrialMatrix],
        origin_idx: usize,
        u: usize,
        trial: u8,
    ) -> Option<HostOutcome> {
        let pos = self.trial_pos[trial as usize][u];
        if pos == u32::MAX {
            return None;
        }
        let m = matrices
            .iter()
            .find(|m| m.protocol == self.protocol && m.trial == trial)?;
        Some(m.outcomes[origin_idx][pos as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentConfig};
    use originscan_netmodel::WorldConfig;

    fn results(world: &World) -> ExperimentResults<'_> {
        let cfg = ExperimentConfig {
            origins: vec![OriginId::Us1, OriginId::Japan, OriginId::Censys],
            protocols: vec![Protocol::Http],
            trials: 3,
            ..Default::default()
        };
        Experiment::new(world, cfg).run().unwrap()
    }

    #[test]
    fn coverage_bounds() {
        let world = WorldConfig::tiny(13).build();
        let r = results(&world);
        for t in 0..3 {
            for &o in &[OriginId::Us1, OriginId::Japan, OriginId::Censys] {
                let c = r.coverage(Protocol::Http, t, o);
                assert!(c.seen <= c.ground_truth);
                assert!(c.fraction() > 0.5, "{o} trial {t}: {}", c.fraction());
                let c1 = r.coverage_one_probe(Protocol::Http, t, o);
                assert!(c1.seen <= c.seen, "1-probe can never beat 2-probe");
            }
        }
    }

    #[test]
    fn panel_consistent_with_matrices() {
        let world = WorldConfig::tiny(13).build();
        let r = results(&world);
        let p = r.panel(Protocol::Http);
        assert_eq!(p.trials, 3);
        // Every trial's GT count equals the presence bits.
        for t in 0..3u8 {
            let m = r.matrix(Protocol::Http, t);
            let present_t = (0..p.len())
                .filter(|&u| p.present[u] & (1 << t) != 0)
                .count();
            assert_eq!(present_t, m.len());
            // Seen counts match.
            for (oi, _) in p.origins.iter().enumerate() {
                let seen_t = (0..p.len())
                    .filter(|&u| p.seen[oi][u] & (1 << t) != 0)
                    .count();
                assert_eq!(seen_t, m.seen_count(oi));
            }
        }
        // seen implies present.
        for oi in 0..p.origins.len() {
            for u in 0..p.len() {
                assert_eq!(p.seen[oi][u] & !p.present[u], 0, "seen without presence");
            }
        }
    }

    #[test]
    fn union_contains_churn() {
        // With churn, the union across trials should exceed any single
        // trial's ground truth.
        let world = WorldConfig::tiny(13).build();
        let r = results(&world);
        let p = r.panel(Protocol::Http);
        let max_trial = (0..3)
            .map(|t| r.matrix(Protocol::Http, t).len())
            .max()
            .unwrap();
        assert!(
            p.len() > max_trial,
            "union {} vs max trial {max_trial}",
            p.len()
        );
    }
}
