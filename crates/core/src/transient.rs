//! Transient-loss structure across origins (Figs 8, 9, 11; Table 3).

use crate::classify::{classify, Class};
use crate::results::Panel;
use originscan_netmodel::geo::Country;
use originscan_netmodel::World;
use std::collections::BTreeMap;

/// Per-(AS, origin) transient loss rate: transiently missed host-trials
/// over present host-trials.
#[derive(Debug, Clone)]
pub struct AsTransientLoss {
    /// AS display name.
    pub as_name: String,
    /// Ground-truth hosts in the AS (union across trials).
    pub hosts: usize,
    /// Per-origin transient loss rate in `[0, 1]`.
    pub rate: Vec<f64>,
    /// Per-origin count of transiently missed hosts.
    pub missed: Vec<usize>,
}

impl AsTransientLoss {
    /// Largest pairwise rate difference (Table 3's Δ, as a fraction).
    pub fn delta(&self) -> f64 {
        let max = self.rate.iter().cloned().fold(0.0, f64::max);
        let min = self.rate.iter().cloned().fold(1.0, f64::min);
        (max - min).max(0.0)
    }

    /// Missed-host difference between worst and best origin (Table 3's
    /// "Diff").
    pub fn diff(&self) -> usize {
        let max = self.missed.iter().copied().max().unwrap_or(0);
        let min = self.missed.iter().copied().min().unwrap_or(0);
        max - min
    }

    /// Worst/best miss ratio (Table 3's "Ratio"; missed counts clamped to
    /// ≥ 1 so the ratio stays finite, as the paper's huge ratios suggest).
    pub fn ratio(&self) -> f64 {
        let max = self.missed.iter().copied().max().unwrap_or(0);
        let min = self.missed.iter().copied().min().unwrap_or(0);
        max as f64 / min.max(1) as f64
    }
}

/// Compute transient loss per AS for every origin.
pub fn transient_by_as(world: &World, panel: &Panel) -> Vec<AsTransientLoss> {
    let n_origins = panel.origins.len();
    let mut hosts_by_as: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for u in 0..panel.len() {
        hosts_by_as
            .entry(world.as_index_of(panel.addrs[u]))
            .or_default()
            .push(u);
    }
    let mut out = Vec::new();
    for (ai, hosts) in hosts_by_as {
        let mut rate = Vec::with_capacity(n_origins);
        let mut missed = Vec::with_capacity(n_origins);
        for oi in 0..n_origins {
            let m = hosts
                .iter()
                .filter(|&&u| classify(panel, oi, u) == Class::Transient)
                .count();
            missed.push(m);
            rate.push(m as f64 / hosts.len() as f64);
        }
        out.push(AsTransientLoss {
            as_name: world.ases[ai as usize].name.clone(),
            hosts: hosts.len(),
            rate,
            missed,
        });
    }
    out.sort_by_key(|a| std::cmp::Reverse(a.hosts));
    out
}

/// Table 3: the ASes with the largest *absolute* miss-count spread,
/// restricted to the `top_by_hosts` largest ASes (the paper's candidates
/// are all within the top-100 by host count).
pub fn largest_spread_ases(
    mut by_as: Vec<AsTransientLoss>,
    top_by_hosts: usize,
    rows: usize,
) -> Vec<AsTransientLoss> {
    by_as.truncate(top_by_hosts); // already sorted by hosts desc
    by_as.sort_by_key(|a| std::cmp::Reverse(a.diff()));
    by_as.truncate(rows);
    by_as
}

/// Fig 9: per-AS max pairwise transient-rate difference, returned with
/// the AS host count for size weighting.
pub fn rate_spread_distribution(by_as: &[AsTransientLoss]) -> Vec<(f64, usize)> {
    by_as.iter().map(|a| (a.delta(), a.hosts)).collect()
}

/// Origin-stability analysis (§5.1 / Fig 11) over per-trial miss counts.
#[derive(Debug, Clone, Default)]
pub struct Stability {
    /// ASes (with ≥ `min_hosts`) analyzed.
    pub ases: usize,
    /// ASes whose best origin is the same in every trial.
    pub consistent_best: usize,
    /// ASes whose worst origin is the same in every trial.
    pub consistent_worst: usize,
    /// ASes where some trial's best origin is another trial's worst.
    pub best_flips_to_worst: usize,
    /// For ASes with a consistent worst origin: which origin it is
    /// (index → count).
    pub worst_origin_counts: Vec<usize>,
}

/// Compute §5.1 stability. `min_hosts` filters tiny ASes where one host
/// flips rankings.
pub fn origin_stability(world: &World, panel: &Panel, min_hosts: usize) -> Stability {
    let n_origins = panel.origins.len();
    let trials = panel.trials;
    let mut hosts_by_as: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for u in 0..panel.len() {
        hosts_by_as
            .entry(world.as_index_of(panel.addrs[u]))
            .or_default()
            .push(u);
    }
    let mut st = Stability {
        worst_origin_counts: vec![0; n_origins],
        ..Default::default()
    };
    for (_, hosts) in hosts_by_as {
        if hosts.len() < min_hosts {
            continue;
        }
        // Per-trial per-origin *transient* miss counts (long-term blocking
        // is a separate phenomenon; §5.1 ranks origins by transient loss).
        // Only a *strictly unique* minimum/maximum counts as the trial's
        // best/worst origin — an AS where every origin ties (e.g. zero
        // misses) carries no ranking information.
        let mut best: Vec<Option<usize>> = Vec::new();
        let mut worst: Vec<Option<usize>> = Vec::new();
        let mut any_present = false;
        for t in 0..trials {
            let bit = 1u8 << t;
            let mut miss = vec![0usize; n_origins];
            let mut present = 0usize;
            for &u in &hosts {
                if panel.present[u] & bit == 0 {
                    continue;
                }
                present += 1;
                for (oi, m) in miss.iter_mut().enumerate() {
                    if panel.seen[oi][u] & bit == 0 && classify(panel, oi, u) == Class::Transient {
                        *m += 1;
                    }
                }
            }
            if present == 0 {
                best.push(None);
                worst.push(None);
                continue;
            }
            any_present = true;
            let bmin = *miss.iter().min().expect("origins non-empty");
            let bmax = *miss.iter().max().expect("origins non-empty");
            best.push(
                if bmin < bmax && miss.iter().filter(|&&m| m == bmin).count() == 1 {
                    miss.iter().position(|&m| m == bmin)
                } else {
                    None
                },
            );
            worst.push(
                if bmax > bmin && miss.iter().filter(|&&m| m == bmax).count() == 1 {
                    miss.iter().position(|&m| m == bmax)
                } else {
                    None
                },
            );
        }
        if !any_present || best.len() < 2 {
            continue;
        }
        st.ases += 1;
        if best.iter().all(|b| b.is_some()) && best.iter().all(|&b| b == best[0]) {
            st.consistent_best += 1;
        }
        if worst.iter().all(|w| w.is_some()) && worst.iter().all(|&w| w == worst[0]) {
            st.consistent_worst += 1;
            st.worst_origin_counts[worst[0].expect("checked")] += 1;
        }
        // §5.1's flip: the strict best origin of one trial is the strict
        // worst of a different trial.
        let flips = (0..best.len()).any(|t1| {
            best[t1].is_some_and(|b| (0..worst.len()).any(|t2| t1 != t2 && worst[t2] == Some(b)))
        });
        if flips {
            st.best_flips_to_worst += 1;
        }
    }
    st
}

/// Country breakdown of the hosts in ASes for which `origin` is the
/// consistent worst (Fig 11b).
pub fn consistent_worst_countries(
    world: &World,
    panel: &Panel,
    origin_idx: usize,
    min_hosts: usize,
) -> Vec<(Country, usize)> {
    let trials = panel.trials;
    let n_origins = panel.origins.len();
    let mut hosts_by_as: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for u in 0..panel.len() {
        hosts_by_as
            .entry(world.as_index_of(panel.addrs[u]))
            .or_default()
            .push(u);
    }
    let mut counts: BTreeMap<Country, usize> = BTreeMap::new();
    for (_, hosts) in hosts_by_as {
        if hosts.len() < min_hosts {
            continue;
        }
        let mut worst = Vec::new();
        for t in 0..trials {
            let bit = 1u8 << t;
            let mut miss = vec![0usize; n_origins];
            for &u in &hosts {
                if panel.present[u] & bit == 0 {
                    continue;
                }
                for (oi, m) in miss.iter_mut().enumerate() {
                    if panel.seen[oi][u] & bit == 0 && classify(panel, oi, u) == Class::Transient {
                        *m += 1;
                    }
                }
            }
            let bmax = *miss.iter().max().expect("non-empty");
            // Require a strict worst to avoid ties counting as "consistent".
            if miss.iter().filter(|&&m| m == bmax).count() == 1 && bmax > 0 {
                worst.push(miss.iter().position(|&m| m == bmax).unwrap());
            } else {
                worst.push(usize::MAX);
            }
        }
        if worst.iter().all(|&w| w == origin_idx) {
            for &u in &hosts {
                *counts.entry(world.country_of(panel.addrs[u])).or_default() += 1;
            }
        }
    }
    let mut v: Vec<(Country, usize)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentConfig};
    use originscan_netmodel::{OriginId, Protocol, WorldConfig};

    fn setup(world: &World, proto: Protocol) -> Panel {
        let cfg = ExperimentConfig {
            origins: OriginId::MAIN.to_vec(),
            protocols: vec![proto],
            trials: 3,
            ..Default::default()
        };
        Experiment::new(world, cfg).run().unwrap().panel(proto)
    }

    #[test]
    fn rates_bounded_and_counts_match() {
        let world = WorldConfig::tiny(43).build();
        let p = setup(&world, Protocol::Http);
        for a in transient_by_as(&world, &p) {
            for (r, m) in a.rate.iter().zip(&a.missed) {
                assert!((0.0..=1.0).contains(r));
                assert!(*m <= a.hosts);
            }
            assert!(a.delta() <= 1.0);
            assert!(a.ratio() >= 1.0 || a.diff() == 0);
        }
    }

    #[test]
    fn spread_table_sorted_by_diff() {
        let world = WorldConfig::small(43).build();
        let p = setup(&world, Protocol::Http);
        let top = largest_spread_ases(transient_by_as(&world, &p), 100, 6);
        assert!(top.len() <= 6);
        assert!(top.windows(2).all(|w| w[0].diff() >= w[1].diff()));
        // The big spread ASes should include a China or special-path AS.
        let names: Vec<&str> = top.iter().map(|a| a.as_name.as_str()).collect();
        assert!(
            names.iter().any(|n| n.contains("Alibaba")
                || n.contains("China")
                || n.contains("Telecom Italia")
                || n.contains("ABCDE")
                || n.contains("Tencent")),
            "top spread ASes: {names:?}"
        );
    }

    #[test]
    fn stability_fractions_sane() {
        let world = WorldConfig::small(43).build();
        let p = setup(&world, Protocol::Http);
        let st = origin_stability(&world, &p, 10);
        assert!(st.ases > 20);
        assert!(st.consistent_best <= st.ases);
        assert!(st.consistent_worst <= st.ases);
        // §5.1: best origins are unstable — fewer than 5% of ASes keep a
        // consistent (strictly unique) best across trials. We allow a bit
        // more at reduced scale.
        assert!(
            (st.consistent_best as f64) < 0.20 * st.ases as f64,
            "consistent best {} of {}",
            st.consistent_best,
            st.ases
        );
        // Flips exist (about 23% of ASes in the paper) but are not
        // universal.
        let flip_frac = st.best_flips_to_worst as f64 / st.ases as f64;
        assert!(
            (0.01..0.7).contains(&flip_frac),
            "flip fraction {flip_frac} ({} of {})",
            st.best_flips_to_worst,
            st.ases
        );
    }

    #[test]
    fn australia_often_consistent_worst() {
        let world = WorldConfig::small(43).build();
        let p = setup(&world, Protocol::Http);
        let st = origin_stability(&world, &p, 10);
        let au = p
            .origins
            .iter()
            .position(|&o| o == OriginId::Australia)
            .unwrap();
        let total: usize = st.worst_origin_counts.iter().sum();
        if total >= 5 {
            let au_share = st.worst_origin_counts[au] as f64 / total as f64;
            assert!(
                au_share >= 0.25,
                "AU consistent-worst share {au_share} ({:?})",
                st.worst_origin_counts
            );
        }
    }

    #[test]
    fn au_worst_countries_include_russia_or_kazakhstan() {
        let world = WorldConfig::small(43).build();
        let p = setup(&world, Protocol::Http);
        let au = p
            .origins
            .iter()
            .position(|&o| o == OriginId::Australia)
            .unwrap();
        let cc = consistent_worst_countries(&world, &p, au, 10);
        if !cc.is_empty() {
            let names: Vec<&str> = cc.iter().take(4).map(|(c, _)| c.code()).collect();
            assert!(
                names.contains(&"RU") || names.contains(&"KZ") || names.contains(&"US"),
                "AU-worst countries: {names:?}"
            );
        }
    }
}
