//! First-class scan diffing.
//!
//! The paper's method reduces to comparing scans: same trial across
//! origins (origin bias), same origin across trials (churn + transients).
//! This module diffs two scan-record sets under the paper's ground-truth
//! rule (the universe is the union of L7-completed hosts), runs McNemar's
//! test on the paired outcomes, and — when a [`World`] is available —
//! attributes each side's exclusive hosts to ASes.

use originscan_netmodel::World;
use originscan_scanner::engine::HostScanRecord;
use originscan_stats::mcnemar::{mcnemar_test, McNemarResult, PairedCounts};
use originscan_store::ScanSet;
use std::collections::BTreeMap;

/// Result of diffing two scans.
#[derive(Debug, Clone)]
pub struct ScanDiff {
    /// Hosts completing L7 in both scans.
    pub both: usize,
    /// Hosts only the first scan completed.
    pub only_a: Vec<u32>,
    /// Hosts only the second scan completed.
    pub only_b: Vec<u32>,
    /// McNemar's test over the paired outcomes.
    pub mcnemar: McNemarResult,
}

impl ScanDiff {
    /// Size of the shared universe (union of successes).
    pub fn universe(&self) -> usize {
        self.both + self.only_a.len() + self.only_b.len()
    }

    /// Coverage of the universe by side A (resp. B).
    pub fn coverage(&self) -> (f64, f64) {
        let n = self.universe().max(1) as f64;
        (
            (self.both + self.only_a.len()) as f64 / n,
            (self.both + self.only_b.len()) as f64 / n,
        )
    }
}

/// Diff two scans by their L7-successful host sets, using the compressed
/// bitmap kernels: `both` is an intersection popcount, the exclusive
/// lists come from ANDNOT (yielded in ascending address order, exactly as
/// the old sorted-set walk produced them).
pub fn diff_records(a: &[HostScanRecord], b: &[HostScanRecord]) -> ScanDiff {
    let sa: ScanSet = a
        .iter()
        .filter(|r| r.l7_success())
        .map(|r| r.addr)
        .collect();
    let sb: ScanSet = b
        .iter()
        .filter(|r| r.l7_success())
        .map(|r| r.addr)
        .collect();
    let both = sa.intersection_cardinality(&sb);
    let only_a = sa.andnot(&sb).to_vec();
    let only_b = sb.andnot(&sa).to_vec();
    // The universe here is the union itself, so `neither` is always 0 —
    // matching the old walk, which only visited union members.
    let counts = PairedCounts {
        both,
        only_a: only_a.len() as u64,
        only_b: only_b.len() as u64,
        neither: 0,
    };
    ScanDiff {
        both: both as usize,
        only_a,
        only_b,
        mcnemar: mcnemar_test(&counts),
    }
}

/// Attribute a host list to ASes: `(as_name, count)`, descending.
pub fn by_as(world: &World, hosts: &[u32]) -> Vec<(String, usize)> {
    let mut m: BTreeMap<u32, usize> = BTreeMap::new();
    for &h in hosts {
        *m.entry(world.as_index_of(h)).or_default() += 1;
    }
    let mut v: Vec<(String, usize)> = m
        .into_iter()
        .map(|(ai, c)| (world.ases[ai as usize].name.clone(), c))
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// Render a human-readable diff report.
pub fn render(diff: &ScanDiff, label_a: &str, label_b: &str, world: Option<&World>) -> String {
    use crate::report::{count, pct, Table};
    use std::fmt::Write as _;
    let mut out = String::new();
    let (ca, cb) = diff.coverage();
    let _ = writeln!(
        out,
        "universe {} hosts | {label_a}: {} ({}) | {label_b}: {} ({}) | shared {}",
        count(diff.universe()),
        count(diff.both + diff.only_a.len()),
        pct(ca),
        count(diff.both + diff.only_b.len()),
        pct(cb),
        count(diff.both),
    );
    let _ = writeln!(
        out,
        "McNemar: χ² = {:.2}, p = {:.3e} over {} discordant hosts{}",
        diff.mcnemar.statistic,
        diff.mcnemar.p_value,
        count(diff.mcnemar.discordant as usize),
        if diff.mcnemar.p_value < 0.001 {
            " — significantly different views"
        } else {
            ""
        },
    );
    if let Some(world) = world {
        for (label, hosts) in [(label_a, &diff.only_a), (label_b, &diff.only_b)] {
            if hosts.is_empty() {
                continue;
            }
            let mut t = Table::new(["AS", "hosts"]);
            for (name, c) in by_as(world, hosts).into_iter().take(8) {
                t.row([name, c.to_string()]);
            }
            let _ = writeln!(out, "\nhosts only {label} reached, by AS:\n{}", t.render());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use originscan_netmodel::{OriginId, Protocol, SimNet, WorldConfig};
    use originscan_scanner::engine::{run_scan, ScanConfig};
    use originscan_scanner::zgrab::{L7Detail, L7Outcome};

    fn rec(addr: u32, ok: bool) -> HostScanRecord {
        HostScanRecord {
            addr,
            synack_mask: 0b11,
            got_rst: false,
            response_time_s: 0.0,
            l7: if ok {
                L7Outcome::Success(L7Detail::Http { code: 200 })
            } else {
                L7Outcome::Timeout
            },
            l7_attempts: 1,
        }
    }

    #[test]
    fn basic_partition() {
        let a = vec![rec(1, true), rec(2, true), rec(3, false), rec(4, true)];
        let b = vec![rec(2, true), rec(3, true), rec(5, true)];
        let d = diff_records(&a, &b);
        assert_eq!(d.both, 1); // addr 2
        assert_eq!(d.only_a, vec![1, 4]);
        assert_eq!(d.only_b, vec![3, 5]);
        assert_eq!(d.universe(), 5);
        let (ca, cb) = d.coverage();
        assert!((ca - 0.6).abs() < 1e-12);
        assert!((cb - 0.6).abs() < 1e-12);
    }

    #[test]
    fn identical_scans_not_significant() {
        let a = vec![rec(1, true), rec(2, true)];
        let d = diff_records(&a, &a.clone());
        assert_eq!(d.mcnemar.p_value, 1.0);
        assert!(d.only_a.is_empty() && d.only_b.is_empty());
    }

    #[test]
    fn two_origin_diff_finds_censys_blocking() {
        let world = WorldConfig::tiny(31).build();
        let origins = [OriginId::Japan, OriginId::Censys];
        let net = SimNet::new(&world, &origins, 75_600.0);
        let scan = |idx: u16| {
            let mut cfg = ScanConfig::new(world.space(), Protocol::Http, 9);
            cfg.origin = idx;
            cfg.concurrent_origins = 2;
            run_scan(&net, &cfg).unwrap()
        };
        let jp = scan(0);
        let cen = scan(1);
        let d = diff_records(&jp.records, &cen.records);
        // Japan sees clearly more than Censys; the diff is significant.
        assert!(
            d.only_a.len() * 2 > d.only_b.len() * 3,
            "{} vs {}",
            d.only_a.len(),
            d.only_b.len()
        );
        assert!(d.mcnemar.p_value < 0.001);
        // AS attribution names a known Censys blocker among the top rows.
        let top: Vec<String> = by_as(&world, &d.only_a)
            .into_iter()
            .take(6)
            .map(|(n, _)| n)
            .collect();
        assert!(
            top.iter()
                .any(|n| n.contains("DXTL") || n.contains("Enzu") || n == "EGI Hosting"),
            "top ASes: {top:?}"
        );
        // Rendering mentions both the universe and the attribution.
        let text = render(&d, "JP", "CEN", Some(&world));
        assert!(text.contains("universe"));
        assert!(text.contains("only JP reached"));
    }
}
