//! Coverage tables (Fig 1, Appendix A Table 4) and the §3 significance
//! tests.

use crate::results::ExperimentResults;
use originscan_netmodel::{OriginId, Protocol};
use originscan_stats::mcnemar::{mcnemar_test, McNemarResult, PairedCounts};

/// One row of the Appendix-A ground-truth coverage table.
#[derive(Debug, Clone)]
pub struct CoverageRow {
    /// Protocol.
    pub protocol: Protocol,
    /// Trial (or `None` for the mean row).
    pub trial: Option<u8>,
    /// Per-origin coverage fractions, roster order.
    pub fractions: Vec<f64>,
    /// Fraction of ground truth seen by *all* origins (∩).
    pub intersection: f64,
    /// Ground-truth size (∪).
    pub union: usize,
}

/// Build the Appendix-A table for one protocol: one row per trial plus a
/// mean row.
pub fn coverage_table(results: &ExperimentResults<'_>, proto: Protocol) -> Vec<CoverageRow> {
    let cfg = results.config();
    let mut rows = Vec::new();
    for trial in 0..cfg.trials {
        let m = results.matrix(proto, trial);
        let n = m.len().max(1);
        let fractions: Vec<f64> = (0..cfg.origins.len())
            .map(|oi| m.seen_count(oi) as f64 / n as f64)
            .collect();
        // ∩ row: AND-fold of the per-origin bitmaps (vacuously the whole
        // ground truth when the roster is empty).
        let all_seen = match m.seen_sets.split_first() {
            None => m.len(),
            Some((first, rest)) => rest
                .iter()
                .fold(first.clone(), |acc, s| acc.and(s))
                .cardinality() as usize,
        };
        rows.push(CoverageRow {
            protocol: proto,
            trial: Some(trial),
            fractions,
            intersection: all_seen as f64 / n as f64,
            union: m.len(),
        });
    }
    // Mean row.
    let k = rows.len() as f64;
    let mean_frac: Vec<f64> = (0..cfg.origins.len())
        .map(|oi| rows.iter().map(|r| r.fractions[oi]).sum::<f64>() / k)
        .collect();
    rows.push(CoverageRow {
        protocol: proto,
        trial: None,
        fractions: mean_frac,
        intersection: rows.iter().map(|r| r.intersection).sum::<f64>() / k,
        union: (rows.iter().map(|r| r.union).sum::<usize>() as f64 / k).round() as usize,
    });
    rows
}

/// Mean coverage of one origin across trials (a bar of Fig 1).
pub fn mean_coverage(results: &ExperimentResults<'_>, proto: Protocol, origin: OriginId) -> f64 {
    let trials = results.config().trials;
    (0..trials)
        .map(|t| results.coverage(proto, t, origin).fraction())
        .sum::<f64>()
        / f64::from(trials)
}

/// One pairwise McNemar comparison.
#[derive(Debug, Clone)]
pub struct PairwiseTest {
    /// First origin.
    pub a: OriginId,
    /// Second origin.
    pub b: OriginId,
    /// Trial.
    pub trial: u8,
    /// Test result.
    pub result: McNemarResult,
}

/// Run McNemar's test between every origin pair for every trial of one
/// protocol (§3), returning the tests plus the Bonferroni-corrected alpha.
pub fn mcnemar_all_pairs(
    results: &ExperimentResults<'_>,
    proto: Protocol,
    alpha: f64,
) -> (Vec<PairwiseTest>, f64) {
    let cfg = results.config();
    let mut tests = Vec::new();
    for trial in 0..cfg.trials {
        let m = results.matrix(proto, trial);
        for i in 0..cfg.origins.len() {
            for j in i + 1..cfg.origins.len() {
                // Paired counts straight from bitmap cardinalities: no
                // per-host loop. both = |A∩B|, the rest by subtraction.
                let (sa, sb) = (&m.seen_sets[i], &m.seen_sets[j]);
                let both = sa.intersection_cardinality(sb);
                let only_a = sa.cardinality() - both;
                let only_b = sb.cardinality() - both;
                let counts = PairedCounts {
                    both,
                    only_a,
                    only_b,
                    neither: m.len() as u64 - both - only_a - only_b,
                };
                tests.push(PairwiseTest {
                    a: cfg.origins[i],
                    b: cfg.origins[j],
                    trial,
                    result: mcnemar_test(&counts),
                });
            }
        }
    }
    let corrected = originscan_stats::bonferroni(alpha, tests.len().max(1));
    (tests, corrected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentConfig};
    use originscan_netmodel::WorldConfig;

    fn run(world: &originscan_netmodel::World) -> ExperimentResults<'_> {
        let cfg = ExperimentConfig {
            origins: vec![OriginId::Japan, OriginId::Us64, OriginId::Censys],
            protocols: vec![Protocol::Http],
            trials: 2,
            ..Default::default()
        };
        Experiment::new(world, cfg).run().unwrap()
    }

    #[test]
    fn table_structure() {
        let world = WorldConfig::tiny(23).build();
        let r = run(&world);
        let rows = coverage_table(&r, Protocol::Http);
        assert_eq!(rows.len(), 3); // 2 trials + mean
        assert!(rows[2].trial.is_none());
        for row in &rows {
            assert_eq!(row.fractions.len(), 3);
            for &f in &row.fractions {
                assert!((0.0..=1.0).contains(&f));
                assert!(row.intersection <= f + 1e-12, "∩ cannot exceed any origin");
            }
        }
    }

    #[test]
    fn censys_mean_coverage_lowest() {
        let world = WorldConfig::small(23).build();
        let r = run(&world);
        let cen = mean_coverage(&r, Protocol::Http, OriginId::Censys);
        let jp = mean_coverage(&r, Protocol::Http, OriginId::Japan);
        let us64 = mean_coverage(&r, Protocol::Http, OriginId::Us64);
        assert!(cen < jp && cen < us64, "CEN {cen}, JP {jp}, US64 {us64}");
        assert!(jp > 0.9, "academic origin coverage {jp}");
    }

    #[test]
    fn mcnemar_finds_significant_differences() {
        let world = WorldConfig::small(23).build();
        let r = run(&world);
        let (tests, corrected) = mcnemar_all_pairs(&r, Protocol::Http, 0.001);
        assert_eq!(tests.len(), 3 * 2); // 3 pairs × 2 trials
        assert!(corrected < 0.001);
        // Censys differs from everyone overwhelmingly.
        let cen_tests = tests
            .iter()
            .filter(|t| t.a == OriginId::Censys || t.b == OriginId::Censys);
        for t in cen_tests {
            assert!(
                t.result.p_value < corrected,
                "{} vs {} trial {}: p = {}",
                t.a,
                t.b,
                t.trial,
                t.result.p_value
            );
        }
    }
}
