//! # originscan-core
//!
//! The measurement methodology of "On the Origin of Scanning" (IMC 2020)
//! as a library: synchronized multi-origin experiments over a simulated
//! Internet, and every analysis in the paper.
//!
//! * [`experiment`] — run ZMap+ZGrab scans from many origins in lockstep.
//! * [`adversarial`] — the scanner/defender co-simulation: politeness ×
//!   aggression sweeps with adaptive-resilience outcomes.
//! * [`matrix`] / [`results`] / [`outcome`] — per-trial ground truth and
//!   packed per-(origin, host) outcomes.
//! * [`classify`] — the §3 missing-host taxonomy (Fig 2).
//! * [`coverage`] — coverage tables and McNemar tests (Fig 1, Tab 4, §3).
//! * [`exclusivity`] — exclusive (in)accessibility (Tab 1, Figs 3/6/7/8).
//! * [`country`] — country-level bias (Tab 2, Tab 5, §4.4).
//! * [`asdist`] — AS concentration of long-term loss (Figs 4, 5).
//! * [`transient`] — transient-loss spreads and origin stability
//!   (Figs 8, 9, 11; Tab 3).
//! * [`packetloss`] — the §5.2 packet-drop estimator (Fig 10).
//! * [`bursts`] — §5.3 burst-outage detection over hourly loss series.
//! * [`ssh`] — §6: Alibaba's temporal blocking, MaxStartups, retries
//!   (Figs 12/13/14).
//! * [`multiorigin`] — §7 multi-origin/multi-probe coverage
//!   (Figs 15/17/18).
//! * [`modules`] — per-probe-module sweeps keyed by module name
//!   (ICMP echo, DNS-over-UDP, and the TCP trio side by side).
//! * [`frontier`] — the probes-vs-coverage frontier of topology-aware
//!   target plans (full sweep vs density/churn/hybrid strategies).
//! * [`report`] — plain-text table rendering for the bench harness.
//! * [`summary`] — the one-call full report over an experiment's results.
//! * [`diff`] — first-class diffing of two archived scans.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod asdist;
pub mod bursts;
pub mod classify;
pub mod country;
pub mod coverage;
pub mod diff;
pub mod exclusivity;
pub mod experiment;
pub mod frontier;
pub mod matrix;
pub mod modules;
pub mod multiorigin;
pub mod outcome;
pub mod packetloss;
pub mod report;
pub mod results;
pub mod ssh;
pub mod summary;
pub mod transient;

pub use adversarial::{
    AdversarialConfig, AdversarialError, AdversarialResults, AdversarialSweep, CellOutcome,
    CellStatus, PolitenessProfile,
};
pub use experiment::{
    Experiment, ExperimentConfig, ExperimentError, FailCause, OriginRun, RunStatus,
    SupervisorPolicy,
};
pub use outcome::{FailKind, HostOutcome};
pub use results::{Coverage, ExperimentResults, Panel};
