//! The probes-vs-coverage frontier: what a topology-aware target plan
//! buys (§7's "do we need to probe everything?" question, asked of the
//! planner).
//!
//! The sweep runs `prior_trials` full scans to learn plans, then scans
//! one *evaluation* trial once per strategy — full sweep, observed-only,
//! density-ranked top-k, churn-prioritized, hybrid — and reports each
//! strategy's probe cost against its recall of the full sweep's
//! responsive population. The interesting region is the knee: on worlds
//! with realistic deployment sparsity the observed-only plan reaches
//! ≥95% of full-sweep coverage for a fraction of the probes, because
//! never-deployed /24s dominate the address space and deployment is
//! stable across trials.
//!
//! Everything is deterministic: same world + config ⇒ byte-identical
//! [`FrontierSweep::render`] output (pinned by a unit test and consumed
//! by `examples/fig_frontier.rs` and the `perf_plan` bench gate).

use crate::experiment::TRIAL_DURATION_S;
use crate::report::{count, pct, Table};
use originscan_netmodel::{OriginId, Protocol, SimNet, World};
use originscan_plan::{AsSpan, PlanBuilder, PlanError, Strategy, TargetPlan};
use originscan_scanner::{run_scan, ScanConfig, ScanError};
use originscan_store::ScanSet;
use std::fmt;
use std::fmt::Write as _;

/// Why a frontier sweep failed.
#[derive(Debug)]
pub enum FrontierError {
    /// A scan failed (configuration or injected fault).
    Scan(ScanError),
    /// Plan construction failed.
    Plan(PlanError),
    /// The configuration is unusable (no origins, no strategies, or no
    /// prior trials to learn from).
    EmptyConfig {
        /// Which list was empty.
        what: &'static str,
    },
}

impl fmt::Display for FrontierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontierError::Scan(e) => write!(f, "frontier scan failed: {e}"),
            FrontierError::Plan(e) => write!(f, "frontier plan failed: {e}"),
            FrontierError::EmptyConfig { what } => {
                write!(f, "frontier config has no {what}")
            }
        }
    }
}

impl std::error::Error for FrontierError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrontierError::Scan(e) => Some(e),
            FrontierError::Plan(e) => Some(e),
            FrontierError::EmptyConfig { .. } => None,
        }
    }
}

impl From<ScanError> for FrontierError {
    fn from(e: ScanError) -> Self {
        FrontierError::Scan(e)
    }
}

impl From<PlanError> for FrontierError {
    fn from(e: PlanError) -> Self {
        FrontierError::Plan(e)
    }
}

/// Configuration for one frontier sweep.
#[derive(Debug, Clone)]
pub struct FrontierConfig {
    /// Scan origins; plans learn from (and are evaluated against) the
    /// union across the whole roster.
    pub origins: Vec<OriginId>,
    /// Protocol to scan.
    pub protocol: Protocol,
    /// Full-sweep trials to learn plans from (trials `0..prior_trials`;
    /// the evaluation trial is `prior_trials` itself, so plans are never
    /// evaluated on data they trained on).
    pub prior_trials: u8,
    /// Base scan seed (trial number is added, as in experiments).
    pub seed: u64,
    /// The strategies to place on the frontier, in presentation order.
    pub strategies: Vec<Strategy>,
    /// Optional per-AS cap on planned /24s (see
    /// [`PlanBuilder::with_budget_per_as`]).
    pub budget_per_as: Option<u32>,
}

impl Default for FrontierConfig {
    fn default() -> Self {
        FrontierConfig {
            origins: vec![OriginId::Us1, OriginId::Germany],
            protocol: Protocol::Http,
            prior_trials: 2,
            seed: 7,
            strategies: vec![
                Strategy::Full,
                Strategy::Observed,
                Strategy::DensityTopK { keep_ppm: 250_000 },
                Strategy::ChurnWeighted { keep_ppm: 250_000 },
                Strategy::Hybrid { keep_ppm: 500_000 },
            ],
            budget_per_as: None,
        }
    }
}

/// One strategy's position on the probes-vs-coverage frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// The strategy's plan label (row key).
    pub strategy: String,
    /// /24s the plan admits.
    pub planned_s24s: usize,
    /// SYN probes the evaluation scans sent (summed over origins).
    pub probes_sent: u64,
    /// `probes_sent` as a fraction of the full-sweep baseline's.
    pub probes_frac: f64,
    /// Distinct responsive addresses the evaluation scans found (union
    /// over origins).
    pub found: u64,
    /// Fraction of the baseline's responsive population the planned
    /// scans still found.
    pub recall: f64,
}

/// The measured frontier: the full-sweep baseline plus one point per
/// strategy.
#[derive(Debug, Clone)]
pub struct FrontierSweep {
    /// Probes the plan-free baseline sent (summed over origins).
    pub baseline_probes: u64,
    /// Responsive addresses the baseline found (union over origins).
    pub baseline_found: u64,
    /// Announced /24s in the world (the full sweep's plan size).
    pub announced_s24s: usize,
    /// One point per configured strategy, configuration order.
    pub points: Vec<FrontierPoint>,
}

/// The world's announced-prefix/AS structure in the planner's neutral
/// span form, AS order.
pub fn as_spans(world: &World) -> Vec<AsSpan> {
    world
        .ases
        .iter()
        .map(|a| AsSpan {
            first_s24: a.first_slash24,
            n_s24: a.n_slash24,
            as_index: a.index,
        })
        .collect()
}

/// Scan `trial` from every origin (plan-free or planned), returning the
/// union of responsive addresses and the summed probe count.
fn scan_union(
    net: &SimNet<'_>,
    cfg: &FrontierConfig,
    space: u64,
    trial: u8,
    plan: Option<&TargetPlan>,
) -> Result<(ScanSet, u64), FrontierError> {
    let rate = originscan_scanner::rate::rate_for_duration(space * 2, TRIAL_DURATION_S);
    let mut addrs: Vec<u32> = Vec::new();
    let mut probes = 0u64;
    for (i, _origin) in cfg.origins.iter().enumerate() {
        let mut c = ScanConfig::new(space, cfg.protocol, cfg.seed + u64::from(trial));
        c.origin = i as u16;
        c.trial = trial;
        c.rate_pps = rate;
        c.concurrent_origins = cfg.origins.len() as u8;
        c.plan = plan.cloned();
        let out = run_scan(net, &c)?;
        probes += out.summary.probes_sent;
        addrs.extend(
            out.records
                .iter()
                .filter(|r| r.l4_responsive())
                .map(|r| r.addr),
        );
    }
    Ok((ScanSet::from_unsorted(addrs), probes))
}

/// Measure the probes-vs-coverage frontier on `world` under `cfg`.
pub fn sweep_frontier(world: &World, cfg: &FrontierConfig) -> Result<FrontierSweep, FrontierError> {
    if cfg.origins.is_empty() {
        return Err(FrontierError::EmptyConfig { what: "origins" });
    }
    if cfg.strategies.is_empty() {
        return Err(FrontierError::EmptyConfig { what: "strategies" });
    }
    if cfg.prior_trials == 0 {
        return Err(FrontierError::EmptyConfig {
            what: "prior trials",
        });
    }
    let space = world.space();
    let net = SimNet::new(world, &cfg.origins, TRIAL_DURATION_S);

    // Learn: full sweeps over the prior trials feed the builder.
    let mut builder = PlanBuilder::new(space, cfg.seed)?.with_topology(as_spans(world));
    if let Some(cap) = cfg.budget_per_as {
        builder = builder.with_budget_per_as(cap);
    }
    for trial in 0..cfg.prior_trials {
        let (union, _probes) = scan_union(&net, cfg, space, trial, None)?;
        builder.observe_trial(&union);
    }

    // Evaluate on the held-out trial: plan-free baseline first.
    let eval_trial = cfg.prior_trials;
    let (baseline_set, baseline_probes) = scan_union(&net, cfg, space, eval_trial, None)?;
    let baseline_found = baseline_set.cardinality();

    let mut points = Vec::with_capacity(cfg.strategies.len());
    for strategy in &cfg.strategies {
        let plan = builder.build(strategy)?;
        let (found_set, probes) = scan_union(&net, cfg, space, eval_trial, Some(&plan))?;
        let covered = found_set.intersection_cardinality(&baseline_set);
        points.push(FrontierPoint {
            strategy: plan.strategy().to_string(),
            planned_s24s: plan.planned_s24s(),
            probes_sent: probes,
            probes_frac: if baseline_probes == 0 {
                0.0
            } else {
                probes as f64 / baseline_probes as f64
            },
            found: found_set.cardinality(),
            recall: if baseline_found == 0 {
                1.0
            } else {
                covered as f64 / baseline_found as f64
            },
        });
    }
    Ok(FrontierSweep {
        baseline_probes,
        baseline_found,
        announced_s24s: as_spans(world).iter().map(|s| s.n_s24 as usize).sum(),
        points,
    })
}

impl FrontierSweep {
    /// The cheapest point (fewest probes) reaching at least `min_recall`
    /// of the baseline's responsive population. This is the bench gate's
    /// question: "what does ≥95% recall cost?"
    pub fn cheapest_with_recall(&self, min_recall: f64) -> Option<&FrontierPoint> {
        self.points
            .iter()
            .filter(|p| p.recall >= min_recall)
            .min_by(|a, b| (a.probes_sent, &a.strategy).cmp(&(b.probes_sent, &b.strategy)))
    }

    /// Render the frontier as a text table (byte-deterministic).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "probes-vs-coverage frontier — baseline: {} probes, {} responsive, {} announced /24s\n",
            self.baseline_probes, self.baseline_found, self.announced_s24s,
        );
        let mut t = Table::new(["strategy", "/24s", "probes", "probes%", "found", "recall"]);
        for p in &self.points {
            t.row([
                p.strategy.clone(),
                count(p.planned_s24s),
                count(p.probes_sent as usize),
                pct(p.probes_frac),
                count(p.found as usize),
                pct(p.recall),
            ]);
        }
        let _ = writeln!(out, "{}", t.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use originscan_netmodel::WorldConfig;

    fn sparse_world(seed: u64) -> World {
        // Low deployment density leaves most /24s empty — the regime the
        // planner exists for.
        let mut wc = WorldConfig::tiny(seed);
        wc.density_scale = 0.1;
        wc.build()
    }

    fn sweep(world: &World) -> FrontierSweep {
        sweep_frontier(world, &FrontierConfig::default()).unwrap()
    }

    #[test]
    fn full_strategy_matches_baseline_probes() {
        let world = sparse_world(91);
        let s = sweep(&world);
        let full = s.points.iter().find(|p| p.strategy == "full").unwrap();
        // The full plan admits every announced /24; probing through it
        // costs the same as no plan at all (announced = whole space in
        // the simulated world).
        assert_eq!(full.probes_sent, s.baseline_probes);
        assert!((full.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn observed_plan_cuts_probes_and_keeps_recall() {
        let world = sparse_world(92);
        let s = sweep(&world);
        let obs = s.points.iter().find(|p| p.strategy == "observed").unwrap();
        assert!(
            obs.probes_frac < 0.75,
            "observed plan should skip never-deployed /24s (frac {})",
            obs.probes_frac
        );
        assert!(
            obs.recall > 0.9,
            "deployment is stable, so recall should stay high (recall {})",
            obs.recall
        );
    }

    #[test]
    fn ranked_strategies_probe_less_than_observed() {
        let world = sparse_world(93);
        let s = sweep(&world);
        let frac_of = |name: &str| {
            s.points
                .iter()
                .find(|p| p.strategy == name)
                .map(|p| p.probes_frac)
                .unwrap()
        };
        assert!(frac_of("density_top_k250000") < frac_of("observed"));
        assert!(frac_of("churn_top_k250000") < frac_of("observed"));
    }

    #[test]
    fn cheapest_with_recall_picks_a_cheap_point() {
        let world = sparse_world(94);
        let s = sweep(&world);
        let p = s
            .cheapest_with_recall(0.95)
            .expect("some point reaches 95%");
        let full = s.points.iter().find(|p| p.strategy == "full").unwrap();
        assert!(p.probes_sent <= full.probes_sent);
        assert!(s.cheapest_with_recall(1.1).is_none());
    }

    #[test]
    fn sweep_is_deterministic() {
        let world = sparse_world(95);
        let a = sweep_frontier(&world, &FrontierConfig::default())
            .unwrap()
            .render();
        let b = sweep_frontier(&world, &FrontierConfig::default())
            .unwrap()
            .render();
        assert_eq!(a, b);
        assert!(a.contains("strategy"));
        assert!(a.contains("observed"));
    }

    #[test]
    fn empty_configs_are_rejected() {
        let world = sparse_world(96);
        let mut c = FrontierConfig::default();
        c.origins.clear();
        assert!(matches!(
            sweep_frontier(&world, &c),
            Err(FrontierError::EmptyConfig { what: "origins" })
        ));
        let mut c = FrontierConfig::default();
        c.strategies.clear();
        assert!(matches!(
            sweep_frontier(&world, &c),
            Err(FrontierError::EmptyConfig { what: "strategies" })
        ));
        let c = FrontierConfig {
            prior_trials: 0,
            ..FrontierConfig::default()
        };
        assert!(matches!(
            sweep_frontier(&world, &c),
            Err(FrontierError::EmptyConfig {
                what: "prior trials"
            })
        ));
    }
}
