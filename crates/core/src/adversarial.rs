//! Adversarial co-simulation: scanner politeness × defender aggression.
//!
//! §4–§6 of the paper catalogue *static* blocking — filters that exist
//! before the scan starts and do not react to it. This module closes the
//! loop in the other direction: it crosses scanners of varying politeness
//! (send rate, source-IP pool, adaptive resilience via
//! [`AdaptivePolicy`]) against defender swarms of varying aggression
//! ([`AggressionProfile`]) and measures how much coverage each pairing
//! retains. The interesting question is *graceful degradation*: when the
//! defenders fight back, does an adaptive scanner (rate backoff, source
//! rotation, prefix deferral) keep more of the network visible than an
//! open-loop one?
//!
//! Every cell of the sweep is an independent counterfactual universe: the
//! same [`World`], the same per-trial permutation seed, its own
//! [`DefenderNet`] whose detector and reputation state persists across
//! that cell's trials. Coverage is normalised per politeness profile
//! against an *undefended* reference run of the same scanner, so a cell
//! reads "fraction of what this scanner would have seen if nobody had
//! pushed back".
//!
//! Determinism: cells run in parallel threads but share one [`Telemetry`]
//! hub keyed by a per-cell origin index, and the hub's exports are
//! canonically ordered — two same-seed sweeps produce byte-identical
//! matrices and byte-identical telemetry JSONL (asserted by the
//! integration suite).

use crate::report::Table;
use originscan_netmodel::defend::{AggressionProfile, DefenderNet, DefenseStats};
use originscan_netmodel::{OriginId, Protocol, SimNet, World};
use originscan_scanner::engine::{run_scan_session, ScanConfig, ScanSession};
use originscan_scanner::error::ScanError;
use originscan_scanner::rate::rate_for_duration;
use originscan_scanner::resilience::AdaptivePolicy;
use originscan_telemetry::metrics::names;
use originscan_telemetry::{Scope, Telemetry, TelemetrySnapshot};
use std::fmt;

/// How the simulated campaign's trials are spaced on the defenders'
/// global clock, as a multiple of the per-trial scan duration. Slack
/// beyond 1.0 keeps the clock monotone even when backoff stretches a
/// trial past its nominal duration, and models the gap between scan days
/// that real blocklist entries have to survive.
pub const TRIAL_SPAN_MULT: f64 = 8.0;

/// One scanner posture: how fast it sends, how many source addresses it
/// owns, and whether it adapts when the network pushes back.
#[derive(Debug, Clone, PartialEq)]
pub struct PolitenessProfile {
    /// Profile name used in matrices and reports.
    pub name: &'static str,
    /// Multiplier on the rate that would finish the scan exactly in the
    /// configured trial duration.
    pub rate_mult: f64,
    /// Source-IP pool size (adaptive scanners rotate through it).
    pub source_ips: u16,
    /// Adaptive resilience controller (`None`: open-loop, paper style).
    pub adapt: Option<AdaptivePolicy>,
}

impl PolitenessProfile {
    /// Fast and oblivious: 4× the polite rate, one source, no feedback.
    pub fn aggressive() -> Self {
        Self {
            name: "aggressive",
            rate_mult: 4.0,
            source_ips: 1,
            adapt: None,
        }
    }

    /// The paper's scanner: paced to the trial duration, one source IP,
    /// open loop.
    pub fn baseline() -> Self {
        Self {
            name: "baseline",
            rate_mult: 1.0,
            source_ips: 1,
            adapt: None,
        }
    }

    /// Same pace as the baseline, but closes the loop: observes blocking
    /// signals and reacts with backoff, rotation, and deferral.
    pub fn adaptive() -> Self {
        Self {
            name: "adaptive",
            rate_mult: 1.0,
            source_ips: 8,
            adapt: Some(AdaptivePolicy {
                backoff_factor: 0.25,
                recovery_windows: 16,
                ..AdaptivePolicy::default()
            }),
        }
    }

    /// Slow and careful: half rate, a small pool, a hair-trigger
    /// controller that backs off hard and recovers reluctantly.
    pub fn stealth() -> Self {
        Self {
            name: "stealth",
            rate_mult: 0.5,
            source_ips: 4,
            adapt: Some(AdaptivePolicy {
                rst_signal_frac: 0.2,
                backoff_factor: 0.25,
                recovery_windows: 32,
                ..AdaptivePolicy::default()
            }),
        }
    }

    /// The sweep roster, rudest first.
    pub fn roster() -> Vec<Self> {
        vec![
            Self::aggressive(),
            Self::baseline(),
            Self::adaptive(),
            Self::stealth(),
        ]
    }
}

/// Configuration of one politeness × aggression sweep.
#[derive(Debug, Clone)]
pub struct AdversarialConfig {
    /// Protocol scanned in every cell.
    pub protocol: Protocol,
    /// Trials per cell; defender state persists across a cell's trials.
    pub trials: u8,
    /// Back-to-back SYN probes per address.
    pub probes: u8,
    /// Nominal per-trial scan duration in simulated seconds (the
    /// `rate_mult = 1` pace).
    pub duration_s: f64,
    /// Base permutation seed; trial `t` scans with `base_seed + t`,
    /// shared across cells so every cell walks the same address order.
    pub base_seed: u64,
    /// Scanner postures (matrix rows).
    pub politeness: Vec<PolitenessProfile>,
    /// Defender postures (matrix columns).
    pub aggression: Vec<AggressionProfile>,
}

impl Default for AdversarialConfig {
    fn default() -> Self {
        Self {
            protocol: Protocol::Http,
            trials: 2,
            probes: 2,
            duration_s: crate::experiment::TRIAL_DURATION_S,
            base_seed: 0xD15C0,
            politeness: PolitenessProfile::roster(),
            aggression: AggressionProfile::roster().to_vec(),
        }
    }
}

/// Why a sweep could not run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdversarialError {
    /// No politeness profiles, no aggression profiles, or zero trials.
    EmptyConfig,
    /// A cell's scan failed (only configuration errors are possible here:
    /// the sweep injects no faults).
    Scan {
        /// The failing cell's politeness row.
        politeness: &'static str,
        /// The failing cell's aggression column.
        aggression: &'static str,
        /// The failing trial.
        trial: u8,
        /// The underlying engine error.
        error: ScanError,
    },
}

impl fmt::Display for AdversarialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversarialError::EmptyConfig => write!(
                f,
                "adversarial sweep needs at least one politeness profile, one aggression profile, and one trial"
            ),
            AdversarialError::Scan {
                politeness,
                aggression,
                trial,
                error,
            } => write!(
                f,
                "cell ({politeness} × {aggression}) trial {trial} failed: {error}"
            ),
        }
    }
}

impl std::error::Error for AdversarialError {}

/// How hard the defenders ended up hitting one cell's scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// The defenders never tripped a detector.
    Unchallenged,
    /// Detections (and blocks) happened; the scanner did not react.
    Detected,
    /// The scanner saw the blocking and backed off / rotated.
    Throttled,
    /// The reputation store listed the scanner's origin outright.
    Listed,
}

impl fmt::Display for CellStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellStatus::Unchallenged => "clear",
            CellStatus::Detected => "detected",
            CellStatus::Throttled => "throttled",
            CellStatus::Listed => "listed",
        };
        write!(f, "{s}")
    }
}

/// One sweep cell's condensed outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Politeness row name.
    pub politeness: &'static str,
    /// Aggression column name.
    pub aggression: &'static str,
    /// Per-trial coverage relative to the same scanner undefended.
    pub coverage: Vec<f64>,
    /// Per-trial L7-success host counts.
    pub l7_successes: Vec<u64>,
    /// Defender-side counters accumulated over the cell's trials.
    pub defense: DefenseStats,
    /// Did the reputation store list this cell's origin?
    pub listed: bool,
    /// Scanner backoff transitions (adaptive cells only).
    pub backoffs: u64,
    /// Scanner backoff releases.
    pub recoveries: u64,
    /// Scanner source rotations.
    pub rotations: u64,
    /// Addresses parked for the tail pass.
    pub deferred: u64,
    /// The cell's summary verdict.
    pub status: CellStatus,
}

impl CellOutcome {
    /// Mean coverage over the cell's trials.
    pub fn mean_coverage(&self) -> f64 {
        if self.coverage.is_empty() {
            return 0.0;
        }
        self.coverage.iter().sum::<f64>() / self.coverage.len() as f64
    }
}

/// Results of one sweep: the cell matrix plus the shared telemetry
/// snapshot (detection/block/backoff timelines live there).
#[derive(Debug, Clone)]
pub struct AdversarialResults {
    cfg: AdversarialConfig,
    /// Row-major: `cells[pi * aggression.len() + ai]`.
    cells: Vec<CellOutcome>,
    /// Per-(politeness, trial) undefended L7-success counts.
    reference: Vec<Vec<u64>>,
    telemetry: TelemetrySnapshot,
}

impl AdversarialResults {
    /// The sweep's configuration.
    pub fn config(&self) -> &AdversarialConfig {
        &self.cfg
    }

    /// All cells, row-major over (politeness, aggression).
    pub fn cells(&self) -> &[CellOutcome] {
        &self.cells
    }

    /// The cell at politeness row `pi`, aggression column `ai`.
    pub fn cell(&self, pi: usize, ai: usize) -> &CellOutcome {
        &self.cells[pi * self.cfg.aggression.len() + ai]
    }

    /// Undefended reference L7-success count for `(politeness, trial)`.
    pub fn reference_l7(&self, pi: usize, trial: usize) -> u64 {
        self.reference[pi][trial]
    }

    /// The sweep's telemetry snapshot: per-cell scan timelines with the
    /// detection → block → backoff → recovery event sequence.
    pub fn telemetry(&self) -> &TelemetrySnapshot {
        &self.telemetry
    }

    /// The coverage matrix as TSV, 6 decimals, byte-deterministic.
    pub fn matrix_tsv(&self) -> String {
        let mut out = String::from("politeness");
        for a in &self.cfg.aggression {
            out.push('\t');
            out.push_str(a.name);
        }
        out.push('\n');
        for (pi, p) in self.cfg.politeness.iter().enumerate() {
            out.push_str(p.name);
            for ai in 0..self.cfg.aggression.len() {
                out.push_str(&format!("\t{:.6}", self.cell(pi, ai).mean_coverage()));
            }
            out.push('\n');
        }
        out
    }

    /// Render the sweep as a human-readable table: coverage plus the
    /// cell's verdict.
    pub fn render(&self) -> String {
        let mut headers = vec!["politeness".to_string()];
        headers.extend(self.cfg.aggression.iter().map(|a| a.name.to_string()));
        let mut t = Table::new(headers);
        for (pi, p) in self.cfg.politeness.iter().enumerate() {
            let mut row = vec![p.name.to_string()];
            for ai in 0..self.cfg.aggression.len() {
                let c = self.cell(pi, ai);
                row.push(format!("{:5.1}% {}", c.mean_coverage() * 100.0, c.status));
            }
            t.row(row);
        }
        t.render()
    }
}

/// The sweep runner, bound to a world.
#[derive(Debug, Clone)]
pub struct AdversarialSweep<'w> {
    world: &'w World,
    cfg: AdversarialConfig,
}

/// What one cell job produces before condensation.
struct CellRun {
    l7: Vec<u64>,
    defense: DefenseStats,
    listed: bool,
}

impl<'w> AdversarialSweep<'w> {
    /// Bind `cfg` to a world.
    pub fn new(world: &'w World, cfg: AdversarialConfig) -> Self {
        Self { world, cfg }
    }

    /// The scan configuration for one cell's trial.
    fn scan_config(&self, origin: u16, trial: u8, p: &PolitenessProfile) -> ScanConfig {
        let cfg = &self.cfg;
        let space = self.world.space();
        let mut c = ScanConfig::new(space, cfg.protocol, cfg.base_seed + u64::from(trial));
        c.origin = origin;
        c.trial = trial;
        c.probes = cfg.probes;
        c.rate_pps = rate_for_duration(space * u64::from(cfg.probes), cfg.duration_s) * p.rate_mult;
        c.adapt = p.adapt.clone();
        c.concurrent_origins = 1;
        c.source_ips = (0..p.source_ips.max(1))
            .map(|i| 0x0a00_0100u32 + u32::from(i))
            .collect();
        c
    }

    /// Run one cell: a fresh defender swarm, trials back to back on its
    /// global clock.
    fn run_cell(
        &self,
        net: &SimNet<'_>,
        hub: &Telemetry,
        origin: u16,
        p: &PolitenessProfile,
        a: AggressionProfile,
    ) -> Result<CellRun, AdversarialError> {
        let span_s = self.cfg.duration_s * TRIAL_SPAN_MULT;
        let defender = DefenderNet::new(net, self.world, a, span_s).with_telemetry(hub);
        let mut l7 = Vec::with_capacity(usize::from(self.cfg.trials));
        for t in 0..self.cfg.trials {
            let sc = self.scan_config(origin, t, p);
            let session = ScanSession {
                telemetry: Some(hub),
                ..ScanSession::default()
            };
            let out = run_scan_session(&defender, &sc, session).map_err(|error| {
                AdversarialError::Scan {
                    politeness: p.name,
                    aggression: a.name,
                    trial: t,
                    error,
                }
            })?;
            defender.flush_trial_metrics(Scope::new(self.cfg.protocol.name(), t, origin));
            l7.push(out.records.iter().filter(|r| r.l7_success()).count() as u64);
        }
        Ok(CellRun {
            l7,
            defense: defender.stats(),
            listed: defender.is_listed(origin),
        })
    }

    /// Run the full sweep. Cells (and each politeness profile's
    /// undefended reference run) execute in parallel threads over one
    /// telemetry hub; results are condensed in deterministic row-major
    /// order.
    pub fn run(&self) -> Result<AdversarialResults, AdversarialError> {
        let cfg = &self.cfg;
        if cfg.politeness.is_empty() || cfg.aggression.is_empty() || cfg.trials == 0 {
            return Err(AdversarialError::EmptyConfig);
        }
        let p_n = cfg.politeness.len();
        let a_n = cfg.aggression.len();
        let n_cells = p_n * a_n;
        // One origin index per cell, plus one per politeness row for the
        // undefended reference — all the same vantage, but each with its
        // own telemetry scope.
        let roster: Vec<OriginId> = vec![OriginId::Us1; n_cells + p_n];
        let net = SimNet::new(self.world, &roster, cfg.duration_s);
        let hub = Telemetry::new();
        let mut jobs: Vec<Option<Result<CellRun, AdversarialError>>> =
            (0..n_cells + p_n).map(|_| None).collect();
        std::thread::scope(|s| {
            for (idx, slot) in jobs.iter_mut().enumerate() {
                let net = &net;
                let hub = &hub;
                s.spawn(move || {
                    let origin = u16::try_from(idx).unwrap_or(u16::MAX);
                    let (p, a) = if idx < n_cells {
                        (&cfg.politeness[idx / a_n], cfg.aggression[idx % a_n])
                    } else {
                        // Reference job for politeness row `idx - n_cells`.
                        (&cfg.politeness[idx - n_cells], AggressionProfile::off())
                    };
                    *slot = Some(self.run_cell(net, hub, origin, p, a));
                });
            }
        });
        let mut runs: Vec<CellRun> = Vec::with_capacity(n_cells + p_n);
        for slot in jobs {
            match slot {
                Some(Ok(run)) => runs.push(run),
                Some(Err(e)) => return Err(e),
                // The scoped threads always fill their slot; this arm is
                // unreachable defensiveness.
                None => return Err(AdversarialError::EmptyConfig),
            }
        }
        let reference: Vec<Vec<u64>> = (0..p_n).map(|pi| runs[n_cells + pi].l7.clone()).collect();
        let snapshot = hub.into_snapshot();
        let cells = runs[..n_cells]
            .iter()
            .enumerate()
            .map(|(idx, run)| {
                let (pi, ai) = (idx / a_n, idx % a_n);
                let origin = u16::try_from(idx).unwrap_or(u16::MAX);
                let coverage = run
                    .l7
                    .iter()
                    .zip(&reference[pi])
                    .map(|(&got, &reference)| {
                        if reference == 0 {
                            // An empty reference means there was nothing
                            // to lose.
                            1.0
                        } else {
                            got as f64 / reference as f64
                        }
                    })
                    .collect();
                let counter_sum = |name: &'static str| -> u64 {
                    (0..cfg.trials)
                        .map(|t| snapshot.counter(Scope::new(cfg.protocol.name(), t, origin), name))
                        .sum()
                };
                let backoffs = counter_sum(names::ADAPT_BACKOFFS);
                let recoveries = counter_sum(names::ADAPT_RECOVERIES);
                let rotations = counter_sum(names::ADAPT_ROTATIONS);
                let deferred = counter_sum(names::ADAPT_DEFERRED_ADDRESSES);
                // Scanner-side reactions only count as "throttled" when a
                // defender actually pushed (a twitchy controller can back
                // off spuriously on natural density dips).
                let status = if run.listed {
                    CellStatus::Listed
                } else if run.defense.detections > 0 && (backoffs > 0 || rotations > 0) {
                    CellStatus::Throttled
                } else if run.defense.detections > 0 {
                    CellStatus::Detected
                } else {
                    CellStatus::Unchallenged
                };
                CellOutcome {
                    politeness: cfg.politeness[pi].name,
                    aggression: cfg.aggression[ai].name,
                    coverage,
                    l7_successes: run.l7.clone(),
                    defense: run.defense,
                    listed: run.listed,
                    backoffs,
                    recoveries,
                    rotations,
                    deferred,
                    status,
                }
            })
            .collect();
        Ok(AdversarialResults {
            cfg: cfg.clone(),
            cells,
            reference,
            telemetry: snapshot,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use originscan_netmodel::WorldConfig;

    fn quick_cfg() -> AdversarialConfig {
        AdversarialConfig {
            trials: 1,
            duration_s: 3_600.0,
            politeness: vec![PolitenessProfile::baseline(), PolitenessProfile::adaptive()],
            aggression: vec![AggressionProfile::off(), AggressionProfile::aggressive()],
            ..AdversarialConfig::default()
        }
    }

    #[test]
    fn empty_config_is_a_typed_error() {
        let world = WorldConfig::tiny(1).build();
        let cfg = AdversarialConfig {
            politeness: vec![],
            ..AdversarialConfig::default()
        };
        assert_eq!(
            AdversarialSweep::new(&world, cfg).run().unwrap_err(),
            AdversarialError::EmptyConfig
        );
        let cfg = AdversarialConfig {
            trials: 0,
            ..AdversarialConfig::default()
        };
        assert_eq!(
            AdversarialSweep::new(&world, cfg).run().unwrap_err(),
            AdversarialError::EmptyConfig
        );
    }

    #[test]
    fn bad_cell_config_is_reported_with_its_coordinates() {
        let world = WorldConfig::tiny(1).build();
        let mut p = PolitenessProfile::baseline();
        p.rate_mult = 0.0; // rate becomes zero: invalid.
        let cfg = AdversarialConfig {
            trials: 1,
            politeness: vec![p],
            aggression: vec![AggressionProfile::off()],
            ..AdversarialConfig::default()
        };
        let err = AdversarialSweep::new(&world, cfg).run().unwrap_err();
        match err {
            AdversarialError::Scan { politeness, .. } => assert_eq!(politeness, "baseline"),
            other => panic!("expected a Scan error, got {other}"),
        }
    }

    #[test]
    fn off_column_matches_reference() {
        let world = WorldConfig::tiny(3).build();
        let r = AdversarialSweep::new(&world, quick_cfg()).run().unwrap();
        // Defense off is the reference scanner's own world: coverage 1.
        for pi in 0..2 {
            assert_eq!(r.cell(pi, 0).coverage, vec![1.0], "row {pi}");
            assert_eq!(r.cell(pi, 0).l7_successes[0], r.reference_l7(pi, 0));
            assert_eq!(r.cell(pi, 0).status, CellStatus::Unchallenged);
        }
        // The reference found something, so the 1.0 is not vacuous.
        assert!(r.reference_l7(0, 0) > 0);
    }

    #[test]
    fn matrix_tsv_shape() {
        let world = WorldConfig::tiny(3).build();
        let r = AdversarialSweep::new(&world, quick_cfg()).run().unwrap();
        let tsv = r.matrix_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "politeness\toff\taggressive");
        assert!(lines[1].starts_with("baseline\t1.000000\t"));
        assert!(lines[2].starts_with("adaptive\t1.000000\t"));
        assert!(!r.render().is_empty());
    }

    #[test]
    fn rosters_are_consistent() {
        for p in PolitenessProfile::roster() {
            assert!(p.rate_mult > 0.0, "{}", p.name);
            assert!(p.source_ips >= 1, "{}", p.name);
        }
        let cfg = AdversarialConfig::default();
        assert_eq!(cfg.politeness.len(), 4);
        assert_eq!(cfg.aggression.len(), 4);
    }
}
