//! AS-level distribution of long-term inaccessibility (Figs 4, 5).

use crate::classify::{classify, Class};
use crate::results::Panel;
use originscan_netmodel::World;
use std::collections::BTreeMap;

/// Long-term inaccessible hosts of one origin, grouped by AS.
/// Returns `(as_name, lost_hosts, as_ground_truth_hosts)`, sorted by
/// `lost_hosts` descending.
pub fn longterm_by_as(
    world: &World,
    panel: &Panel,
    origin_idx: usize,
) -> Vec<(String, usize, usize)> {
    let mut lost: BTreeMap<u32, usize> = BTreeMap::new();
    let mut total: BTreeMap<u32, usize> = BTreeMap::new();
    for u in 0..panel.len() {
        let ai = world.as_index_of(panel.addrs[u]);
        *total.entry(ai).or_default() += 1;
        if classify(panel, origin_idx, u) == Class::LongTerm {
            *lost.entry(ai).or_default() += 1;
        }
    }
    let mut v: Vec<(String, usize, usize)> = lost
        .into_iter()
        .map(|(ai, l)| (world.ases[ai as usize].name.clone(), l, total[&ai]))
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// Fig 4's headline number: the share of an origin's long-term
/// inaccessible hosts held by its top `k` ASes (the paper: 67 % of
/// Censys's missing HTTP hosts sit in just three ASes).
pub fn top_k_concentration(by_as: &[(String, usize, usize)], k: usize) -> f64 {
    let total: usize = by_as.iter().map(|(_, l, _)| l).sum();
    if total == 0 {
        return 0.0;
    }
    let top: usize = by_as.iter().take(k).map(|(_, l, _)| l).sum();
    top as f64 / total as f64
}

/// Fig 5: per-origin counts of ASes that are ≥ 50 %, ≥ 75 %, and 100 %
/// long-term inaccessible. Only ASes with at least `min_hosts` ground
/// truth hosts are counted (the paper requires ≥ 2 consistent hosts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LostAsCounts {
    /// ASes fully (100 %) inaccessible.
    pub full: usize,
    /// ASes at least 75 % inaccessible.
    pub at_least_75: usize,
    /// ASes at least 50 % inaccessible.
    pub at_least_50: usize,
}

/// Compute Fig 5 for one origin.
pub fn lost_as_counts(
    world: &World,
    panel: &Panel,
    origin_idx: usize,
    min_hosts: usize,
) -> LostAsCounts {
    let by_as = longterm_by_as(world, panel, origin_idx);
    let mut out = LostAsCounts::default();
    for (_, lost, total) in by_as {
        if total < min_hosts {
            continue;
        }
        let f = lost as f64 / total as f64;
        if f >= 1.0 {
            out.full += 1;
        }
        if f >= 0.75 {
            out.at_least_75 += 1;
        }
        if f >= 0.5 {
            out.at_least_50 += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentConfig};
    use originscan_netmodel::{OriginId, Protocol, WorldConfig};

    fn panel(world: &World) -> Panel {
        let cfg = ExperimentConfig {
            origins: OriginId::MAIN.to_vec(),
            protocols: vec![Protocol::Http],
            trials: 3,
            ..Default::default()
        };
        Experiment::new(world, cfg)
            .run()
            .unwrap()
            .panel(Protocol::Http)
    }

    #[test]
    fn censys_losses_concentrated_in_blockers() {
        let world = WorldConfig::small(41).build();
        let p = panel(&world);
        let cen = p
            .origins
            .iter()
            .position(|&o| o == OriginId::Censys)
            .unwrap();
        let by_as = longterm_by_as(&world, &p, cen);
        assert!(!by_as.is_empty());
        // DXTL / EGI / Enzu should rank at the very top.
        let top3: Vec<&str> = by_as.iter().take(3).map(|(n, _, _)| n.as_str()).collect();
        for name in ["DXTL Tseung Kwan O Service", "Enzu", "EGI Hosting"] {
            assert!(top3.contains(&name), "{name} not in top3: {top3:?}");
        }
        let conc = top_k_concentration(&by_as, 3);
        assert!((0.3..0.95).contains(&conc), "top-3 concentration {conc}");
        // Academic origins' losses are more evenly spread.
        let jp = p
            .origins
            .iter()
            .position(|&o| o == OriginId::Japan)
            .unwrap();
        let jp_by_as = longterm_by_as(&world, &p, jp);
        let jp_conc = top_k_concentration(&jp_by_as, 3);
        assert!(jp_conc < conc, "JP concentration {jp_conc} vs CEN {conc}");
    }

    #[test]
    fn brazil_loses_most_full_ases() {
        // Fig 5: Brazil suffers the largest number of 100% inaccessible
        // ASes (US finance/health blocking + Eastern-European hosters).
        let world = WorldConfig::small(41).build();
        let p = panel(&world);
        let counts: Vec<LostAsCounts> = (0..p.origins.len())
            .map(|oi| lost_as_counts(&world, &p, oi, 2))
            .collect();
        let br = p
            .origins
            .iter()
            .position(|&o| o == OriginId::Brazil)
            .unwrap();
        let us64 = p.origins.iter().position(|&o| o == OriginId::Us64).unwrap();
        assert!(
            counts[br].full > counts[us64].full,
            "BR {:?} vs US64 {:?}",
            counts[br],
            counts[us64]
        );
        // Monotone: full ⊆ 75% ⊆ 50%.
        for c in &counts {
            assert!(c.full <= c.at_least_75 && c.at_least_75 <= c.at_least_50);
        }
    }

    #[test]
    fn concentration_of_empty_is_zero() {
        assert_eq!(top_k_concentration(&[], 3), 0.0);
    }
}
