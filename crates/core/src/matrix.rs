//! The per-trial ground-truth matrix.
//!
//! §2 "Limitations": *ground truth* for a trial is the set of hosts that
//! completed an application-layer handshake with **any** origin in that
//! trial. [`TrialMatrix`] stores that host list (sorted), each host's scan
//! hour (the same for every origin, because the scanners share a seed),
//! and the packed outcome of every origin's attempt.

use crate::experiment::{OriginRun, RunStatus};
use crate::outcome::HostOutcome;
use originscan_netmodel::{OriginId, Protocol, World};
use originscan_scanner::engine::ScanOutput;
use originscan_store::ScanSet;

/// Hour grid of the paper's burst analysis (21-hour trials).
pub const SCAN_HOURS: u8 = 21;

/// Condensed results of one (protocol, trial) across all origins.
#[derive(Debug, Clone)]
pub struct TrialMatrix {
    /// Protocol scanned.
    pub protocol: Protocol,
    /// Trial index (0-based).
    pub trial: u8,
    /// Ground-truth addresses, sorted ascending.
    pub addrs: Vec<u32>,
    /// Scan hour (0..21) of each ground-truth host.
    pub hour: Vec<u8>,
    /// `outcomes[origin][host_idx]`, aligned with the experiment's origin
    /// roster and `addrs`.
    pub outcomes: Vec<Vec<HostOutcome>>,
    /// Per-origin supervised run status, aligned with the roster. Failed
    /// origins contribute nothing to ground truth and read all-MISSED.
    pub statuses: Vec<RunStatus>,
    /// Ground truth as a compressed bitmap (same members as `addrs`).
    pub gt_set: ScanSet,
    /// Per-origin L7-success sets, aligned with the roster.
    pub seen_sets: Vec<ScanSet>,
    /// Per-origin single-probe success sets, aligned with the roster.
    pub one_probe_sets: Vec<ScanSet>,
}

impl TrialMatrix {
    /// Condense raw scan outputs into a matrix (every origin completed).
    pub fn build(
        world: &World,
        protocol: Protocol,
        trial: u8,
        origins: &[OriginId],
        outputs: &[ScanOutput],
        duration_s: f64,
    ) -> TrialMatrix {
        let runs: Vec<OriginRun> = outputs
            .iter()
            .map(|out| OriginRun {
                status: RunStatus::Completed,
                attempts: 1,
                sim_backoff_s: 0.0,
                output: Some(out.clone()),
            })
            .collect();
        Self::build_supervised(world, protocol, trial, origins, &runs, duration_s)
    }

    /// Condense supervised runs into a matrix, tolerating partial origin
    /// sets: a run without output (terminal failure) is excluded from the
    /// ground-truth union and its outcome row stays all-MISSED.
    pub fn build_supervised(
        _world: &World,
        protocol: Protocol,
        trial: u8,
        origins: &[OriginId],
        runs: &[OriginRun],
        duration_s: f64,
    ) -> TrialMatrix {
        debug_assert_eq!(origins.len(), runs.len());
        // `zip` below keeps indices aligned even if the caller hands us a
        // short run list, so a length mismatch cannot mis-attribute rows.
        let n = origins.len().min(runs.len());
        let statuses: Vec<RunStatus> = runs
            .iter()
            .map(|r| r.status)
            .chain(std::iter::repeat(RunStatus::Completed))
            .take(origins.len())
            .collect();
        // Ground truth: union of L7-successful addresses of surviving runs.
        let mut gt: Vec<u32> = Vec::new();
        for run in runs.iter().take(n) {
            if let Some(out) = &run.output {
                gt.extend(
                    out.records
                        .iter()
                        .filter(|r| r.l7_success())
                        .map(|r| r.addr),
                );
            }
        }
        gt.sort_unstable();
        gt.dedup();
        let gt_set = ScanSet::from_sorted(&gt);

        // Scan hour per host: identical across origins (shared seed), so
        // take it from whichever origin recorded a response first. The
        // sorted ground-truth list doubles as the index (binary search),
        // so no hash map — and no iteration-order hazard — is involved.
        let mut hour = vec![u8::MAX; gt.len()];
        let mut outcomes = vec![vec![HostOutcome::MISSED; gt.len()]; origins.len()];
        for (oi, run) in runs.iter().enumerate().take(n) {
            let Some(out) = &run.output else { continue };
            for r in &out.records {
                if let Ok(i) = gt.binary_search(&r.addr) {
                    outcomes[oi][i] = HostOutcome::from_record(r);
                    if hour[i] == u8::MAX {
                        let h = (r.response_time_s / duration_s * f64::from(SCAN_HOURS))
                            .floor()
                            .min(f64::from(SCAN_HOURS - 1)) as u8;
                        hour[i] = h;
                    }
                }
            }
        }
        // Hosts only reached by origins whose record lacked a timestamped
        // response never happen (being in GT means someone succeeded), but
        // guard anyway.
        for h in &mut hour {
            if *h == u8::MAX {
                *h = 0;
            }
        }
        // Per-origin success sets: built in ascending host-index order, so
        // the addresses arrive pre-sorted and the bitmaps build in one pass.
        let seen_sets: Vec<ScanSet> = outcomes
            .iter()
            .map(|row| {
                ScanSet::from_sorted(
                    &row.iter()
                        .enumerate()
                        .filter(|(_, o)| o.l7_success())
                        .map(|(i, _)| gt[i])
                        .collect::<Vec<u32>>(),
                )
            })
            .collect();
        let one_probe_sets: Vec<ScanSet> = outcomes
            .iter()
            .map(|row| {
                ScanSet::from_sorted(
                    &row.iter()
                        .enumerate()
                        .filter(|(_, o)| o.one_probe_success())
                        .map(|(i, _)| gt[i])
                        .collect::<Vec<u32>>(),
                )
            })
            .collect();
        TrialMatrix {
            protocol,
            trial,
            addrs: gt,
            hour,
            outcomes,
            statuses,
            gt_set,
            seen_sets,
            one_probe_sets,
        }
    }

    /// True when every origin in this trial completed cleanly.
    pub fn all_clean(&self) -> bool {
        self.statuses.iter().all(RunStatus::is_clean)
    }

    /// Number of ground-truth hosts.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when the trial saw no hosts at all.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Index of `addr` in the ground-truth list, answered by the bitmap's
    /// rank kernel (`rank(addr) - 1` when the address is a member).
    pub fn index_of(&self, addr: u32) -> Option<usize> {
        if self.gt_set.contains(addr) {
            Some((self.gt_set.rank(addr) - 1) as usize)
        } else {
            None
        }
    }

    /// Hosts an origin completed the L7 handshake with (bitmap popcount).
    pub fn seen_count(&self, origin_idx: usize) -> usize {
        self.seen_sets[origin_idx].cardinality() as usize
    }

    /// Hosts an origin would have seen with a single-probe scan.
    pub fn seen_count_one_probe(&self, origin_idx: usize) -> usize {
        self.one_probe_sets[origin_idx].cardinality() as usize
    }

    /// Iterate `(host_idx, addr, outcome)` for one origin.
    pub fn iter_origin(
        &self,
        origin_idx: usize,
    ) -> impl Iterator<Item = (usize, u32, HostOutcome)> + '_ {
        self.outcomes[origin_idx]
            .iter()
            .enumerate()
            .map(move |(i, &o)| (i, self.addrs[i], o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use originscan_netmodel::WorldConfig;
    use originscan_scanner::engine::{HostScanRecord, ScanSummary};
    use originscan_scanner::zgrab::{L7Detail, L7Outcome};

    fn rec(addr: u32, mask: u8, ok: bool, t: f64) -> HostScanRecord {
        HostScanRecord {
            addr,
            synack_mask: mask,
            got_rst: false,
            response_time_s: t,
            l7: if ok {
                L7Outcome::Success(L7Detail::Http { code: 200 })
            } else {
                L7Outcome::Timeout
            },
            l7_attempts: 1,
        }
    }

    fn output(records: Vec<HostScanRecord>) -> ScanOutput {
        ScanOutput {
            records,
            summary: ScanSummary::default(),
        }
    }

    #[test]
    fn ground_truth_is_union_of_l7_successes() {
        let world = WorldConfig::tiny(1).build();
        let o1 = output(vec![
            rec(10, 0b11, true, 100.0),
            rec(20, 0b01, false, 200.0),
        ]);
        let o2 = output(vec![rec(20, 0b11, true, 210.0), rec(30, 0b11, true, 300.0)]);
        let m = TrialMatrix::build(
            &world,
            Protocol::Http,
            0,
            &[OriginId::Us1, OriginId::Japan],
            &[o1, o2],
            75_600.0,
        );
        assert_eq!(m.addrs, vec![10, 20, 30]);
        // Origin 0 saw 10; L4-responded to 20 but failed L7; missed 30.
        assert_eq!(m.seen_count(0), 1);
        assert_eq!(m.seen_count(1), 2);
        let o0_20 = m.outcomes[0][m.index_of(20).unwrap()];
        assert!(o0_20.l4_responsive() && !o0_20.l7_success());
        let o0_30 = m.outcomes[0][m.index_of(30).unwrap()];
        assert_eq!(o0_30, HostOutcome::MISSED);
    }

    #[test]
    fn hours_derived_from_response_time() {
        let world = WorldConfig::tiny(1).build();
        let dur = 75_600.0;
        let o1 = output(vec![
            rec(5, 0b11, true, 0.0),
            rec(6, 0b11, true, dur * 0.5),
            rec(7, 0b11, true, dur * 0.999),
        ]);
        let m = TrialMatrix::build(&world, Protocol::Http, 0, &[OriginId::Us1], &[o1], dur);
        assert_eq!(m.hour, vec![0, 10, 20]);
    }

    #[test]
    fn failed_origin_excluded_from_ground_truth() {
        use crate::experiment::FailCause;
        let world = WorldConfig::tiny(1).build();
        let ok = OriginRun {
            status: RunStatus::Completed,
            attempts: 1,
            sim_backoff_s: 0.0,
            output: Some(output(vec![rec(10, 0b11, true, 100.0)])),
        };
        let dead = OriginRun {
            status: RunStatus::Failed {
                cause: FailCause::Killed,
            },
            attempts: 3,
            sim_backoff_s: 180.0,
            output: None,
        };
        let m = TrialMatrix::build_supervised(
            &world,
            Protocol::Http,
            0,
            &[OriginId::Us1, OriginId::Japan],
            &[ok, dead],
            75_600.0,
        );
        assert_eq!(m.addrs, vec![10]);
        assert_eq!(m.seen_count(0), 1);
        assert_eq!(m.seen_count(1), 0, "failed origin reads all-MISSED");
        assert!(!m.all_clean());
        assert!(m.statuses[0].is_clean());
    }

    #[test]
    fn empty_outputs_empty_matrix() {
        let world = WorldConfig::tiny(1).build();
        let m = TrialMatrix::build(
            &world,
            Protocol::Ssh,
            1,
            &[OriginId::Us1],
            &[output(vec![])],
            75_600.0,
        );
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }
}
