//! Plain-text table rendering for the reproduction harness.

/// A simple right-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // First column left-aligned, the rest right-aligned.
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", c, w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// Format a fraction as a percentage with two decimals.
pub fn pct2(f: f64) -> String {
    format!("{:.2}%", f * 100.0)
}

/// Format a count with thousands separators.
pub fn count(n: usize) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["AS", "lost", "pct"]);
        t.row(["Telecom Italia", "57000", "53.7"]);
        t.row(["Akamai", "97", "2.1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("AS") && lines[0].contains("pct"));
        assert!(lines[2].starts_with("Telecom Italia"));
        // Right alignment: the numbers end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn row_padding() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only-one"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.9634), "96.3%");
        assert_eq!(pct2(0.00082), "0.08%");
        assert_eq!(count(58141932), "58,141,932");
        assert_eq!(count(5), "5");
        assert_eq!(count(1000), "1,000");
    }
}
