//! §6: SSH-specific behaviour — Alibaba's temporal blocking (Fig 12),
//! the retry experiment (Fig 13), and the missing-host cause breakdown
//! (Fig 14).

use crate::matrix::{TrialMatrix, SCAN_HOURS};
use crate::outcome::FailKind;
use crate::results::Panel;
use originscan_netmodel::asn::AsTags;
use originscan_netmodel::{OriginId, Protocol, SimNet, World};
use originscan_scanner::target::L7Ctx;
use originscan_scanner::zgrab;

/// Fig 12: hourly fraction of an AS's scanned SSH hosts that answered the
/// TCP handshake and then RST — the Alibaba signature.
pub fn hourly_rst_fraction(
    world: &World,
    matrix: &TrialMatrix,
    origin_idx: usize,
    as_name: &str,
) -> Vec<f64> {
    let Some(asr) = world.as_by_name(as_name) else {
        return Vec::new();
    };
    let mut rst = vec![0.0f64; usize::from(SCAN_HOURS)];
    let mut total = vec![0.0f64; usize::from(SCAN_HOURS)];
    for (i, &addr) in matrix.addrs.iter().enumerate() {
        if world.as_index_of(addr) != asr.index {
            continue;
        }
        let h = usize::from(matrix.hour[i]);
        total[h] += 1.0;
        if matrix.outcomes[origin_idx][i].fail_kind() == FailKind::ClosedRst {
            rst[h] += 1.0;
        }
    }
    rst.iter()
        .zip(&total)
        .map(|(r, t)| if *t == 0.0 { 0.0 } else { r / t })
        .collect()
}

/// Cause attribution for missed SSH host-trials (Fig 14). Attribution is
/// from *observables*, as in the paper: RSTs inside Alibaba's networks
/// after its detection signature → temporal blocking; explicit closes
/// elsewhere → probabilistic (MaxStartups-style) blocking; the rest is
/// transient/other loss.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SshMissBreakdown {
    /// Missed via Alibaba-style network-wide RST.
    pub temporal_blocking: usize,
    /// Missed via explicit close (RST/FIN) outside Alibaba.
    pub probabilistic_blocking: usize,
    /// Missed silently or by timeout.
    pub other: usize,
}

impl SshMissBreakdown {
    /// Total missed host-trials.
    pub fn total(&self) -> usize {
        self.temporal_blocking + self.probabilistic_blocking + self.other
    }
}

/// Compute Fig 14 for one origin in one trial.
pub fn ssh_miss_breakdown(
    world: &World,
    matrix: &TrialMatrix,
    origin_idx: usize,
) -> SshMissBreakdown {
    assert_eq!(matrix.protocol, Protocol::Ssh);
    let mut out = SshMissBreakdown::default();
    for (i, &addr) in matrix.addrs.iter().enumerate() {
        let o = matrix.outcomes[origin_idx][i];
        if o.l7_success() {
            continue;
        }
        let in_alibaba = world.as_of(addr).tags.has(AsTags::ALIBABA_SSH);
        match o.fail_kind() {
            FailKind::ClosedRst if in_alibaba => out.temporal_blocking += 1,
            FailKind::ClosedRst | FailKind::ClosedFin => out.probabilistic_blocking += 1,
            _ => out.other += 1,
        }
    }
    out
}

/// Fraction of transiently missed hosts that closed explicitly, vs
/// dropped (§6 compares SSH's 57 % explicit closes to HTTP(S)'s 70 %
/// drops), computed over one origin's misses in one trial, excluding
/// Alibaba.
pub fn explicit_close_fraction(world: &World, matrix: &TrialMatrix, origin_idx: usize) -> f64 {
    let mut closes = 0usize;
    let mut misses = 0usize;
    for (i, &addr) in matrix.addrs.iter().enumerate() {
        let o = matrix.outcomes[origin_idx][i];
        if o.l7_success() || world.as_of(addr).tags.has(AsTags::ALIBABA_SSH) {
            continue;
        }
        misses += 1;
        if o.explicit_close() {
            closes += 1;
        }
    }
    if misses == 0 {
        0.0
    } else {
        closes as f64 / misses as f64
    }
}

/// One row of the Fig 13 retry experiment: coverage of one AS's
/// *responding* SSH hosts as the handshake retry budget grows.
#[derive(Debug, Clone)]
pub struct RetrySweep {
    /// AS display name.
    pub as_name: String,
    /// `success_fraction[k]`: fraction completing with ≤ k retries.
    pub success_fraction: Vec<f64>,
}

/// Rerun the §6 follow-up: from one origin, iteratively contact every SSH
/// host in an AS with an increasing retry budget.
///
/// "Responding IPs" are hosts that either complete the handshake or
/// explicitly close — i.e. the machine is demonstrably there.
pub fn retry_sweep(
    world: &World,
    origin: OriginId,
    as_name: &str,
    max_retries: u8,
    trial: u8,
) -> Option<RetrySweep> {
    let asr = world.as_by_name(as_name)?;
    let origins = [origin];
    let duration = crate::experiment::TRIAL_DURATION_S;
    let net = SimNet::new(world, &origins, duration);
    let lo = asr.first_slash24 * 256;
    let hi = lo + asr.n_slash24 * 256;
    let hosts: Vec<u32> = world
        .hosts(Protocol::Ssh)
        .iter()
        .copied()
        .filter(|&a| a >= lo && a < hi && world.alive(Protocol::Ssh, a, trial))
        .collect();
    if hosts.is_empty() {
        return None;
    }
    let mut fractions = Vec::with_capacity(usize::from(max_retries) + 1);
    for retries in 0..=max_retries {
        let mut responding = 0usize;
        let mut succeeded = 0usize;
        for &addr in &hosts {
            let ctx = L7Ctx {
                origin: 0,
                src_ip: 0x0a00_0001,
                dst: addr,
                protocol: Protocol::Ssh,
                time_s: 100.0, // early in the scan: before Alibaba triggers
                trial,
                attempt: 0,
                concurrent_origins: 1,
            };
            let result = zgrab::grab(&net, ctx, retries);
            match result.outcome {
                zgrab::L7Outcome::Success(_) => {
                    responding += 1;
                    succeeded += 1;
                }
                zgrab::L7Outcome::ConnClosed(_) => responding += 1,
                _ => {}
            }
        }
        fractions.push(if responding == 0 {
            0.0
        } else {
            succeeded as f64 / responding as f64
        });
    }
    Some(RetrySweep {
        as_name: as_name.to_string(),
        success_fraction: fractions,
    })
}

/// Identify the `n` ASes with the most transiently missed SSH hosts (the
/// paper's retry-experiment candidates), by name.
pub fn top_transient_ssh_ases(world: &World, panel: &Panel, n: usize) -> Vec<String> {
    let by_as = crate::transient::transient_by_as(world, panel);
    let mut v: Vec<(String, usize)> = by_as
        .into_iter()
        .map(|a| {
            let total: usize = a.missed.iter().sum();
            (a.as_name, total)
        })
        .collect();
    v.sort_by_key(|x| std::cmp::Reverse(x.1));
    v.into_iter().take(n).map(|(name, _)| name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentConfig};
    use crate::results::ExperimentResults;
    use originscan_netmodel::WorldConfig;

    fn run(world: &World) -> ExperimentResults<'_> {
        let cfg = ExperimentConfig {
            origins: OriginId::MAIN.to_vec(),
            protocols: vec![Protocol::Ssh],
            trials: 3,
            ..Default::default()
        };
        Experiment::new(world, cfg).run().unwrap()
    }

    #[test]
    fn alibaba_rst_signature_visible_after_detection() {
        let world = WorldConfig::small(59).build();
        let r = run(&world);
        let m = r.matrix(Protocol::Ssh, 0);
        // Single-IP origin: RST fraction near zero early, near one late.
        let series = hourly_rst_fraction(&world, m, 0, "HZ Alibaba Advertising");
        assert_eq!(series.len(), 21);
        let early = series[..10].iter().sum::<f64>() / 10.0;
        let late = series[18..].iter().sum::<f64>() / 3.0;
        assert!(early < 0.2, "early RST fraction {early}");
        assert!(late > 0.6, "late RST fraction {late}");
        // US64 evades: flat low series.
        let us64 = r.origin_index(OriginId::Us64);
        let series64 = hourly_rst_fraction(&world, m, us64, "HZ Alibaba Advertising");
        let max64 = series64.iter().cloned().fold(0.0, f64::max);
        assert!(max64 < 0.4, "US64 max hourly RST {max64}");
    }

    #[test]
    fn breakdown_attributes_majority_to_ssh_mechanisms() {
        // Fig 14: probabilistic + temporal blocking make up over half of
        // missing SSH hosts.
        let world = WorldConfig::small(59).build();
        let r = run(&world);
        // Trial 2 (index 1): Alibaba's detection typically fires earlier
        // than trial 1's two-thirds point, so its share is representative.
        let m = r.matrix(Protocol::Ssh, 1);
        let jp = r.origin_index(OriginId::Japan);
        let b = ssh_miss_breakdown(&world, m, jp);
        assert!(b.total() > 0);
        let mech = b.temporal_blocking + b.probabilistic_blocking;
        assert!(
            mech * 2 > b.total(),
            "mechanisms {mech} of {} missed",
            b.total()
        );
        assert!(b.probabilistic_blocking > 0 && b.temporal_blocking > 0);
    }

    #[test]
    fn ssh_misses_close_explicitly_more_than_http() {
        let world = WorldConfig::small(59).build();
        let cfg = ExperimentConfig {
            origins: vec![OriginId::Us1, OriginId::Japan, OriginId::Germany],
            protocols: vec![Protocol::Ssh, Protocol::Http],
            trials: 1,
            ..Default::default()
        };
        let r = Experiment::new(&world, cfg).run().unwrap();
        let ssh = explicit_close_fraction(&world, r.matrix(Protocol::Ssh, 0), 0);
        let http = explicit_close_fraction(&world, r.matrix(Protocol::Http, 0), 0);
        assert!(ssh > http, "SSH {ssh} vs HTTP {http}");
        assert!(ssh > 0.3, "SSH explicit-close fraction {ssh}");
    }

    #[test]
    fn retry_sweep_monotone_and_effective() {
        let world = WorldConfig::small(59).build();
        let sweep = retry_sweep(&world, OriginId::Us1, "Psychz Networks", 8, 0)
            .expect("Psychz has SSH hosts");
        assert_eq!(sweep.success_fraction.len(), 9);
        // Non-decreasing within noise (exact monotone by construction:
        // success within k retries implies success within k+1).
        for w in sweep.success_fraction.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "{:?}", sweep.success_fraction);
        }
        let gain = sweep.success_fraction[8] - sweep.success_fraction[0];
        assert!(gain > 0.1, "retries gained only {gain}");
        assert!(
            sweep.success_fraction[8] > 0.85,
            "8 retries should reach ~90%"
        );
    }

    #[test]
    fn top_transient_ases_nonempty() {
        let world = WorldConfig::small(59).build();
        let r = run(&world);
        let panel = r.panel(Protocol::Ssh);
        let top = top_transient_ssh_ases(&world, &panel, 10);
        assert_eq!(top.len(), 10);
    }
}
