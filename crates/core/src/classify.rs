//! The §3 missing-host taxonomy: transient vs long-term vs unknown, and
//! host-level vs network-level.
//!
//! * **Transiently inaccessible** (origin, host): the host was missed by
//!   the origin in some trial while another origin reached it, *and* the
//!   origin reached it in a different trial.
//! * **Long-term inaccessible**: missed by the origin in every trial the
//!   host appeared in (≥ 2 trials).
//! * **Unknown**: the host appeared in only one trial, so a miss cannot
//!   be distinguished from churn.
//!
//! The network split aggregates by /24: a /24 with ≥ 2 ground-truth hosts
//! whose hosts behave *consistently* for an origin counts as a single
//! network-level unit; anything else is host-level.

use crate::results::Panel;
use originscan_netmodel::World;
use std::collections::BTreeMap;

/// Per-(origin, host) accessibility class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Seen in every trial the host was present.
    Accessible,
    /// Missed somewhere, seen somewhere else.
    Transient,
    /// Never seen although present in ≥ 2 trials.
    LongTerm,
    /// Present in only one trial and missed there.
    Unknown,
}

/// Classify one (origin, union-host) pair.
pub fn classify(panel: &Panel, origin_idx: usize, u: usize) -> Class {
    let present = panel.present_trials(u);
    let seen = panel.seen_trials(origin_idx, u);
    debug_assert!(present > 0);
    if seen == present {
        Class::Accessible
    } else if present == 1 {
        Class::Unknown
    } else if seen == 0 {
        Class::LongTerm
    } else {
        Class::Transient
    }
}

/// Aggregate classification counts for one origin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Fully accessible hosts.
    pub accessible: usize,
    /// Transiently missed hosts.
    pub transient: usize,
    /// Long-term inaccessible hosts.
    pub long_term: usize,
    /// Unknown (single-trial) missed hosts.
    pub unknown: usize,
}

impl ClassCounts {
    /// Total union hosts.
    pub fn total(&self) -> usize {
        self.accessible + self.transient + self.long_term + self.unknown
    }

    /// Total missing (non-accessible) hosts.
    pub fn missing(&self) -> usize {
        self.transient + self.long_term + self.unknown
    }
}

/// Count classes for every origin.
pub fn class_counts(panel: &Panel) -> Vec<ClassCounts> {
    let mut out = vec![ClassCounts::default(); panel.origins.len()];
    for (oi, counts) in out.iter_mut().enumerate() {
        for u in 0..panel.len() {
            match classify(panel, oi, u) {
                Class::Accessible => counts.accessible += 1,
                Class::Transient => counts.transient += 1,
                Class::LongTerm => counts.long_term += 1,
                Class::Unknown => counts.unknown += 1,
            }
        }
    }
    out
}

/// The host/network breakdown of missing hosts (Fig 2's bar segments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostNetworkSplit {
    /// Missing hosts living in /24s that miss *consistently* (network
    /// units with ≥ 2 ground-truth hosts, all same class).
    pub network_hosts: usize,
    /// Missing hosts attributable to individual-host behaviour.
    pub individual_hosts: usize,
}

/// Split one origin's hosts of class `class` into network- vs host-level.
pub fn host_network_split(
    world: &World,
    panel: &Panel,
    origin_idx: usize,
    class: Class,
) -> HostNetworkSplit {
    // Group union hosts by /24.
    let mut by_s24: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for u in 0..panel.len() {
        by_s24
            .entry(world.s24_of(panel.addrs[u]))
            .or_default()
            .push(u);
    }
    let mut split = HostNetworkSplit::default();
    for (_, hosts) in by_s24 {
        let classes: Vec<Class> = hosts
            .iter()
            .map(|&u| classify(panel, origin_idx, u))
            .collect();
        let matching = classes.iter().filter(|&&c| c == class).count();
        if matching == 0 {
            continue;
        }
        let consistent = hosts.len() >= 2 && classes.iter().all(|&c| c == classes[0]);
        if consistent {
            split.network_hosts += matching;
        } else {
            split.individual_hosts += matching;
        }
    }
    split
}

/// Per-trial missing-host breakdown (one bar of Fig 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrialBreakdown {
    /// Hosts missed in this trial that are transient overall.
    pub transient: usize,
    /// Hosts missed in this trial that are long-term inaccessible.
    pub long_term: usize,
    /// Hosts missed in this trial that are unknown.
    pub unknown: usize,
}

impl TrialBreakdown {
    /// All hosts this origin missed in the trial.
    pub fn total(&self) -> usize {
        self.transient + self.long_term + self.unknown
    }
}

/// Breakdown of the hosts `origin` missed in `trial` (present in that
/// trial's ground truth but not seen by the origin).
pub fn trial_breakdown(panel: &Panel, origin_idx: usize, trial: u8) -> TrialBreakdown {
    let bit = 1u8 << trial;
    let mut out = TrialBreakdown::default();
    for u in 0..panel.len() {
        if panel.present[u] & bit == 0 || panel.seen[origin_idx][u] & bit != 0 {
            continue;
        }
        match classify(panel, origin_idx, u) {
            Class::Accessible => unreachable!("missed in a trial yet fully accessible"),
            Class::Transient => out.transient += 1,
            Class::LongTerm => out.long_term += 1,
            Class::Unknown => out.unknown += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentConfig};
    use originscan_netmodel::{OriginId, Protocol, WorldConfig};

    fn make_panel(world: &World) -> Panel {
        let cfg = ExperimentConfig {
            origins: vec![OriginId::Australia, OriginId::Us1, OriginId::Censys],
            protocols: vec![Protocol::Http],
            trials: 3,
            ..Default::default()
        };
        Experiment::new(world, cfg)
            .run()
            .unwrap()
            .panel(Protocol::Http)
    }

    #[test]
    fn classes_partition_hosts() {
        let world = WorldConfig::tiny(17).build();
        let panel = make_panel(&world);
        let counts = class_counts(&panel);
        for c in &counts {
            assert_eq!(c.total(), panel.len());
        }
        // Every class occurs somewhere in a 3-origin tiny world.
        let any_transient = counts.iter().any(|c| c.transient > 0);
        let any_longterm = counts.iter().any(|c| c.long_term > 0);
        let any_unknown = counts.iter().any(|c| c.unknown > 0);
        assert!(any_transient && any_longterm && any_unknown);
    }

    #[test]
    fn censys_has_more_longterm_than_us() {
        let world = WorldConfig::small(17).build();
        let panel = make_panel(&world);
        let counts = class_counts(&panel);
        // roster order: AU, US1, CEN
        assert!(
            counts[2].long_term > counts[1].long_term * 2,
            "CEN {} vs US1 {}",
            counts[2].long_term,
            counts[1].long_term
        );
    }

    #[test]
    fn trial_breakdowns_consistent_with_class_counts() {
        let world = WorldConfig::tiny(17).build();
        let panel = make_panel(&world);
        for oi in 0..3 {
            for t in 0..3u8 {
                let b = trial_breakdown(&panel, oi, t);
                // Long-term hosts present in trial t are missed there by
                // definition; breakdown totals never exceed union size.
                assert!(b.total() <= panel.len());
            }
            // A long-term host is missed in every trial it is present, so
            // summing long_term across trials ≥ the class count.
            let per_trial: usize = (0..3u8)
                .map(|t| trial_breakdown(&panel, oi, t).long_term)
                .sum();
            let classes = class_counts(&panel);
            assert!(per_trial >= classes[oi].long_term);
        }
    }

    #[test]
    fn split_totals_match_class_counts() {
        let world = WorldConfig::tiny(17).build();
        let panel = make_panel(&world);
        let counts = class_counts(&panel);
        for (oi, c) in counts.iter().enumerate() {
            let s = host_network_split(&world, &panel, oi, Class::Transient);
            assert_eq!(s.network_hosts + s.individual_hosts, c.transient);
        }
    }

    #[test]
    fn transient_mostly_individual_hosts() {
        // §3: 49.7% of missing hosts are transient individual hosts vs
        // 1.9% transient networks — transient loss hits hosts, not /24s.
        let world = WorldConfig::small(17).build();
        let panel = make_panel(&world);
        let s = host_network_split(&world, &panel, 0, Class::Transient);
        assert!(
            s.individual_hosts > s.network_hosts * 5,
            "individual {} vs network {}",
            s.individual_hosts,
            s.network_hosts
        );
    }
}
