//! The §5.2 packet-drop estimator and its (weak) relationship to
//! transient host loss (Fig 10).
//!
//! ZMap cannot distinguish an unresponsive host from a dropped probe, so
//! the paper estimates random drop from hosts that answered exactly one
//! of the two back-to-back SYNs — a *lower bound*, since double drops are
//! invisible. The headline negative result: drop estimates correlate only
//! weakly with transient host loss (Spearman ρ = 0.40–0.52), because
//! loss is not i.i.d.

use crate::classify::{classify, Class};
use crate::matrix::TrialMatrix;
use crate::results::Panel;
use originscan_netmodel::World;
use originscan_stats::spearman::{spearman, SpearmanResult};
use std::collections::BTreeMap;

/// Estimated packet-drop rate for one origin in one trial: the fraction
/// of ground-truth hosts that answered exactly one of two probes.
pub fn global_drop_estimate(matrix: &TrialMatrix, origin_idx: usize) -> f64 {
    let n = matrix.len();
    if n == 0 {
        return 0.0;
    }
    let single = matrix.outcomes[origin_idx]
        .iter()
        .filter(|o| o.exactly_one_probe())
        .count();
    single as f64 / n as f64
}

/// Per-AS drop estimates for one origin in one trial:
/// `as_index → (single_probe_hosts, ground_truth_hosts)`.
pub fn drop_by_as(
    world: &World,
    matrix: &TrialMatrix,
    origin_idx: usize,
) -> BTreeMap<u32, (usize, usize)> {
    let mut m: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
    for (i, &addr) in matrix.addrs.iter().enumerate() {
        let e = m.entry(world.as_index_of(addr)).or_default();
        e.1 += 1;
        if matrix.outcomes[origin_idx][i].exactly_one_probe() {
            e.0 += 1;
        }
    }
    m
}

/// §7's correlated-loss evidence: among ground-truth hosts that lost at
/// least one probe from this origin, the fraction that lost *both*
/// (the paper: > 93 %).
pub fn both_lost_fraction(matrix: &TrialMatrix, origin_idx: usize) -> f64 {
    let mut any_lost = 0usize;
    let mut both_lost = 0usize;
    for o in &matrix.outcomes[origin_idx] {
        let answered = (o.0 & 0b11).count_ones();
        if answered < 2 {
            any_lost += 1;
            if answered == 0 {
                both_lost += 1;
            }
        }
    }
    if any_lost == 0 {
        return 1.0;
    }
    both_lost as f64 / any_lost as f64
}

/// Spearman correlation, across ASes, between an origin's per-AS drop
/// estimate and its per-AS transient host-loss rate (§5.2 reports
/// ρ = 0.40–0.52). Only ASes with ≥ `min_hosts` ground-truth hosts enter.
pub fn drop_vs_transient_correlation(
    world: &World,
    panel: &Panel,
    matrices: &[TrialMatrix],
    origin_idx: usize,
    min_hosts: usize,
) -> Option<SpearmanResult> {
    // Per-AS transient rates from the panel.
    let mut hosts_by_as: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for u in 0..panel.len() {
        hosts_by_as
            .entry(world.as_index_of(panel.addrs[u]))
            .or_default()
            .push(u);
    }
    // Per-AS single-probe rates averaged over trials.
    let mut drop_acc: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
    for m in matrices.iter().filter(|m| m.protocol == panel.protocol) {
        for (ai, (s, n)) in drop_by_as(world, m, origin_idx) {
            let e = drop_acc.entry(ai).or_default();
            e.0 += s;
            e.1 += n;
        }
    }
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (ai, hosts) in &hosts_by_as {
        if hosts.len() < min_hosts {
            continue;
        }
        let Some(&(s, n)) = drop_acc.get(ai) else {
            continue;
        };
        if n == 0 {
            continue;
        }
        let transient = hosts
            .iter()
            .filter(|&&u| classify(panel, origin_idx, u) == Class::Transient)
            .count();
        xs.push(s as f64 / n as f64);
        ys.push(transient as f64 / hosts.len() as f64);
    }
    spearman(&xs, &ys)
}

/// One point of Fig 10: an origin's (packet-loss estimate, transient
/// host-loss rate) for a specific AS in a specific trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossPoint {
    /// Origin index.
    pub origin_idx: usize,
    /// Trial.
    pub trial: u8,
    /// Estimated per-probe drop rate.
    pub drop_rate: f64,
    /// Transient host-loss rate in the AS.
    pub transient_rate: f64,
}

/// Collect Fig 10's scatter for one named AS.
pub fn loss_points_for_as(
    world: &World,
    panel: &Panel,
    matrices: &[TrialMatrix],
    as_name: &str,
) -> Vec<LossPoint> {
    let asr = match world.as_by_name(as_name) {
        Some(a) => a,
        None => return Vec::new(),
    };
    let hosts: Vec<usize> = (0..panel.len())
        .filter(|&u| world.as_index_of(panel.addrs[u]) == asr.index)
        .collect();
    if hosts.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for m in matrices.iter().filter(|m| m.protocol == panel.protocol) {
        for oi in 0..panel.origins.len() {
            let per_as = drop_by_as(world, m, oi);
            let (s, n) = per_as.get(&asr.index).copied().unwrap_or((0, 0));
            if n == 0 {
                continue;
            }
            // Transient misses of this origin in this trial within the AS.
            let bit = 1u8 << m.trial;
            let missed = hosts
                .iter()
                .filter(|&&u| {
                    panel.present[u] & bit != 0
                        && panel.seen[oi][u] & bit == 0
                        && classify(panel, oi, u) == Class::Transient
                })
                .count();
            let present = hosts
                .iter()
                .filter(|&&u| panel.present[u] & bit != 0)
                .count();
            out.push(LossPoint {
                origin_idx: oi,
                trial: m.trial,
                drop_rate: s as f64 / n as f64,
                transient_rate: if present == 0 {
                    0.0
                } else {
                    missed as f64 / present as f64
                },
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentConfig};
    use crate::results::ExperimentResults;
    use originscan_netmodel::{OriginId, Protocol, WorldConfig};

    fn run(world: &World) -> ExperimentResults<'_> {
        let cfg = ExperimentConfig {
            origins: OriginId::MAIN.to_vec(),
            protocols: vec![Protocol::Http],
            trials: 3,
            ..Default::default()
        };
        Experiment::new(world, cfg).run().unwrap()
    }

    #[test]
    fn global_drop_in_band() {
        // Paper: 0.44%–1.6% depending on trial and origin. We accept a
        // slightly wider band at reduced scale.
        let world = WorldConfig::small(47).build();
        let r = run(&world);
        for t in 0..3u8 {
            let m = r.matrix(Protocol::Http, t);
            for oi in 0..7 {
                let d = global_drop_estimate(m, oi);
                assert!((0.001..0.06).contains(&d), "origin {oi} trial {t}: {d}");
            }
        }
    }

    #[test]
    fn australia_has_highest_drop() {
        let world = WorldConfig::small(47).build();
        let r = run(&world);
        let mean = |oi: usize| -> f64 {
            (0..3u8)
                .map(|t| global_drop_estimate(r.matrix(Protocol::Http, t), oi))
                .sum::<f64>()
                / 3.0
        };
        let au = mean(0); // roster order: AU first
        for oi in 1..7 {
            assert!(au >= mean(oi) * 0.9, "AU {au} vs origin {oi} {}", mean(oi));
        }
    }

    #[test]
    fn loss_is_correlated_not_iid() {
        // >93% of hosts that lost ≥1 probe lost both (paper §7); we accept
        // anything clearly dominated by double loss.
        let world = WorldConfig::small(47).build();
        let r = run(&world);
        let m = r.matrix(Protocol::Http, 0);
        let mut fracs = Vec::new();
        for oi in 0..7 {
            let f = both_lost_fraction(m, oi);
            assert!(f > 0.55, "origin {oi}: both-lost fraction {f}");
            fracs.push(f);
        }
        let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
        assert!(mean > 0.65, "mean both-lost fraction {mean}");
    }

    #[test]
    fn drop_transient_correlation_weak_but_positive() {
        let world = WorldConfig::small(47).build();
        let r = run(&world);
        let panel = r.panel(Protocol::Http);
        let c = drop_vs_transient_correlation(&world, &panel, r.matrices(), 4, 10)
            .expect("enough ASes");
        assert!(c.rho > 0.0, "rho = {}", c.rho);
        assert!(
            c.rho < 0.9,
            "correlation should be imperfect, rho = {}",
            c.rho
        );
    }

    #[test]
    fn fig10_points_exist_for_named_ases() {
        let world = WorldConfig::small(47).build();
        let r = run(&world);
        let panel = r.panel(Protocol::Http);
        for name in [
            "HZ Alibaba Advertising",
            "Telecom Italia",
            "ABCDE Group Company Limited",
        ] {
            let pts = loss_points_for_as(&world, &panel, r.matrices(), name);
            assert_eq!(pts.len(), 7 * 3, "{name}: {} points", pts.len());
            for p in &pts {
                assert!((0.0..=1.0).contains(&p.drop_rate));
                assert!((0.0..=1.0).contains(&p.transient_rate));
            }
        }
    }

    #[test]
    fn germany_ti_drop_far_exceeds_brazil() {
        let world = WorldConfig::small(47).build();
        let r = run(&world);
        let panel = r.panel(Protocol::Http);
        let pts = loss_points_for_as(&world, &panel, r.matrices(), "Telecom Italia");
        let de = panel
            .origins
            .iter()
            .position(|&o| o == OriginId::Germany)
            .unwrap();
        let br = panel
            .origins
            .iter()
            .position(|&o| o == OriginId::Brazil)
            .unwrap();
        let mean = |oi: usize| {
            let v: Vec<f64> = pts
                .iter()
                .filter(|p| p.origin_idx == oi)
                .map(|p| p.drop_rate)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            mean(de) > 10.0 * mean(br),
            "DE {} vs BR {}",
            mean(de),
            mean(br)
        );
    }
}
