//! One-call full report: every headline analysis of the paper rendered
//! as text, for humans who want the whole picture at once.

use crate::classify::{class_counts, trial_breakdown};
use crate::coverage::{coverage_table, mcnemar_all_pairs};
use crate::exclusivity::exclusive_counts;
use crate::multiorigin::{combo_sweep, single_ip_roster, ProbePolicy};
use crate::packetloss::{both_lost_fraction, global_drop_estimate};
use crate::report::{count, pct, pct2, Table};
use crate::results::ExperimentResults;
use crate::ssh::ssh_miss_breakdown;
use crate::transient::origin_stability;
use originscan_netmodel::Protocol;
use originscan_stats::interval::wilson95;
use std::fmt::Write as _;

/// Render the full report for an experiment's results.
///
/// Sections mirror the paper: coverage (§3), missing-host taxonomy (§3),
/// exclusivity (§4), packet loss (§5.2), origin stability (§5.1), SSH
/// behaviour (§6, when SSH was scanned), and multi-origin guidance (§7).
pub fn full_report(results: &ExperimentResults<'_>) -> String {
    let mut out = String::new();
    let cfg = results.config();
    let world = results.world();
    let _ = writeln!(
        out,
        "originscan report — {} origins, {} protocols, {} trials, world of {} addresses\n",
        cfg.origins.len(),
        cfg.protocols.len(),
        cfg.trials,
        count(world.space() as usize),
    );

    // Run health: surface any origin that did not complete cleanly so a
    // reader knows which columns rest on degraded or absent data.
    let disrupted = results.disrupted_runs();
    if disrupted.is_empty() {
        let _ = writeln!(out, "run health: all origin scans completed cleanly\n");
    } else {
        let _ = writeln!(
            out,
            "run health: {} disrupted origin scan(s):",
            disrupted.len()
        );
        for (proto, trial, origin, status) in &disrupted {
            let _ = writeln!(out, "  {proto} trial {} {origin}: {status}", trial + 1);
        }
        let _ = writeln!(out);
    }

    for &proto in &cfg.protocols {
        let _ = writeln!(out, "== {proto} ==\n");

        // Coverage with Wilson intervals on the mean row.
        let rows = coverage_table(results, proto);
        let mut t = Table::new(
            ["trial"]
                .into_iter()
                .map(String::from)
                .chain(cfg.origins.iter().map(|o| o.to_string()))
                .chain(["∪".to_string()]),
        );
        for row in &rows {
            let label = row.trial.map_or("μ".into(), |x| (x + 1).to_string());
            t.row(
                [label]
                    .into_iter()
                    .chain(row.fractions.iter().map(|&f| pct(f)))
                    .chain([count(row.union)]),
            );
        }
        let _ = writeln!(out, "coverage of ground truth (2 probes):\n{}", t.render());
        // 95% interval on the final trial's coverage for the first origin,
        // to convey sampling error at this scale.
        if let Some(row) = rows.first() {
            let n = row.union as u64;
            let seen = (row.fractions[0] * n as f64).round() as u64;
            let ci = wilson95(seen.min(n), n);
            let _ = writeln!(
                out,
                "(sampling error at this scale: {} trial-1 coverage {} with 95% CI ±{})\n",
                cfg.origins[0],
                pct(ci.estimate),
                pct2(ci.half_width()),
            );
        }

        // Taxonomy.
        let panel = results.panel(proto);
        let counts = class_counts(&panel);
        let mut t = Table::new(["origin", "transient", "long-term", "unknown", "missed t1"]);
        for (oi, o) in cfg.origins.iter().enumerate() {
            let b = trial_breakdown(&panel, oi, 0);
            t.row([
                o.to_string(),
                count(counts[oi].transient),
                count(counts[oi].long_term),
                count(counts[oi].unknown),
                count(b.total()),
            ]);
        }
        let _ = writeln!(
            out,
            "missing-host taxonomy (union across trials):\n{}",
            t.render()
        );

        // Exclusivity.
        let (acc, inacc) = exclusive_counts(&panel).percentages();
        let mut t = Table::new(
            ["share of"]
                .into_iter()
                .map(String::from)
                .chain(cfg.origins.iter().map(|o| o.to_string())),
        );
        t.row(
            ["exclusively accessible".to_string()]
                .into_iter()
                .chain(acc.iter().map(|v| format!("{v:.1}%"))),
        );
        t.row(
            ["exclusively inaccessible".to_string()]
                .into_iter()
                .chain(inacc.iter().map(|v| format!("{v:.1}%"))),
        );
        let _ = writeln!(out, "exclusivity (Table 1 style):\n{}", t.render());

        // Packet loss.
        let m = results.matrix(proto, 0);
        let mut t = Table::new(["origin", "drop estimate (t1)", "both-lost share"]);
        for (oi, o) in cfg.origins.iter().enumerate() {
            t.row([
                o.to_string(),
                pct2(global_drop_estimate(m, oi)),
                pct(both_lost_fraction(m, oi)),
            ]);
        }
        let _ = writeln!(out, "packet-loss estimator (§5.2):\n{}", t.render());

        // Stability.
        if cfg.trials >= 2 {
            let st = origin_stability(world, &panel, 10);
            let _ = writeln!(
                out,
                "origin stability over {} ASes: consistent best {}, consistent worst {}, best-flips-to-worst {}\n",
                st.ases, st.consistent_best, st.consistent_worst, st.best_flips_to_worst
            );
        }

        // Significance.
        let (tests, alpha) = mcnemar_all_pairs(results, proto, 0.001);
        let sig = tests.iter().filter(|t| t.result.p_value < alpha).count();
        let _ = writeln!(
            out,
            "McNemar: {sig}/{} origin-pair comparisons significant at corrected α = {alpha:.2e}\n",
            tests.len()
        );

        // SSH mechanisms.
        if proto == Protocol::Ssh {
            let b = ssh_miss_breakdown(world, m, 0);
            let _ = writeln!(
                out,
                "SSH miss causes ({} trial 1): Alibaba temporal {}, probabilistic {}, other {}\n",
                cfg.origins[0],
                count(b.temporal_blocking),
                count(b.probabilistic_blocking),
                count(b.other)
            );
        }

        // Multi-origin guidance.
        let roster = single_ip_roster(results);
        if roster.len() >= 3 {
            let d1 = combo_sweep(results, proto, &roster, 1, ProbePolicy::Double);
            let d3 = combo_sweep(results, proto, &roster, 3, ProbePolicy::Double);
            let _ = writeln!(
                out,
                "multi-origin: median 1-origin coverage {} → 3-origin {} (σ {} → {}); best triad {}\n",
                pct(d1.summary().median),
                pct(d3.summary().median),
                pct2(d1.std_dev()),
                pct2(d3.std_dev()),
                d3.best.0.iter().map(|o| o.to_string()).collect::<Vec<_>>().join("-"),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentConfig};
    use originscan_netmodel::{OriginId, WorldConfig};

    #[test]
    fn report_renders_all_sections() {
        let world = WorldConfig::tiny(3).build();
        let cfg = ExperimentConfig {
            origins: vec![
                OriginId::Australia,
                OriginId::Japan,
                OriginId::Us1,
                OriginId::Censys,
            ],
            protocols: vec![Protocol::Http, Protocol::Ssh],
            trials: 2,
            ..Default::default()
        };
        let results = Experiment::new(&world, cfg).run().unwrap();
        let report = full_report(&results);
        for needle in [
            "== HTTP ==",
            "== SSH ==",
            "coverage of ground truth",
            "missing-host taxonomy",
            "exclusivity",
            "packet-loss estimator",
            "origin stability",
            "McNemar",
            "SSH miss causes",
            "multi-origin",
            "95% CI",
            "run health: all origin scans completed cleanly",
        ] {
            assert!(
                report.contains(needle),
                "missing section {needle:?}\n{report}"
            );
        }
    }

    #[test]
    fn report_flags_disrupted_runs() {
        use originscan_netmodel::FaultPlan;
        let world = WorldConfig::tiny(3).build();
        let cfg = ExperimentConfig {
            origins: vec![OriginId::Us1, OriginId::Japan],
            protocols: vec![Protocol::Http],
            trials: 1,
            faults: Some(FaultPlan::new(4).outage(1, 0, 0.2, 0.5)),
            ..Default::default()
        };
        let results = Experiment::new(&world, cfg).run().unwrap();
        let report = full_report(&results);
        assert!(
            report.contains("run health: 1 disrupted origin scan(s):"),
            "{report}"
        );
        assert!(report.contains("degraded (vantage outage)"), "{report}");
    }
}
