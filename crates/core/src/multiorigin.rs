//! §7: multi-origin and multi-probe coverage (Figs 15, 17, 18).
//!
//! The paper's remedy for unpredictable transient loss: scan from 2–3
//! sufficiently diverse origins. This module sweeps every k-subset of the
//! single-IP origins, computes union coverage per trial under both probe
//! policies, and summarizes the distributions that make up the paper's
//! box plots.

use crate::matrix::TrialMatrix;
use crate::results::ExperimentResults;
use originscan_netmodel::{OriginId, Protocol};
use originscan_stats::combos::k_subsets;
use originscan_stats::descriptive::FiveNumber;
use originscan_store::ScanSet;

/// Probe policy for coverage computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbePolicy {
    /// Host counts if the origin's first probe was answered and L7
    /// completed (simulated single-probe scan).
    Single,
    /// Host counts if any probe was answered and L7 completed (the scan
    /// as actually run).
    Double,
}

/// Union coverage of an origin subset in one trial: a multi-set union
/// popcount over the matrix's per-origin bitmaps — no per-host loop, so
/// the §7 sweep over every k-subset stays cheap at full scale.
pub fn combo_coverage(matrix: &TrialMatrix, combo: &[usize], policy: ProbePolicy) -> f64 {
    let n = matrix.len();
    if n == 0 {
        return 1.0;
    }
    let sets = match policy {
        ProbePolicy::Single => &matrix.one_probe_sets,
        ProbePolicy::Double => &matrix.seen_sets,
    };
    let members: Vec<&ScanSet> = combo.iter().map(|&oi| &sets[oi]).collect();
    let covered = ScanSet::union_cardinality_many(&members);
    covered as f64 / n as f64
}

/// The coverage distribution over all k-subsets (× trials) of the chosen
/// origin roster — one box of Fig 15/17.
#[derive(Debug, Clone)]
pub struct ComboDistribution {
    /// Subset size.
    pub k: usize,
    /// Probe policy.
    pub policy: ProbePolicy,
    /// Coverage samples: one per (subset, trial).
    pub samples: Vec<f64>,
    /// The best-covering subset (origin labels) and its mean coverage.
    pub best: (Vec<OriginId>, f64),
    /// The worst-covering subset and its mean coverage.
    pub worst: (Vec<OriginId>, f64),
}

impl ComboDistribution {
    /// Five-number summary of the samples.
    pub fn summary(&self) -> FiveNumber {
        FiveNumber::of(&self.samples)
    }

    /// Standard deviation of the samples.
    pub fn std_dev(&self) -> f64 {
        originscan_stats::descriptive::std_dev(&self.samples)
    }
}

/// Sweep all k-subsets of `origins` (indices into the experiment roster).
pub fn combo_sweep(
    results: &ExperimentResults<'_>,
    proto: Protocol,
    origins: &[OriginId],
    k: usize,
    policy: ProbePolicy,
) -> ComboDistribution {
    let roster: Vec<usize> = origins.iter().map(|&o| results.origin_index(o)).collect();
    let trials = results.config().trials;
    let mut samples = Vec::new();
    let mut best: Option<(Vec<OriginId>, f64)> = None;
    let mut worst: Option<(Vec<OriginId>, f64)> = None;
    for subset in k_subsets(roster.len(), k) {
        let combo: Vec<usize> = subset.iter().map(|&i| roster[i]).collect();
        let labels: Vec<OriginId> = subset.iter().map(|&i| origins[i]).collect();
        let mut mean = 0.0;
        for t in 0..trials {
            let c = combo_coverage(results.matrix(proto, t), &combo, policy);
            samples.push(c);
            mean += c;
        }
        mean /= f64::from(trials);
        if best.as_ref().is_none_or(|(_, b)| mean > *b) {
            best = Some((labels.clone(), mean));
        }
        if worst.as_ref().is_none_or(|(_, w)| mean < *w) {
            worst = Some((labels, mean));
        }
    }
    ComboDistribution {
        k,
        policy,
        samples,
        best: best.expect("at least one subset"),
        worst: worst.expect("at least one subset"),
    }
}

/// The single-IP origins the paper's Fig 15 sweeps (US₆₄ excluded).
pub fn single_ip_roster(results: &ExperimentResults<'_>) -> Vec<OriginId> {
    results
        .config()
        .origins
        .iter()
        .copied()
        .filter(|o| o.spec().source_ips == 1)
        .collect()
}

/// Coverage of one *named* subset (e.g. the collocated HE–NTT–TELIA triad
/// of Fig 18), averaged over trials.
pub fn named_combo_coverage(
    results: &ExperimentResults<'_>,
    proto: Protocol,
    origins: &[OriginId],
    policy: ProbePolicy,
) -> f64 {
    let combo: Vec<usize> = origins.iter().map(|&o| results.origin_index(o)).collect();
    let trials = results.config().trials;
    (0..trials)
        .map(|t| combo_coverage(results.matrix(proto, t), &combo, policy))
        .sum::<f64>()
        / f64::from(trials)
}

/// The k-subset of `sets` with the largest union cardinality — the §7
/// "which k origins buy the most coverage" question asked of bitmaps
/// directly, so callers that hold materialized scan sets (the serve
/// query engine) need no [`TrialMatrix`].
///
/// Returns the winning member indices (ascending) and the union
/// cardinality, or `None` when `k` is zero or exceeds `sets.len()`.
/// Ties break toward the lexicographically smallest index subset, which
/// `k_subsets` emits first — so the answer is deterministic.
pub fn best_k_union(sets: &[&ScanSet], k: usize) -> Option<(Vec<usize>, u64)> {
    if k == 0 || k > sets.len() {
        return None;
    }
    let mut best: Option<(Vec<usize>, u64)> = None;
    for combo in k_subsets(sets.len(), k) {
        let members: Vec<&ScanSet> = combo.iter().map(|&i| sets[i]).collect();
        let covered = ScanSet::union_cardinality_many(&members);
        let better = match &best {
            Some((_, c)) => covered > *c,
            None => true,
        };
        if better {
            best = Some((combo, covered));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentConfig};
    use originscan_netmodel::{World, WorldConfig};

    fn run(world: &World) -> ExperimentResults<'_> {
        let cfg = ExperimentConfig {
            origins: OriginId::MAIN.to_vec(),
            protocols: vec![Protocol::Http],
            trials: 2,
            ..Default::default()
        };
        Experiment::new(world, cfg).run().unwrap()
    }

    #[test]
    fn more_origins_more_coverage() {
        let world = WorldConfig::small(61).build();
        let r = run(&world);
        let roster = single_ip_roster(&r);
        assert_eq!(roster.len(), 6); // US64 excluded
        let mut last_median = 0.0;
        for k in 1..=3 {
            let d = combo_sweep(&r, Protocol::Http, &roster, k, ProbePolicy::Double);
            let med = d.summary().median;
            assert!(med >= last_median, "k={k}: median {med} < {last_median}");
            last_median = med;
        }
        // Three origins reach ≥ 98-99% and low variance (paper: σ = 0.08%).
        let d3 = combo_sweep(&r, Protocol::Http, &roster, 3, ProbePolicy::Double);
        assert!(
            d3.summary().median > 0.97,
            "3-origin median {}",
            d3.summary().median
        );
        let d1 = combo_sweep(&r, Protocol::Http, &roster, 1, ProbePolicy::Double);
        assert!(
            d3.std_dev() < d1.std_dev(),
            "variance must shrink with origins"
        );
    }

    #[test]
    fn single_probe_weaker_than_double() {
        let world = WorldConfig::small(61).build();
        let r = run(&world);
        let roster = single_ip_roster(&r);
        let s = combo_sweep(&r, Protocol::Http, &roster, 1, ProbePolicy::Single);
        let d = combo_sweep(&r, Protocol::Http, &roster, 1, ProbePolicy::Double);
        assert!(s.summary().median < d.summary().median);
    }

    #[test]
    fn two_origins_beat_two_probes() {
        // §7 "Multi-probe scanning": one probe from two origins beats two
        // probes from one origin.
        let world = WorldConfig::small(61).build();
        let r = run(&world);
        let roster = single_ip_roster(&r);
        let two_origins_1p = combo_sweep(&r, Protocol::Http, &roster, 2, ProbePolicy::Single);
        let one_origin_2p = combo_sweep(&r, Protocol::Http, &roster, 1, ProbePolicy::Double);
        assert!(
            two_origins_1p.summary().median > one_origin_2p.summary().median,
            "2 origins 1 probe {} vs 1 origin 2 probes {}",
            two_origins_1p.summary().median,
            one_origin_2p.summary().median
        );
    }

    #[test]
    fn best_k_union_picks_largest_union() {
        let a = ScanSet::from_sorted(&[1, 2, 3]);
        let b = ScanSet::from_sorted(&[3, 4]);
        let c = ScanSet::from_sorted(&[10, 11, 12, 13]);
        let sets = vec![&a, &b, &c];
        // Best pair is {a, c}: |{1,2,3,10,11,12,13}| = 7.
        let (combo, card) = best_k_union(&sets, 2).unwrap();
        assert_eq!(combo, vec![0, 2]);
        assert_eq!(card, 7);
        // k = n degenerates to the full union.
        let (all, full) = best_k_union(&sets, 3).unwrap();
        assert_eq!(all, vec![0, 1, 2]);
        assert_eq!(full, 8);
        // Out-of-range k is refused, not panicked on.
        assert!(best_k_union(&sets, 0).is_none());
        assert!(best_k_union(&sets, 4).is_none());
        // Ties break toward the first (lexicographically smallest) combo.
        let d = ScanSet::from_sorted(&[20, 21, 22]);
        let tied = vec![&a, &d];
        let (combo, _) = best_k_union(&tied, 1).unwrap();
        assert_eq!(combo, vec![0]);
    }

    #[test]
    fn named_combo_matches_sweep_extremes() {
        let world = WorldConfig::small(61).build();
        let r = run(&world);
        let roster = single_ip_roster(&r);
        let d = combo_sweep(&r, Protocol::Http, &roster, 2, ProbePolicy::Double);
        let best_cov = named_combo_coverage(&r, Protocol::Http, &d.best.0, ProbePolicy::Double);
        assert!((best_cov - d.best.1).abs() < 1e-12);
        assert!(d.best.1 >= d.worst.1);
    }
}
