//! Country-level long-term inaccessibility (Table 2, Appendix B Table 5)
//! and the §4.4 host-count correlation.

use crate::classify::{classify, Class};
use crate::results::Panel;
use originscan_netmodel::geo::Country;
use originscan_netmodel::World;
use originscan_stats::spearman::{spearman, SpearmanResult};
use std::collections::BTreeMap;

/// Long-term inaccessibility statistics for one country.
#[derive(Debug, Clone)]
pub struct CountryStats {
    /// The country.
    pub country: Country,
    /// Ground-truth hosts geolocating there (union across trials).
    pub hosts: usize,
    /// Per-origin: percentage of the country's hosts long-term
    /// inaccessible from that origin.
    pub inaccessible_pct: Vec<f64>,
    /// Per-origin: how many ASes make up the majority of that origin's
    /// long-term-inaccessible hosts in this country (the red/orange/yellow
    /// color coding of Table 2; 0 when nothing is inaccessible).
    pub majority_ases: Vec<usize>,
}

/// Compute per-country long-term inaccessibility for every origin.
pub fn country_stats(world: &World, panel: &Panel) -> Vec<CountryStats> {
    // Bucket hosts by country once.
    let mut hosts_by_cc: BTreeMap<Country, Vec<usize>> = BTreeMap::new();
    for u in 0..panel.len() {
        hosts_by_cc
            .entry(world.country_of(panel.addrs[u]))
            .or_default()
            .push(u);
    }
    let n_origins = panel.origins.len();
    let mut out = Vec::new();
    for (country, hosts) in hosts_by_cc {
        let mut inaccessible_pct = Vec::with_capacity(n_origins);
        let mut majority_ases = Vec::with_capacity(n_origins);
        for oi in 0..n_origins {
            let lost: Vec<usize> = hosts
                .iter()
                .copied()
                .filter(|&u| classify(panel, oi, u) == Class::LongTerm)
                .collect();
            inaccessible_pct.push(100.0 * lost.len() as f64 / hosts.len() as f64);
            majority_ases.push(ases_for_majority(world, panel, &lost));
        }
        out.push(CountryStats {
            country,
            hosts: hosts.len(),
            inaccessible_pct,
            majority_ases,
        });
    }
    out.sort_by_key(|s| std::cmp::Reverse(s.hosts));
    out
}

/// Smallest number of ASes that together hold > 50 % of the given hosts.
fn ases_for_majority(world: &World, panel: &Panel, hosts: &[usize]) -> usize {
    if hosts.is_empty() {
        return 0;
    }
    let mut per_as: BTreeMap<u32, usize> = BTreeMap::new();
    for &u in hosts {
        *per_as.entry(world.as_index_of(panel.addrs[u])).or_default() += 1;
    }
    let mut counts: Vec<usize> = per_as.into_values().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let half = hosts.len() as f64 / 2.0;
    let mut acc = 0usize;
    for (i, c) in counts.iter().enumerate() {
        acc += c;
        if acc as f64 > half {
            return i + 1;
        }
    }
    counts.len()
}

/// §4.4: Spearman rank correlation between a country's total host count
/// and its long-term-inaccessible host count, aggregated over origins
/// (the paper reports ρ = 0.92, p < 0.001).
pub fn host_count_vs_inaccessible(stats: &[CountryStats]) -> Option<SpearmanResult> {
    let xs: Vec<f64> = stats.iter().map(|s| s.hosts as f64).collect();
    let ys: Vec<f64> = stats
        .iter()
        .map(|s| {
            // Total inaccessible host count across origins (avg pct × hosts).
            let mean_pct = s.inaccessible_pct.iter().sum::<f64>() / s.inaccessible_pct.len() as f64;
            mean_pct / 100.0 * s.hosts as f64
        })
        .collect();
    spearman(&xs, &ys)
}

/// Countries where some origin misses more than `threshold_pct` percent
/// of hosts (the paper: 50 countries > 10 %, 19 countries > 25 %).
pub fn countries_above(stats: &[CountryStats], threshold_pct: f64) -> Vec<&CountryStats> {
    stats
        .iter()
        .filter(|s| s.inaccessible_pct.iter().any(|&p| p > threshold_pct))
        .collect()
}

/// Tiered country selection for the Table 2 layout: countries bucketed by
/// host count, top `per_tier` per tier by worst-origin inaccessibility.
pub fn tiered_table<'a>(
    stats: &'a [CountryStats],
    tiers: &[usize],
    per_tier: usize,
) -> Vec<Vec<&'a CountryStats>> {
    let mut out = Vec::new();
    let mut upper = usize::MAX;
    for &lower in tiers {
        let mut bucket: Vec<&CountryStats> = stats
            .iter()
            .filter(|s| s.hosts >= lower && s.hosts < upper)
            .collect();
        bucket.sort_by(|a, b| {
            let wa = a.inaccessible_pct.iter().cloned().fold(0.0, f64::max);
            let wb = b.inaccessible_pct.iter().cloned().fold(0.0, f64::max);
            wb.partial_cmp(&wa).expect("no NaN")
        });
        bucket.truncate(per_tier);
        out.push(bucket);
        upper = lower;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentConfig};
    use originscan_netmodel::{geo, OriginId, Protocol, WorldConfig};

    fn setup(world: &World) -> Panel {
        let cfg = ExperimentConfig {
            origins: OriginId::MAIN.to_vec(),
            protocols: vec![Protocol::Http],
            trials: 3,
            ..Default::default()
        };
        Experiment::new(world, cfg)
            .run()
            .unwrap()
            .panel(Protocol::Http)
    }

    #[test]
    fn stats_cover_all_hosts() {
        let world = WorldConfig::small(37).build();
        let p = setup(&world);
        let stats = country_stats(&world, &p);
        let total: usize = stats.iter().map(|s| s.hosts).sum();
        assert_eq!(total, p.len());
        // Sorted by size descending.
        assert!(stats.windows(2).all(|w| w[0].hosts >= w[1].hosts));
    }

    #[test]
    fn bangladesh_and_south_africa_hit_for_censys() {
        // Table 2's flagship: DXTL blocking Censys blacks out large parts
        // of BD and ZA; the damage is dominated by a single AS.
        let world = WorldConfig::small(37).build();
        let p = setup(&world);
        let stats = country_stats(&world, &p);
        let cen = p
            .origins
            .iter()
            .position(|&o| o == OriginId::Censys)
            .unwrap();
        let jp = p
            .origins
            .iter()
            .position(|&o| o == OriginId::Japan)
            .unwrap();
        for cc in [geo::BD, geo::ZA] {
            let s = stats
                .iter()
                .find(|s| s.country == cc)
                .unwrap_or_else(|| panic!("{cc}"));
            assert!(
                s.inaccessible_pct[cen] > 15.0,
                "{cc}: Censys only misses {:.1}%",
                s.inaccessible_pct[cen]
            );
            assert!(
                s.inaccessible_pct[cen] > 4.0 * s.inaccessible_pct[jp].max(0.5),
                "{cc}: Censys {:.1}% vs Japan {:.1}%",
                s.inaccessible_pct[cen],
                s.inaccessible_pct[jp]
            );
            assert_eq!(s.majority_ases[cen], 1, "{cc} should be dominated by DXTL");
        }
    }

    #[test]
    fn rank_correlation_strong() {
        let world = WorldConfig::small(37).build();
        let p = setup(&world);
        let stats = country_stats(&world, &p);
        let r = host_count_vs_inaccessible(&stats).unwrap();
        // Paper: rho = 0.92. Any strongly positive value reproduces the
        // qualitative claim.
        assert!(r.rho > 0.6, "rho = {}", r.rho);
        assert!(r.p_value < 0.001);
    }

    #[test]
    fn threshold_filter_and_tiers() {
        let world = WorldConfig::small(37).build();
        let p = setup(&world);
        let stats = country_stats(&world, &p);
        let over10 = countries_above(&stats, 10.0);
        let over25 = countries_above(&stats, 25.0);
        assert!(over25.len() <= over10.len());
        assert!(!over10.is_empty(), "some country must lose >10% somewhere");
        let tiers = tiered_table(&stats, &[1000, 100, 10, 1], 5);
        assert_eq!(tiers.len(), 4);
        for bucket in &tiers {
            assert!(bucket.len() <= 5);
        }
    }
}
