//! §5.3 burst-outage analysis on the *observed* scan results.
//!
//! The paper detects bursts purely from measurements: per
//! (origin, destination AS) hourly counts of transiently missing hosts,
//! smoothed with a 4-hour rolling window, with > 2σ residuals flagged.
//! We run the identical detector over our matrices — the model's injected
//! bursts (`netmodel::burst`) are recovered by this analysis, closing the
//! loop.

use crate::classify::{classify, Class};
use crate::matrix::{TrialMatrix, SCAN_HOURS};
use crate::results::Panel;
use originscan_netmodel::World;
use originscan_stats::timeseries::{burst_mass_fraction, detect_bursts, Burst};
use std::collections::BTreeMap;

/// Rolling window (hours) used for smoothing, per the paper.
pub const WINDOW_HOURS: usize = 4;

/// Outlier threshold in standard deviations, per the paper.
pub const SIGMAS: f64 = 2.0;

/// Hourly series of transiently-missed hosts for one (origin, AS, trial).
pub fn hourly_missing_series(
    world: &World,
    panel: &Panel,
    matrix: &TrialMatrix,
    origin_idx: usize,
    as_index: u32,
) -> Vec<f64> {
    let mut series = vec![0.0f64; usize::from(SCAN_HOURS)];
    let bit = 1u8 << matrix.trial;
    for (i, &addr) in matrix.addrs.iter().enumerate() {
        if world.as_index_of(addr) != as_index {
            continue;
        }
        if matrix.outcomes[origin_idx][i].l7_success() {
            continue;
        }
        // Only transient misses count toward burst analysis.
        if let Ok(u) = panel.addrs.binary_search(&addr) {
            if panel.present[u] & bit != 0 && classify(panel, origin_idx, u) == Class::Transient {
                series[usize::from(matrix.hour[i])] += 1.0;
            }
        }
    }
    series
}

/// Result of the burst sweep for one (origin, trial).
#[derive(Debug, Clone, Default)]
pub struct BurstShare {
    /// Transiently missed hosts in this trial for this origin.
    pub transient_total: usize,
    /// Of those, hosts lost in hours flagged as bursts.
    pub in_bursts: usize,
    /// ASes with ≥ 1 detected burst.
    pub ases_with_bursts: usize,
    /// ASes examined (≥ `min_hosts` ground truth hosts).
    pub ases_examined: usize,
}

impl BurstShare {
    /// Fraction of transient loss coinciding with bursts (paper: 14–36 %).
    pub fn fraction(&self) -> f64 {
        if self.transient_total == 0 {
            0.0
        } else {
            self.in_bursts as f64 / self.transient_total as f64
        }
    }
}

/// Run the paper's burst detector for one (origin, trial) across all ASes
/// with at least `min_hosts` ground-truth hosts.
pub fn burst_share(
    world: &World,
    panel: &Panel,
    matrix: &TrialMatrix,
    origin_idx: usize,
    min_hosts: usize,
) -> BurstShare {
    // Enumerate ASes present in the matrix.
    let mut as_hosts: BTreeMap<u32, usize> = BTreeMap::new();
    for &addr in &matrix.addrs {
        *as_hosts.entry(world.as_index_of(addr)).or_default() += 1;
    }
    let mut share = BurstShare::default();
    for (&ai, &n) in &as_hosts {
        if n < min_hosts {
            continue;
        }
        share.ases_examined += 1;
        let series = hourly_missing_series(world, panel, matrix, origin_idx, ai);
        let total: f64 = series.iter().sum();
        share.transient_total += total as usize;
        let bursts: Vec<Burst> = detect_bursts(&series, WINDOW_HOURS, SIGMAS);
        if !bursts.is_empty() {
            share.ases_with_bursts += 1;
            share.in_bursts += burst_mass_fraction(&series, &bursts).mul_add(total, 0.0) as usize;
        }
    }
    share
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentConfig};
    use crate::results::ExperimentResults;
    use originscan_netmodel::{OriginId, Protocol, WorldConfig};

    fn run(world: &World) -> ExperimentResults<'_> {
        let cfg = ExperimentConfig {
            origins: OriginId::MAIN.to_vec(),
            protocols: vec![Protocol::Https],
            trials: 3,
            ..Default::default()
        };
        Experiment::new(world, cfg).run().unwrap()
    }

    #[test]
    fn series_mass_equals_transient_misses_in_trial() {
        let world = WorldConfig::small(53).build();
        let r = run(&world);
        let panel = r.panel(Protocol::Https);
        let m = r.matrix(Protocol::Https, 0);
        // Sum over all ASes of series mass = per-trial transient misses.
        let mut per_as_total = 0.0;
        let mut ases: Vec<u32> = m.addrs.iter().map(|&a| world.as_index_of(a)).collect();
        ases.sort_unstable();
        ases.dedup();
        for ai in ases {
            per_as_total += hourly_missing_series(&world, &panel, m, 0, ai)
                .iter()
                .sum::<f64>();
        }
        let direct = crate::classify::trial_breakdown(&panel, 0, 0).transient as f64;
        assert_eq!(per_as_total, direct);
    }

    #[test]
    fn burst_share_in_paper_band() {
        let world = WorldConfig::small(53).build();
        let r = run(&world);
        let panel = r.panel(Protocol::Https);
        // Aggregate across origins/trials; paper band is 14–36% per
        // (origin, trial); allow a wider envelope at our scale.
        let mut fracs = Vec::new();
        for t in 0..3u8 {
            let m = r.matrix(Protocol::Https, t);
            for oi in 0..7 {
                let s = burst_share(&world, &panel, m, oi, 8);
                if s.transient_total >= 50 {
                    fracs.push(s.fraction());
                }
            }
        }
        assert!(!fracs.is_empty());
        let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
        assert!((0.03..0.6).contains(&mean), "mean burst share {mean}");
    }

    #[test]
    fn brazil_trial3_mega_burst_detected() {
        let world = WorldConfig::small(53).build();
        let r = run(&world);
        let panel = r.panel(Protocol::Https);
        let m = r.matrix(Protocol::Https, 2);
        let br = panel
            .origins
            .iter()
            .position(|&o| o == OriginId::Brazil)
            .unwrap();
        let s = burst_share(&world, &panel, m, br, 8);
        // The injected hour-14 event should make Brazil's trial-3 burst
        // share clearly nonzero.
        assert!(s.ases_with_bursts > 0, "{s:?}");
        assert!(
            s.fraction() > 0.05,
            "BR trial-3 burst share {}",
            s.fraction()
        );
    }
}
