//! Compact per-(origin, host, trial) scan outcome.
//!
//! A full experiment holds outcomes for millions of (origin, host, trial)
//! triples, so each one is packed into a single byte.

use originscan_scanner::zgrab::L7Outcome;
use originscan_scanner::CloseKind;
use originscan_scanner::HostScanRecord;

/// How an attempt to reach a ground-truth host failed (if it did).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// It didn't — the L7 handshake completed.
    None,
    /// No validated response to any probe (dropped/filtered).
    Silent,
    /// TCP handshake completed, then the peer sent RST.
    ClosedRst,
    /// TCP handshake completed, then the peer sent FIN-ACK.
    ClosedFin,
    /// TCP handshake completed, then the connection timed out.
    L7Timeout,
    /// The peer sent data that was not the expected protocol.
    ProtoErr,
}

/// Bit-packed outcome: bits 0–1 = per-probe SYN-ACK mask, bit 2 = L7
/// success, bits 3–5 = [`FailKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostOutcome(pub u8);

impl HostOutcome {
    /// The outcome recorded when an origin saw nothing at all.
    pub const MISSED: HostOutcome = HostOutcome(1 << 3); // FailKind::Silent

    /// Build from a scan record.
    pub fn from_record(r: &HostScanRecord) -> Self {
        let mut bits = r.synack_mask & 0b11;
        let kind = match &r.l7 {
            L7Outcome::Success(_) => {
                bits |= 1 << 2;
                FailKind::None
            }
            L7Outcome::ConnClosed(CloseKind::Rst) => FailKind::ClosedRst,
            L7Outcome::ConnClosed(CloseKind::FinAck) => FailKind::ClosedFin,
            L7Outcome::Timeout => {
                if r.synack_mask == 0 {
                    FailKind::Silent
                } else {
                    FailKind::L7Timeout
                }
            }
            L7Outcome::ProtocolError => FailKind::ProtoErr,
        };
        HostOutcome(bits | (kind as u8) << 3)
    }

    /// Did probe `i` (0 or 1) receive a validated SYN-ACK?
    pub fn probe_answered(self, i: u8) -> bool {
        self.0 & (1 << i) != 0
    }

    /// Any validated SYN-ACK?
    pub fn l4_responsive(self) -> bool {
        self.0 & 0b11 != 0
    }

    /// Did the application handshake complete?
    pub fn l7_success(self) -> bool {
        self.0 & (1 << 2) != 0
    }

    /// Covered in a simulated *single-probe* scan: the first probe must
    /// have been answered and the handshake completed.
    pub fn one_probe_success(self) -> bool {
        self.probe_answered(0) && self.l7_success()
    }

    /// Exactly one of the two probes answered (the §5.2 packet-drop
    /// estimator counts these hosts).
    pub fn exactly_one_probe(self) -> bool {
        (self.0 & 0b11).count_ones() == 1
    }

    /// The failure kind.
    pub fn fail_kind(self) -> FailKind {
        match (self.0 >> 3) & 0b111 {
            0 => FailKind::None,
            1 => FailKind::Silent,
            2 => FailKind::ClosedRst,
            3 => FailKind::ClosedFin,
            4 => FailKind::L7Timeout,
            _ => FailKind::ProtoErr,
        }
    }

    /// TCP established but the peer explicitly closed (RST or FIN).
    pub fn explicit_close(self) -> bool {
        matches!(self.fail_kind(), FailKind::ClosedRst | FailKind::ClosedFin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use originscan_scanner::zgrab::{L7Detail, L7Outcome};

    fn record(mask: u8, l7: L7Outcome) -> HostScanRecord {
        HostScanRecord {
            addr: 1,
            synack_mask: mask,
            got_rst: false,
            response_time_s: 0.0,
            l7,
            l7_attempts: 1,
        }
    }

    #[test]
    fn success_roundtrip() {
        let o = HostOutcome::from_record(&record(
            0b11,
            L7Outcome::Success(L7Detail::Http { code: 200 }),
        ));
        assert!(o.l7_success() && o.l4_responsive() && o.one_probe_success());
        assert_eq!(o.fail_kind(), FailKind::None);
        assert!(!o.exactly_one_probe());
    }

    #[test]
    fn single_probe_response_detected() {
        let o = HostOutcome::from_record(&record(
            0b10,
            L7Outcome::Success(L7Detail::Http { code: 200 }),
        ));
        assert!(o.exactly_one_probe());
        assert!(!o.one_probe_success(), "probe 0 unanswered");
        assert!(o.probe_answered(1) && !o.probe_answered(0));
    }

    #[test]
    fn close_kinds_preserved() {
        let rst = HostOutcome::from_record(&record(0b01, L7Outcome::ConnClosed(CloseKind::Rst)));
        assert_eq!(rst.fail_kind(), FailKind::ClosedRst);
        assert!(rst.explicit_close() && !rst.l7_success());
        let fin = HostOutcome::from_record(&record(0b01, L7Outcome::ConnClosed(CloseKind::FinAck)));
        assert_eq!(fin.fail_kind(), FailKind::ClosedFin);
    }

    #[test]
    fn missed_constant() {
        let m = HostOutcome::MISSED;
        assert!(!m.l4_responsive() && !m.l7_success());
        assert_eq!(m.fail_kind(), FailKind::Silent);
    }

    #[test]
    fn l7_timeout_vs_silent() {
        let t = HostOutcome::from_record(&record(0b01, L7Outcome::Timeout));
        assert_eq!(t.fail_kind(), FailKind::L7Timeout);
        let s = HostOutcome::from_record(&record(0b00, L7Outcome::Timeout));
        assert_eq!(s.fail_kind(), FailKind::Silent);
    }
}
