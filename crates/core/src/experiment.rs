//! The synchronized multi-origin experiment runner.
//!
//! §2 of the paper: all origins start each trial at the same time with
//! the *same ZMap seed*, so every scanner visits the same addresses at
//! approximately the same moment. We reproduce that literally: one scan
//! configuration per (protocol, trial), cloned per origin with only the
//! origin identity (and its source-IP count) changed, run in parallel
//! threads, then condensed into per-trial ground-truth matrices.
//!
//! # Supervision
//!
//! Real campaigns lose vantage points: processes crash, uplinks go dark,
//! pipelines stall. The runner therefore *supervises* every origin's
//! scan ([`supervise_scan`]) instead of letting one failure sink the
//! trial:
//!
//! * each origin runs inside `catch_unwind`, so a panicking scan (or a
//!   fault-injected kill) is contained to that origin;
//! * failed scans are retried up to [`SupervisorPolicy::max_retries`]
//!   times with capped exponential backoff *in simulated time* — the
//!   backoff is bookkeeping ([`OriginRun::sim_backoff_s`]) and never
//!   shifts probe timestamps, preserving determinism;
//! * the engine checkpoints into a [`CheckpointStore`] every
//!   [`SupervisorPolicy::checkpoint_every`] addresses, so a retry
//!   resumes mid-permutation instead of rescanning from zero;
//! * every origin's fate is recorded as a [`RunStatus`] that flows into
//!   [`TrialMatrix::statuses`] and the report, and origins that exhaust
//!   their retries are *excluded from ground truth* rather than
//!   invalidating the trial.

use crate::matrix::TrialMatrix;
use crate::results::ExperimentResults;
use originscan_netmodel::fault::{FaultPlan, FaultyNet, InjectedFault};
use originscan_netmodel::{OriginId, Protocol, SimNet, World};
use originscan_scanner::engine::{
    run_scan_session, CheckpointStore, FaultHook, ScanConfig, ScanOutput, ScanSession,
};
use originscan_scanner::error::ScanError;
use originscan_scanner::target::Network;
use originscan_telemetry::metrics::names;
use originscan_telemetry::{EventKind, Scope, Telemetry, Tracer};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Simulated trial duration: the paper's trials took ≈ 21 hours.
pub const TRIAL_DURATION_S: f64 = 21.0 * 3600.0;

/// Why an origin's scan produced no usable output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailCause {
    /// The scan thread panicked on its final allowed attempt.
    Panicked,
    /// An injected fault killed the scan on its final allowed attempt.
    Killed,
    /// The scan configuration failed validation (retrying cannot help).
    InvalidConfig,
}

/// Per-(origin, trial) outcome of the supervised runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// One clean attempt, full results.
    Completed,
    /// Interrupted `retries` times, then ran to completion (resuming
    /// from checkpoints where available). Results are complete.
    Resumed {
        /// Retry attempts consumed before success.
        retries: u32,
    },
    /// Ran to completion, but an injected network fault (outage window,
    /// reply tampering) degraded its view of the network. Results are
    /// usable but partial.
    Degraded {
        /// The fault kind that degraded this run.
        fault: InjectedFault,
        /// Retry attempts consumed (0 when only the network misbehaved).
        retries: u32,
    },
    /// Gave up after exhausting retries; no output. The origin is
    /// excluded from ground truth and reported as all-missed.
    Failed {
        /// The terminal failure.
        cause: FailCause,
    },
}

impl RunStatus {
    /// Did this run produce output records?
    pub fn has_output(&self) -> bool {
        !matches!(self, RunStatus::Failed { .. })
    }

    /// Completed on the first attempt with no injected degradation?
    pub fn is_clean(&self) -> bool {
        matches!(self, RunStatus::Completed)
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunStatus::Completed => write!(f, "completed"),
            RunStatus::Resumed { retries } => match retries {
                1 => write!(f, "resumed after 1 interruption"),
                n => write!(f, "resumed after {n} interruptions"),
            },
            RunStatus::Degraded { fault, retries } => {
                let kind = match fault {
                    InjectedFault::Outage => "vantage outage",
                    InjectedFault::ReplyTamper => "reply tampering",
                };
                match retries {
                    0 => write!(f, "degraded ({kind})"),
                    1 => write!(f, "degraded ({kind}, 1 retry)"),
                    n => write!(f, "degraded ({kind}, {n} retries)"),
                }
            }
            RunStatus::Failed { cause } => {
                let c = match cause {
                    FailCause::Panicked => "panicked",
                    FailCause::Killed => "killed by fault",
                    FailCause::InvalidConfig => "invalid config",
                };
                write!(f, "FAILED ({c})")
            }
        }
    }
}

/// Retry, backoff, and checkpoint policy of the supervisor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorPolicy {
    /// Retry attempts after the first failure (so `max_retries + 1`
    /// attempts total).
    pub max_retries: u32,
    /// First retry waits this long in *simulated* time; each further
    /// retry doubles it.
    pub backoff_base_s: f64,
    /// Ceiling on a single backoff step.
    pub backoff_cap_s: f64,
    /// Engine checkpoint cadence in addresses (0 disables resume; a
    /// failed origin then restarts from scratch).
    pub checkpoint_every: u64,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff_base_s: 60.0,
            backoff_cap_s: 900.0,
            checkpoint_every: 1024,
        }
    }
}

/// One origin's supervised scan: its fate plus (when successful) its raw
/// output.
#[derive(Debug, Clone)]
pub struct OriginRun {
    /// How the run ended.
    pub status: RunStatus,
    /// Attempts performed (1 = clean first run).
    pub attempts: u32,
    /// Simulated seconds spent in retry backoff. Pure bookkeeping: probe
    /// timestamps are *never* shifted by backoff, so a resumed scan stays
    /// bit-identical to an uninterrupted one.
    pub sim_backoff_s: f64,
    /// The scan output; `None` exactly when `status` is `Failed`.
    pub output: Option<ScanOutput>,
}

impl OriginRun {
    fn failed(cause: FailCause, attempts: u32, sim_backoff_s: f64) -> Self {
        Self {
            status: RunStatus::Failed { cause },
            attempts,
            sim_backoff_s,
            output: None,
        }
    }
}

/// Why an experiment could not produce results at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentError {
    /// The configuration lists no origins, no protocols, or zero trials.
    EmptyConfig,
    /// Every origin failed in one (protocol, trial): there is no ground
    /// truth to report against.
    AllOriginsFailed {
        /// The protocol of the dead trial.
        protocol: Protocol,
        /// The dead trial's index.
        trial: u8,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::EmptyConfig => {
                write!(
                    f,
                    "experiment config needs at least one origin, protocol, and trial"
                )
            }
            ExperimentError::AllOriginsFailed { protocol, trial } => {
                write!(f, "every origin failed in {protocol} trial {trial}")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Configuration of one experiment (a set of synchronized trials).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Vantage points, in reporting order.
    pub origins: Vec<OriginId>,
    /// Protocols to scan.
    pub protocols: Vec<Protocol>,
    /// Number of trials.
    pub trials: u8,
    /// Back-to-back SYN probes per address (paper: 2).
    pub probes: u8,
    /// Immediate L7 retries (paper baseline: 0).
    pub l7_retries: u8,
    /// Seconds between successive probes to the same address (paper
    /// baseline 0; §7 endorses delayed probes as a single-origin
    /// mitigation for correlated loss).
    pub probe_delay_s: f64,
    /// Base seed; trial `t` scans with `base_seed + t` (shared across
    /// origins within the trial, fresh permutation across trials).
    pub base_seed: u64,
    /// Simulated scan duration per trial.
    pub duration_s: f64,
    /// Round-trip packets through byte encodings (slower; exercises the
    /// wire codecs end to end).
    pub wire_check: bool,
    /// Injected fault schedule (`None`: fault-free run).
    pub faults: Option<FaultPlan>,
    /// Supervisor retry/backoff/checkpoint policy.
    pub policy: SupervisorPolicy,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            origins: OriginId::MAIN.to_vec(),
            protocols: originscan_scanner::probe::PAPER_PROTOCOLS.to_vec(),
            trials: 3,
            probes: 2,
            l7_retries: 0,
            probe_delay_s: 0.0,
            base_seed: 0xC0FFEE,
            duration_s: TRIAL_DURATION_S,
            wire_check: false,
            faults: None,
            policy: SupervisorPolicy::default(),
        }
    }
}

impl ExperimentConfig {
    /// The §7 follow-up experiment: HTTP only, two trials, the original
    /// single-IP origins plus Censys-from-fresh-ranges and the three
    /// collocated Tier-1 transits.
    pub fn follow_up(base_seed: u64) -> Self {
        Self {
            origins: OriginId::FOLLOW_UP.to_vec(),
            protocols: vec![Protocol::Http],
            trials: 2,
            probes: 2,
            base_seed,
            ..Self::default()
        }
    }
}

/// Supervise one scan to completion: run it under `catch_unwind`, retry
/// interrupted attempts up to `policy.max_retries` times with capped
/// exponential backoff in simulated time, and resume from the engine's
/// periodic checkpoints where available.
///
/// Invariants this function maintains (asserted by the integration
/// suite):
///
/// * A successful resumed run is bit-identical to an uninterrupted run —
///   checkpoints capture exact permutation/pacer/stall state, and
///   backoff never shifts probe timestamps.
/// * A panic in the scan (or the network model under it) is contained:
///   the caller always gets an [`OriginRun`], never an unwind.
///
/// When `telemetry` is set, the supervisor records its own lifecycle —
/// [`EventKind::AttemptFailed`], [`EventKind::RetryBackoff`],
/// [`EventKind::OriginFailed`] — plus attempt/retry counters, and
/// forwards the hub into the engine so scan-level events land in the
/// same stream. Supervisor events are stamped with the failed attempt's
/// simulated death time where the engine reports one (injected kills);
/// otherwise with the accumulated backoff clock (panics unwind past the
/// pacer, so no scan clock survives them).
pub fn supervise_scan(
    net: &dyn Network,
    cfg: &ScanConfig,
    hook: Option<&dyn FaultHook>,
    policy: &SupervisorPolicy,
    telemetry: Option<&Telemetry>,
) -> OriginRun {
    let scope = Scope::new(cfg.protocol.name(), cfg.trial, cfg.origin);
    let emit = |time_s: f64, kind: EventKind| {
        if let Some(hub) = telemetry {
            hub.emit(scope, time_s, kind);
        }
    };
    let count = |name: &'static str, delta: u64| {
        if let Some(hub) = telemetry {
            hub.add(scope, name, delta);
        }
    };
    let store = CheckpointStore::new();
    // The supervisor's own trace: a "supervise" root with one "attempt"
    // span per try and a "backoff" span per retry wait, all on the
    // accumulated-backoff clock (scan-internal time lives in the
    // engine's own trace, recorded separately under the same scope).
    let tracer = telemetry.map(|_| Tracer::sim());
    let sup_guard = tracer.as_ref().map(|t| t.span("supervise"));
    let mut attempts: u32 = 0;
    let mut sim_backoff_s = 0.0f64;
    loop {
        let attempt_start_s = sim_backoff_s;
        let session = ScanSession {
            hook,
            checkpoint_every: policy.checkpoint_every,
            store: Some(&store),
            resume: store.take(),
            attempt: attempts,
            telemetry,
        };
        let result = catch_unwind(AssertUnwindSafe(|| run_scan_session(net, cfg, session)));
        attempts += 1;
        count(names::SUP_ATTEMPTS, 1);
        let (cause, fail_time_s) = match result {
            Ok(Ok(output)) => {
                let status = if attempts > 1 {
                    RunStatus::Resumed {
                        retries: attempts - 1,
                    }
                } else {
                    RunStatus::Completed
                };
                if sim_backoff_s > 0.0 {
                    if let Some(hub) = telemetry {
                        hub.set_gauge(scope, names::SUP_BACKOFF_SECONDS, sim_backoff_s);
                    }
                }
                if let Some(tr) = &tracer {
                    let end = attempt_start_s + output.summary.duration_s;
                    tr.record_span("attempt", attempt_start_s, end);
                    tr.set_time(end);
                }
                drop(sup_guard);
                if let (Some(hub), Some(tr)) = (telemetry, tracer) {
                    hub.record_trace(scope, tr.finish());
                }
                return OriginRun {
                    status,
                    attempts,
                    sim_backoff_s,
                    output: Some(output),
                };
            }
            // Validation failures are permanent: retrying cannot help.
            Ok(Err(ScanError::Config(_))) => {
                emit(
                    sim_backoff_s,
                    EventKind::AttemptFailed {
                        attempt: attempts - 1,
                        cause: "invalid-config",
                    },
                );
                emit(
                    sim_backoff_s,
                    EventKind::OriginFailed {
                        cause: "invalid-config",
                    },
                );
                if let Some(tr) = &tracer {
                    tr.record_span("attempt", attempt_start_s, attempt_start_s);
                }
                drop(sup_guard);
                if let (Some(hub), Some(tr)) = (telemetry, tracer) {
                    hub.record_trace(scope, tr.finish());
                }
                return OriginRun::failed(FailCause::InvalidConfig, attempts, sim_backoff_s);
            }
            Ok(Err(ScanError::Killed { time_s, .. })) => (FailCause::Killed, time_s),
            Ok(Err(_)) => (FailCause::Killed, sim_backoff_s),
            Err(_) => (FailCause::Panicked, sim_backoff_s),
        };
        let cause_str = match cause {
            FailCause::Killed => "killed",
            _ => "panicked",
        };
        emit(
            fail_time_s,
            EventKind::AttemptFailed {
                attempt: attempts - 1,
                cause: cause_str,
            },
        );
        if let Some(tr) = &tracer {
            // Kills carry a scan-clock death time; panics do not. Clamp
            // to the attempt's start on the backoff clock either way.
            tr.record_span("attempt", attempt_start_s, attempt_start_s.max(fail_time_s));
        }
        if attempts > policy.max_retries {
            emit(fail_time_s, EventKind::OriginFailed { cause: cause_str });
            if sim_backoff_s > 0.0 {
                if let Some(hub) = telemetry {
                    hub.set_gauge(scope, names::SUP_BACKOFF_SECONDS, sim_backoff_s);
                }
            }
            if let Some(tr) = &tracer {
                tr.set_time(attempt_start_s.max(fail_time_s));
            }
            drop(sup_guard);
            if let (Some(hub), Some(tr)) = (telemetry, tracer) {
                hub.record_trace(scope, tr.finish());
            }
            return OriginRun::failed(cause, attempts, sim_backoff_s);
        }
        // Capped exponential backoff, in simulated time only.
        let exp = (attempts - 1).min(30) as i32;
        let step = (policy.backoff_base_s * 2f64.powi(exp)).min(policy.backoff_cap_s);
        sim_backoff_s += step;
        if let Some(tr) = &tracer {
            tr.record_span("backoff", sim_backoff_s - step, sim_backoff_s);
            tr.set_time(sim_backoff_s);
        }
        count(names::SUP_RETRIES, 1);
        emit(
            sim_backoff_s,
            EventKind::RetryBackoff {
                attempt: attempts,
                backoff_s: step,
            },
        );
    }
}

/// An experiment bound to a world.
#[derive(Debug, Clone)]
pub struct Experiment<'w> {
    world: &'w World,
    cfg: ExperimentConfig,
}

impl<'w> Experiment<'w> {
    /// Bind `cfg` to a world.
    pub fn new(world: &'w World, cfg: ExperimentConfig) -> Experiment<'w> {
        Experiment { world, cfg }
    }

    /// Run every (protocol, trial, origin) scan under supervision and
    /// condense the results. Origins that fail terminally are excluded
    /// from ground truth and carried as [`RunStatus::Failed`]; only an
    /// empty configuration or a trial with *no* surviving origin is an
    /// error.
    ///
    /// The whole experiment records into one [`Telemetry`] hub — engine
    /// lifecycle, supervisor retries, injected faults — whose snapshot is
    /// embedded in the returned [`ExperimentResults`]. Telemetry is keyed
    /// to simulated time and canonically ordered, so two runs of the same
    /// configuration carry byte-identical telemetry.
    pub fn run(&self) -> Result<ExperimentResults<'w>, ExperimentError> {
        let cfg = &self.cfg;
        if cfg.origins.is_empty() || cfg.protocols.is_empty() || cfg.trials == 0 {
            return Err(ExperimentError::EmptyConfig);
        }
        let hub = Telemetry::new();
        let mut matrices = Vec::new();
        for &proto in &cfg.protocols {
            for trial in 0..cfg.trials {
                let runs = self.run_trial(proto, trial, &hub);
                if runs.iter().all(|r| r.output.is_none()) {
                    return Err(ExperimentError::AllOriginsFailed {
                        protocol: proto,
                        trial,
                    });
                }
                matrices.push(TrialMatrix::build_supervised(
                    self.world,
                    proto,
                    trial,
                    &cfg.origins,
                    &runs,
                    cfg.duration_s,
                ));
            }
        }
        Ok(ExperimentResults::new(
            self.world,
            cfg.clone(),
            matrices,
            hub.into_snapshot(),
        ))
    }

    /// Run one (protocol, trial) across all origins, in parallel, each
    /// under its own supervisor.
    fn run_trial(&self, proto: Protocol, trial: u8, hub: &Telemetry) -> Vec<OriginRun> {
        let cfg = &self.cfg;
        let world = self.world;
        let net = SimNet::new(world, &cfg.origins, cfg.duration_s);
        let plan = cfg.faults.as_ref().filter(|p| !p.is_empty());
        let faulty = plan.map(|p| FaultyNet::new(&net, p, cfg.duration_s).with_telemetry(hub));
        let net_ref: &dyn Network = match &faulty {
            Some(f) => f,
            None => &net,
        };
        let plan_hook = plan.map(|p| p.hook(cfg.duration_s));
        let hook = plan_hook.as_ref().map(|h| h as &dyn FaultHook);
        let space = world.space();
        let rate = originscan_scanner::rate::rate_for_duration(
            space * u64::from(cfg.probes),
            cfg.duration_s,
        );
        let scan_cfg_for = |origin_idx: usize| -> ScanConfig {
            let spec = cfg.origins[origin_idx].spec();
            let mut c = ScanConfig::new(space, proto, cfg.base_seed + u64::from(trial));
            c.origin = origin_idx as u16;
            c.trial = trial;
            c.probes = cfg.probes;
            c.rate_pps = rate;
            c.l7_retries = cfg.l7_retries;
            c.probe_delay_s = cfg.probe_delay_s;
            c.concurrent_origins = cfg.origins.len() as u8;
            c.wire_check = cfg.wire_check;
            // US₆₄: a contiguous block of source addresses.
            c.source_ips = (0..spec.source_ips)
                .map(|i| 0x0a00_0100u32 + u32::from(i))
                .collect();
            c
        };
        let n = cfg.origins.len();
        let mut runs: Vec<Option<OriginRun>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            for (i, slot) in runs.iter_mut().enumerate() {
                let c = scan_cfg_for(i);
                s.spawn(move || {
                    *slot = Some(supervise_scan(net_ref, &c, hook, &cfg.policy, Some(hub)));
                });
            }
        });
        runs.into_iter()
            .enumerate()
            .map(|(i, slot)| {
                // `supervise_scan` cannot unwind, so the slot is always
                // filled; the fallback is pure defensiveness.
                let mut run =
                    slot.unwrap_or_else(|| OriginRun::failed(FailCause::Panicked, 0, 0.0));
                // Network-level faults degrade results without killing
                // the process; classify them from the plan.
                if run.output.is_some() {
                    if let Some(fault) = plan.and_then(|p| p.degradation(i as u16, trial)) {
                        let retries = match run.status {
                            RunStatus::Resumed { retries } => retries,
                            _ => 0,
                        };
                        run.status = RunStatus::Degraded { fault, retries };
                        let duration_s = run
                            .output
                            .as_ref()
                            .map_or(cfg.duration_s, |o| o.summary.duration_s);
                        hub.emit(
                            Scope::new(proto.name(), trial, i as u16),
                            duration_s,
                            EventKind::OriginDegraded {
                                fault: match fault {
                                    InjectedFault::Outage => "outage",
                                    InjectedFault::ReplyTamper => "reply-tamper",
                                },
                            },
                        );
                    }
                }
                run
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use originscan_netmodel::WorldConfig;
    use originscan_scanner::target::{L7Ctx, L7Reply, ProbeCtx, SynReply};
    use originscan_wire::tcp::TcpHeader;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn default_config_matches_paper() {
        let c = ExperimentConfig::default();
        assert_eq!(c.origins.len(), 7);
        assert_eq!(c.protocols.len(), 3);
        assert_eq!(c.trials, 3);
        assert_eq!(c.probes, 2);
        assert_eq!(c.duration_s, 75_600.0);
        assert!(c.faults.is_none());
        assert_eq!(c.policy.max_retries, 2);
    }

    #[test]
    fn small_experiment_runs_and_is_deterministic() {
        let world = WorldConfig::tiny(1).build();
        let cfg = ExperimentConfig {
            origins: vec![OriginId::Us1, OriginId::Japan],
            protocols: vec![Protocol::Http],
            trials: 2,
            ..Default::default()
        };
        let a = Experiment::new(&world, cfg.clone()).run().unwrap();
        let b = Experiment::new(&world, cfg).run().unwrap();
        for (ma, mb) in a.matrices().iter().zip(b.matrices()) {
            assert_eq!(ma.addrs, mb.addrs);
            assert_eq!(ma.outcomes, mb.outcomes);
            assert!(ma.statuses.iter().all(|s| s.is_clean()));
        }
        // Ground truth is non-trivial.
        assert!(a.matrices()[0].addrs.len() > 50);
    }

    #[test]
    fn followup_config() {
        let c = ExperimentConfig::follow_up(9);
        assert_eq!(c.origins.len(), 8);
        assert_eq!(c.protocols, vec![Protocol::Http]);
        assert_eq!(c.trials, 2);
    }

    #[test]
    fn empty_config_is_a_typed_error() {
        let world = WorldConfig::tiny(1).build();
        let cfg = ExperimentConfig {
            origins: vec![],
            ..Default::default()
        };
        assert_eq!(
            Experiment::new(&world, cfg).run().unwrap_err(),
            ExperimentError::EmptyConfig
        );
        let cfg = ExperimentConfig {
            trials: 0,
            ..Default::default()
        };
        assert_eq!(
            Experiment::new(&world, cfg).run().unwrap_err(),
            ExperimentError::EmptyConfig
        );
    }

    /// A network that panics the first time a chosen address is probed.
    struct PanicOnce<N> {
        inner: N,
        addr: u32,
        armed: AtomicBool,
    }

    impl<N: Network> Network for PanicOnce<N> {
        fn syn(&self, ctx: &ProbeCtx, probe: &TcpHeader) -> SynReply {
            if ctx.dst == self.addr && self.armed.swap(false, Ordering::SeqCst) {
                panic!("injected panic at {:#x}", self.addr);
            }
            self.inner.syn(ctx, probe)
        }
        fn l7(&self, ctx: &L7Ctx, req: &[u8]) -> L7Reply {
            self.inner.l7(ctx, req)
        }
    }

    #[test]
    fn supervisor_contains_panics_and_resumes() {
        let world = WorldConfig::tiny(5).build();
        let origins = [OriginId::Us1];
        let net = SimNet::new(&world, &origins, TRIAL_DURATION_S);
        let mut cfg = ScanConfig::new(world.space(), Protocol::Http, 77);
        cfg.rate_pps =
            originscan_scanner::rate::rate_for_duration(world.space() * 2, TRIAL_DURATION_S);
        let clean = supervise_scan(&net, &cfg, None, &SupervisorPolicy::default(), None);
        assert_eq!(clean.status, RunStatus::Completed);
        assert_eq!(clean.attempts, 1);
        assert_eq!(clean.sim_backoff_s, 0.0);

        // Panic mid-scan on some address the clean run saw late-ish.
        let victim = clean.output.as_ref().unwrap().records
            [clean.output.as_ref().unwrap().records.len() / 2]
            .addr;
        let panicky = PanicOnce {
            inner: net,
            addr: victim,
            armed: AtomicBool::new(true),
        };
        let run = supervise_scan(&panicky, &cfg, None, &SupervisorPolicy::default(), None);
        assert_eq!(run.status, RunStatus::Resumed { retries: 1 });
        assert_eq!(run.attempts, 2);
        assert!(
            run.sim_backoff_s > 0.0,
            "a retry must cost simulated backoff"
        );
        // Graceful degradation is *not* lossy here: resumed == clean.
        assert_eq!(run.output, clean.output);
    }

    /// A network that always panics.
    struct AlwaysPanics;
    impl Network for AlwaysPanics {
        fn syn(&self, _: &ProbeCtx, _: &TcpHeader) -> SynReply {
            panic!("wired to fail");
        }
        fn l7(&self, _: &L7Ctx, _: &[u8]) -> L7Reply {
            panic!("wired to fail");
        }
    }

    #[test]
    fn supervisor_gives_up_after_bounded_retries() {
        let cfg = ScanConfig::new(64, Protocol::Http, 1);
        let policy = SupervisorPolicy {
            max_retries: 3,
            ..Default::default()
        };
        let run = supervise_scan(&AlwaysPanics, &cfg, None, &policy, None);
        assert_eq!(
            run.status,
            RunStatus::Failed {
                cause: FailCause::Panicked
            }
        );
        assert_eq!(run.attempts, 4, "1 initial + 3 retries");
        assert!(run.output.is_none());
        // Backoff: 60 + 120 + 240, all under the 900 s cap.
        assert!((run.sim_backoff_s - 420.0).abs() < 1e-9);
    }

    #[test]
    fn backoff_is_capped() {
        let cfg = ScanConfig::new(64, Protocol::Http, 1);
        let policy = SupervisorPolicy {
            max_retries: 8,
            ..Default::default()
        };
        let run = supervise_scan(&AlwaysPanics, &cfg, None, &policy, None);
        // 60+120+240+480+900+900+900+900 = 4500.
        assert!((run.sim_backoff_s - 4500.0).abs() < 1e-9);
    }

    #[test]
    fn every_backoff_step_respects_the_simulated_time_cap() {
        // Deep retry ladders: attempts past the 2^30 exponent clamp must
        // still produce finite, capped steps — checked on the actual
        // RetryBackoff events, not just the accumulated total.
        let cfg = ScanConfig::new(64, Protocol::Http, 1);
        let policy = SupervisorPolicy {
            max_retries: 40,
            ..Default::default()
        };
        let hub = Telemetry::new();
        let run = supervise_scan(&AlwaysPanics, &cfg, None, &policy, Some(&hub));
        assert_eq!(run.attempts, 41);
        let snap = hub.into_snapshot();
        let mut steps = 0u32;
        for e in snap.events_for(Scope::new("HTTP", 0, 0)) {
            if let EventKind::RetryBackoff { backoff_s, .. } = e.kind {
                steps += 1;
                assert!(backoff_s.is_finite());
                assert!(
                    backoff_s > 0.0 && backoff_s <= policy.backoff_cap_s,
                    "step {steps} overflowed the cap: {backoff_s}"
                );
            }
        }
        assert_eq!(steps, 40, "one RetryBackoff event per retry");
        // 60 + 120 + 240 + 480 uncapped, then 36 × 900 at the cap.
        assert!((run.sim_backoff_s - (900.0 + 36.0 * 900.0)).abs() < 1e-9);

        // A cap below the base clamps every step to the cap.
        let policy = SupervisorPolicy {
            max_retries: 3,
            backoff_cap_s: 10.0,
            ..Default::default()
        };
        let run = supervise_scan(&AlwaysPanics, &cfg, None, &policy, None);
        assert!((run.sim_backoff_s - 30.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_config_fails_without_retries() {
        let mut cfg = ScanConfig::new(64, Protocol::Http, 1);
        cfg.probes = 0;
        let run = supervise_scan(
            &AlwaysPanics,
            &cfg,
            None,
            &SupervisorPolicy::default(),
            None,
        );
        assert_eq!(
            run.status,
            RunStatus::Failed {
                cause: FailCause::InvalidConfig
            }
        );
        assert_eq!(run.attempts, 1, "validation errors are not retried");
    }

    #[test]
    fn faulted_experiment_degrades_gracefully() {
        let world = WorldConfig::tiny(3).build();
        // Origin 1 (Japan) suffers an outage with recovery plus a crash;
        // origin 0 (US1) is untouched.
        let plan = FaultPlan::new(11)
            .outage(1, 0, 0.3, 0.6)
            .crash(1, 0, 0.35, 1);
        let base = ExperimentConfig {
            origins: vec![OriginId::Us1, OriginId::Japan],
            protocols: vec![Protocol::Http],
            trials: 1,
            ..Default::default()
        };
        let clean = Experiment::new(&world, base.clone()).run().unwrap();
        let faulted = Experiment::new(
            &world,
            ExperimentConfig {
                faults: Some(plan),
                ..base
            },
        )
        .run()
        .unwrap();
        let m = &faulted.matrices()[0];
        assert!(m.statuses[0].is_clean(), "US1 untouched: {}", m.statuses[0]);
        assert!(
            matches!(
                m.statuses[1],
                RunStatus::Degraded {
                    fault: InjectedFault::Outage,
                    retries: 1
                }
            ),
            "Japan crashed once and lost its outage window: {}",
            m.statuses[1]
        );
        // Japan's results are partial but present; the trial survived.
        assert!(m.seen_count(1) > 0);
        assert!(m.seen_count(1) < m.seen_count(0));
        // US1's view is identical to the fault-free experiment's.
        let mc = &clean.matrices()[0];
        let clean_us1: Vec<_> = mc.iter_origin(0).collect();
        let faulted_us1: Vec<_> = m
            .iter_origin(0)
            .filter(|(_, addr, _)| mc.index_of(*addr).is_some())
            .collect();
        // (Restricted to shared GT addrs: Japan's losses shrink GT.)
        assert_eq!(
            faulted_us1
                .iter()
                .map(|(_, a, o)| (*a, *o))
                .collect::<Vec<_>>(),
            clean_us1
                .iter()
                .filter(|(_, a, _)| m.index_of(*a).is_some())
                .map(|(_, a, o)| (*a, *o))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn unrecoverable_origin_reported_failed_but_trial_survives() {
        let world = WorldConfig::tiny(3).build();
        // Origin 1 crashes on every attempt the policy allows.
        let plan = FaultPlan::new(2).crash(1, 0, 0.2, u32::MAX);
        let cfg = ExperimentConfig {
            origins: vec![OriginId::Us1, OriginId::Japan],
            protocols: vec![Protocol::Http],
            trials: 1,
            faults: Some(plan),
            ..Default::default()
        };
        let results = Experiment::new(&world, cfg).run().unwrap();
        let m = &results.matrices()[0];
        assert_eq!(
            m.statuses[1],
            RunStatus::Failed {
                cause: FailCause::Killed
            }
        );
        assert_eq!(m.seen_count(1), 0, "failed origins are all-missed");
        assert!(m.statuses[0].is_clean());
        assert!(
            !m.is_empty(),
            "ground truth comes from the surviving origin"
        );
    }

    #[test]
    fn all_origins_failing_is_a_typed_error() {
        let world = WorldConfig::tiny(3).build();
        let plan = FaultPlan::new(2).crash(0, 0, 0.0, u32::MAX);
        let cfg = ExperimentConfig {
            origins: vec![OriginId::Us1],
            protocols: vec![Protocol::Http],
            trials: 1,
            faults: Some(plan),
            ..Default::default()
        };
        assert_eq!(
            Experiment::new(&world, cfg).run().unwrap_err(),
            ExperimentError::AllOriginsFailed {
                protocol: Protocol::Http,
                trial: 0
            }
        );
    }

    #[test]
    fn run_status_renders() {
        assert_eq!(RunStatus::Completed.to_string(), "completed");
        assert_eq!(
            RunStatus::Resumed { retries: 2 }.to_string(),
            "resumed after 2 interruptions"
        );
        assert!(RunStatus::Degraded {
            fault: InjectedFault::Outage,
            retries: 0
        }
        .to_string()
        .contains("vantage outage"));
        assert!(RunStatus::Failed {
            cause: FailCause::Panicked
        }
        .to_string()
        .contains("FAILED"));
    }
}
