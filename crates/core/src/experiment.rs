//! The synchronized multi-origin experiment runner.
//!
//! §2 of the paper: all origins start each trial at the same time with
//! the *same ZMap seed*, so every scanner visits the same addresses at
//! approximately the same moment. We reproduce that literally: one scan
//! configuration per (protocol, trial), cloned per origin with only the
//! origin identity (and its source-IP count) changed, run in parallel
//! threads, then condensed into per-trial ground-truth matrices.

use crate::matrix::TrialMatrix;
use crate::results::ExperimentResults;
use originscan_netmodel::{OriginId, Protocol, SimNet, World};
use originscan_scanner::engine::{run_scan, ScanConfig, ScanOutput};

/// Simulated trial duration: the paper's trials took ≈ 21 hours.
pub const TRIAL_DURATION_S: f64 = 21.0 * 3600.0;

/// Configuration of one experiment (a set of synchronized trials).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Vantage points, in reporting order.
    pub origins: Vec<OriginId>,
    /// Protocols to scan.
    pub protocols: Vec<Protocol>,
    /// Number of trials.
    pub trials: u8,
    /// Back-to-back SYN probes per address (paper: 2).
    pub probes: u8,
    /// Immediate L7 retries (paper baseline: 0).
    pub l7_retries: u8,
    /// Seconds between successive probes to the same address (paper
    /// baseline 0; §7 endorses delayed probes as a single-origin
    /// mitigation for correlated loss).
    pub probe_delay_s: f64,
    /// Base seed; trial `t` scans with `base_seed + t` (shared across
    /// origins within the trial, fresh permutation across trials).
    pub base_seed: u64,
    /// Simulated scan duration per trial.
    pub duration_s: f64,
    /// Round-trip packets through byte encodings (slower; exercises the
    /// wire codecs end to end).
    pub wire_check: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            origins: OriginId::MAIN.to_vec(),
            protocols: Protocol::ALL.to_vec(),
            trials: 3,
            probes: 2,
            l7_retries: 0,
            probe_delay_s: 0.0,
            base_seed: 0xC0FFEE,
            duration_s: TRIAL_DURATION_S,
            wire_check: false,
        }
    }
}

impl ExperimentConfig {
    /// The §7 follow-up experiment: HTTP only, two trials, the original
    /// single-IP origins plus Censys-from-fresh-ranges and the three
    /// collocated Tier-1 transits.
    pub fn follow_up(base_seed: u64) -> Self {
        Self {
            origins: OriginId::FOLLOW_UP.to_vec(),
            protocols: vec![Protocol::Http],
            trials: 2,
            probes: 2,
            base_seed,
            ..Self::default()
        }
    }
}

/// An experiment bound to a world.
#[derive(Debug, Clone)]
pub struct Experiment<'w> {
    world: &'w World,
    cfg: ExperimentConfig,
}

impl<'w> Experiment<'w> {
    /// Bind `cfg` to a world.
    pub fn new(world: &'w World, cfg: ExperimentConfig) -> Experiment<'w> {
        Experiment { world, cfg }
    }
    /// Run every (protocol, trial, origin) scan and condense the results.
    pub fn run(&self) -> ExperimentResults<'w> {
        let cfg = &self.cfg;
        assert!(!cfg.origins.is_empty() && !cfg.protocols.is_empty() && cfg.trials > 0);
        let mut matrices = Vec::new();
        for &proto in &cfg.protocols {
            for trial in 0..cfg.trials {
                let outputs = self.run_trial(proto, trial);
                matrices.push(TrialMatrix::build(
                    self.world,
                    proto,
                    trial,
                    &cfg.origins,
                    &outputs,
                    cfg.duration_s,
                ));
            }
        }
        ExperimentResults::new(self.world, cfg.clone(), matrices)
    }

    /// Run one (protocol, trial) across all origins, in parallel.
    fn run_trial(&self, proto: Protocol, trial: u8) -> Vec<ScanOutput> {
        let cfg = &self.cfg;
        let world = self.world;
        let net = SimNet::new(world, &cfg.origins, cfg.duration_s);
        let space = world.space();
        let rate = originscan_scanner::rate::rate_for_duration(
            space * u64::from(cfg.probes),
            cfg.duration_s,
        );
        let scan_cfg_for = |origin_idx: usize| -> ScanConfig {
            let spec = cfg.origins[origin_idx].spec();
            let mut c = ScanConfig::new(space, proto, cfg.base_seed + u64::from(trial));
            c.origin = origin_idx as u16;
            c.trial = trial;
            c.probes = cfg.probes;
            c.rate_pps = rate;
            c.l7_retries = cfg.l7_retries;
            c.probe_delay_s = cfg.probe_delay_s;
            c.concurrent_origins = cfg.origins.len() as u8;
            c.wire_check = cfg.wire_check;
            // US₆₄: a contiguous block of source addresses.
            c.source_ips = (0..spec.source_ips)
                .map(|i| 0x0a00_0100u32 + u32::from(i))
                .collect();
            c
        };
        let n = cfg.origins.len();
        let mut outputs: Vec<Option<ScanOutput>> = (0..n).map(|_| None).collect();
        crossbeam::thread::scope(|s| {
            for (i, slot) in outputs.iter_mut().enumerate() {
                let c = scan_cfg_for(i);
                let net_ref = &net;
                s.spawn(move |_| {
                    *slot = Some(run_scan(net_ref, &c));
                });
            }
        })
        .expect("scan thread panicked");
        outputs.into_iter().map(|o| o.expect("all scans ran")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use originscan_netmodel::WorldConfig;

    #[test]
    fn default_config_matches_paper() {
        let c = ExperimentConfig::default();
        assert_eq!(c.origins.len(), 7);
        assert_eq!(c.protocols.len(), 3);
        assert_eq!(c.trials, 3);
        assert_eq!(c.probes, 2);
        assert_eq!(c.duration_s, 75_600.0);
    }

    #[test]
    fn small_experiment_runs_and_is_deterministic() {
        let world = WorldConfig::tiny(1).build();
        let cfg = ExperimentConfig {
            origins: vec![OriginId::Us1, OriginId::Japan],
            protocols: vec![Protocol::Http],
            trials: 2,
            ..Default::default()
        };
        let a = Experiment::new(&world, cfg.clone()).run();
        let b = Experiment::new(&world, cfg).run();
        for (ma, mb) in a.matrices().iter().zip(b.matrices()) {
            assert_eq!(ma.addrs, mb.addrs);
            assert_eq!(ma.outcomes, mb.outcomes);
        }
        // Ground truth is non-trivial.
        assert!(a.matrices()[0].addrs.len() > 50);
    }

    #[test]
    fn followup_config() {
        let c = ExperimentConfig::follow_up(9);
        assert_eq!(c.origins.len(), 8);
        assert_eq!(c.protocols, vec![Protocol::Http]);
        assert_eq!(c.trials, 2);
    }
}
