//! Per-module sweeps: every registered probe module run through the
//! same multi-origin experiment, with coverage, exclusivity,
//! cross-module diff, and best-k analyses keyed by *module name*
//! rather than a hard-coded protocol trio.
//!
//! This is the analysis half of the probe-module plugin layer: the
//! paper's tables generalize to any module registered in
//! [`originscan_scanner::probe::modules`] with no per-protocol code
//! here. Adding a sixth module to the registry grows every table in
//! this file by one row automatically.

use crate::coverage::{coverage_table, mean_coverage};
use crate::exclusivity::exclusive_counts;
use crate::experiment::{Experiment, ExperimentConfig, ExperimentError};
use crate::multiorigin::best_k_union;
use crate::report::{count, pct, Table};
use crate::results::ExperimentResults;
use originscan_netmodel::World;
use originscan_scanner::probe::{modules, ProbeModule};
use originscan_store::ScanSet;
use std::fmt::Write as _;

/// One module's experiment inside a sweep.
#[derive(Debug)]
pub struct ModuleRun<'w> {
    /// The registered module; its [`name`](ProbeModule::name) keys every
    /// table, store entry, and telemetry scope derived from this run.
    pub module: &'static dyn ProbeModule,
    /// The module's full multi-origin experiment results.
    pub results: ExperimentResults<'w>,
}

impl ModuleRun<'_> {
    /// The module's stable name — the sweep's row key.
    pub fn name(&self) -> &'static str {
        self.module.name()
    }

    /// Union of addresses any origin saw in `trial` (the module's view
    /// of its population).
    pub fn union_set(&self, trial: u8) -> ScanSet {
        let m = self.results.matrix(self.module.protocol(), trial);
        let mut union = ScanSet::new();
        for set in &m.seen_sets {
            union = union.or(set);
        }
        union
    }
}

/// Every registered module's experiment, in registry order.
#[derive(Debug)]
pub struct ModuleSweep<'w> {
    runs: Vec<ModuleRun<'w>>,
}

/// Coverage summary for one module: per-origin mean coverage across
/// trials plus the trial-averaged ground-truth size.
#[derive(Debug, Clone)]
pub struct ModuleCoverage {
    /// Module name (row key).
    pub module: &'static str,
    /// Mean coverage fraction per origin, roster order.
    pub fractions: Vec<f64>,
    /// Ground-truth union of the mean row (addresses).
    pub union: usize,
}

/// Set relation between two modules' trial-0 populations.
#[derive(Debug, Clone)]
pub struct ModuleDiff {
    /// First module name.
    pub a: &'static str,
    /// Second module name.
    pub b: &'static str,
    /// Addresses both modules found.
    pub both: u64,
    /// Addresses only the first module found.
    pub only_a: u64,
    /// Addresses only the second module found.
    pub only_b: u64,
}

/// The best `k`-origin combination for one module.
#[derive(Debug, Clone)]
pub struct ModuleBestK {
    /// Module name (row key).
    pub module: &'static str,
    /// Winning origin labels, roster order.
    pub origins: Vec<String>,
    /// Addresses covered by the winning union.
    pub covered: u64,
}

/// Run every registered probe module through `base` (its `protocols`
/// field is replaced per module) against one shared world. Origins,
/// trials, seed, and duration are common across modules, so rows are
/// directly comparable.
pub fn sweep_modules<'w>(
    world: &'w World,
    base: &ExperimentConfig,
) -> Result<ModuleSweep<'w>, ExperimentError> {
    let mut runs = Vec::with_capacity(modules().len());
    for &module in modules() {
        let cfg = ExperimentConfig {
            protocols: vec![module.protocol()],
            ..base.clone()
        };
        let results = Experiment::new(world, cfg).run()?;
        runs.push(ModuleRun { module, results });
    }
    Ok(ModuleSweep { runs })
}

impl<'w> ModuleSweep<'w> {
    /// All runs, registry order.
    pub fn runs(&self) -> &[ModuleRun<'w>] {
        &self.runs
    }

    /// Look a run up by module name.
    pub fn get(&self, name: &str) -> Option<&ModuleRun<'w>> {
        self.runs.iter().find(|r| r.name() == name)
    }

    /// Per-module mean coverage, keyed by module name.
    pub fn coverage(&self) -> Vec<ModuleCoverage> {
        self.runs
            .iter()
            .map(|run| {
                let proto = run.module.protocol();
                let rows = coverage_table(&run.results, proto);
                let mean = rows
                    .iter()
                    .find(|r| r.trial.is_none())
                    .expect("coverage_table always emits a mean row");
                ModuleCoverage {
                    module: run.name(),
                    fractions: mean.fractions.clone(),
                    union: mean.union,
                }
            })
            .collect()
    }

    /// Per-module exclusive-accessibility percentages (share of ground
    /// truth only one origin could reach), keyed by module name.
    pub fn exclusivity(&self) -> Vec<(&'static str, Vec<f64>)> {
        self.runs
            .iter()
            .map(|run| {
                let panel = run.results.panel(run.module.protocol());
                let (accessible, _inaccessible) = exclusive_counts(&panel).percentages();
                (run.name(), accessible)
            })
            .collect()
    }

    /// The best `k`-origin combination per module over trial-0 scan
    /// sets, keyed by module name. Skips `k` larger than the roster.
    pub fn best_k(&self, k: usize) -> Vec<ModuleBestK> {
        self.runs
            .iter()
            .filter_map(|run| {
                let m = run.results.matrix(run.module.protocol(), 0);
                let sets: Vec<&ScanSet> = m.seen_sets.iter().collect();
                let (combo, covered) = best_k_union(&sets, k)?;
                let origins = combo
                    .iter()
                    .map(|&i| run.results.config().origins[i].to_string())
                    .collect();
                Some(ModuleBestK {
                    module: run.name(),
                    origins,
                    covered,
                })
            })
            .collect()
    }

    /// Pairwise trial-0 population diffs between all modules, registry
    /// order, keyed by the two module names.
    pub fn diffs(&self) -> Vec<ModuleDiff> {
        let unions: Vec<(&'static str, ScanSet)> = self
            .runs
            .iter()
            .map(|run| (run.name(), run.union_set(0)))
            .collect();
        let mut out = Vec::new();
        for (i, (a, sa)) in unions.iter().enumerate() {
            for (b, sb) in unions.iter().skip(i + 1) {
                out.push(ModuleDiff {
                    a,
                    b,
                    both: sa.intersection_cardinality(sb),
                    only_a: sa.andnot_cardinality(sb),
                    only_b: sb.andnot_cardinality(sa),
                });
            }
        }
        out
    }

    /// Render the whole sweep as text: one coverage/best-k row per
    /// module plus the cross-module population overlap table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let first = match self.runs.first() {
            Some(r) => r,
            None => return out,
        };
        let cfg = first.results.config();
        let _ = writeln!(
            out,
            "per-module sweep — {} modules, {} origins, {} trials\n",
            self.runs.len(),
            cfg.origins.len(),
            cfg.trials,
        );

        let mut t = Table::new(
            ["module", "wire id", "port", "mode", "∪"]
                .into_iter()
                .map(String::from)
                .chain(cfg.origins.iter().map(|o| o.to_string())),
        );
        let coverage = self.coverage();
        for (run, cov) in self.runs.iter().zip(&coverage) {
            t.row(
                [
                    run.name().to_string(),
                    run.module.wire_name().to_string(),
                    run.module.port().to_string(),
                    if run.module.stateless() {
                        "stateless".to_string()
                    } else {
                        "syn+zgrab".to_string()
                    },
                    count(cov.union),
                ]
                .into_iter()
                .chain(cov.fractions.iter().map(|&f| pct(f))),
            );
        }
        let _ = writeln!(out, "mean coverage of ground truth:\n{}", t.render());

        let mut t = Table::new(["module", "best-2 origins", "covered"]);
        for row in self.best_k(2) {
            t.row([
                row.module.to_string(),
                row.origins.join(" + "),
                count(row.covered as usize),
            ]);
        }
        let _ = writeln!(out, "best 2-origin combination (trial 1):\n{}", t.render());

        let mut t = Table::new(["pair", "both", "only first", "only second"]);
        for d in self.diffs() {
            t.row([
                format!("{} ∩ {}", d.a, d.b),
                count(d.both as usize),
                count(d.only_a as usize),
                count(d.only_b as usize),
            ]);
        }
        let _ = writeln!(
            out,
            "cross-module population overlap (trial 1):\n{}",
            t.render()
        );
        out
    }
}

/// Mean coverage for one (module, origin) pair, by module name; `None`
/// for unregistered names.
pub fn module_mean_coverage(
    sweep: &ModuleSweep<'_>,
    name: &str,
    origin: originscan_netmodel::OriginId,
) -> Option<f64> {
    let run = sweep.get(name)?;
    Some(mean_coverage(&run.results, run.module.protocol(), origin))
}

#[cfg(test)]
mod tests {
    use super::*;
    use originscan_netmodel::{OriginId, WorldConfig};

    fn sweep(world: &World) -> ModuleSweep<'_> {
        let base = ExperimentConfig {
            origins: vec![OriginId::Us1, OriginId::Germany, OriginId::Brazil],
            trials: 2,
            ..Default::default()
        };
        sweep_modules(world, &base).unwrap()
    }

    #[test]
    fn sweep_covers_every_registered_module() {
        let world = WorldConfig::tiny(71).build();
        let s = sweep(&world);
        let names: Vec<&str> = s.runs().iter().map(|r| r.name()).collect();
        let registry: Vec<&str> = modules().iter().map(|m| m.name()).collect();
        assert_eq!(names, registry);
        assert!(s.get("ICMP").is_some());
        assert!(s.get("GOPHER").is_none());
        // Every module found someone and the analyses key by name.
        for cov in s.coverage() {
            assert!(cov.union > 0, "{} saw nobody", cov.module);
            assert_eq!(cov.fractions.len(), 3);
        }
        assert_eq!(s.exclusivity().len(), registry.len());
        assert_eq!(s.best_k(2).len(), registry.len());
    }

    #[test]
    fn icmp_population_dominates_the_tcp_rows() {
        // The world makes every TCP-trio host pingable plus a tail, so
        // the ICMP row's ground truth must be the largest TCP-ish one.
        let world = WorldConfig::tiny(72).build();
        let s = sweep(&world);
        let union_of = |name: &str| {
            s.coverage()
                .iter()
                .find(|c| c.module == name)
                .map(|c| c.union)
                .unwrap()
        };
        assert!(union_of("ICMP") > union_of("HTTP"));
        assert!(union_of("ICMP") > union_of("SSH"));
        // DNS resolvers are the sparsest roster in the preset.
        assert!(union_of("DNS") < union_of("HTTP"));
    }

    #[test]
    fn diffs_and_render_key_by_module_name() {
        let world = WorldConfig::tiny(73).build();
        let s = sweep(&world);
        let diffs = s.diffs();
        // 5 modules → C(5,2) pairs, registry order.
        assert_eq!(diffs.len(), 10);
        let hh = diffs
            .iter()
            .find(|d| d.a == "HTTP" && d.b == "ICMP")
            .unwrap();
        // Trio hosts always ping: HTTP's trial-0 view overlaps ICMP's.
        assert!(hh.both > 0);
        let text = s.render();
        for m in modules() {
            assert!(text.contains(m.name()), "render misses {}", m.name());
            assert!(
                text.contains(m.wire_name()),
                "render misses {}",
                m.wire_name()
            );
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let world = WorldConfig::tiny(74).build();
        let a = sweep(&world).render();
        let b = sweep(&world).render();
        assert_eq!(a, b);
    }
}
