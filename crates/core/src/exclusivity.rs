//! Exclusive accessibility and inaccessibility (Table 1, Figs 3, 6, 7, 8).
//!
//! * Fig 3 / Fig 8: for hosts that are long-term (resp. transiently)
//!   inaccessible from ≥ 1 origin, from *how many* origins are they
//!   missed?
//! * Table 1: of the hosts exclusively (in)accessible from a single
//!   origin, which origin is it?
//! * Fig 6 / Fig 7: where (country / AS) do the exclusively accessible
//!   hosts live?

use crate::classify::{classify, Class};
use crate::results::Panel;
use originscan_netmodel::geo::Country;
use originscan_netmodel::World;
use originscan_store::ScanSet;
use std::collections::BTreeMap;

/// Histogram over "number of origins missing the host" for hosts of the
/// given class (Fig 3 uses `Class::LongTerm`, Fig 8 `Class::Transient`).
///
/// Index `k` holds the number of hosts missed (with that class) by
/// exactly `k+1` origins.
pub fn miss_overlap_histogram(panel: &Panel, class: Class) -> Vec<usize> {
    let n_origins = panel.origins.len();
    let mut hist = vec![0usize; n_origins];
    for u in 0..panel.len() {
        let missing = (0..n_origins)
            .filter(|&oi| classify(panel, oi, u) == class)
            .count();
        if missing > 0 {
            hist[missing - 1] += 1;
        }
    }
    hist
}

/// Per-origin counts of exclusively accessible / exclusively long-term
/// inaccessible hosts (the two halves of Table 1).
#[derive(Debug, Clone)]
pub struct ExclusiveCounts {
    /// `exclusive_accessible[oi]`: hosts only this origin ever saw.
    pub exclusive_accessible: Vec<usize>,
    /// `exclusive_inaccessible[oi]`: hosts long-term missed by only this
    /// origin.
    pub exclusive_inaccessible: Vec<usize>,
}

impl ExclusiveCounts {
    /// Table-1 style percentages (each column normalized by its total).
    pub fn percentages(&self) -> (Vec<f64>, Vec<f64>) {
        let norm = |v: &[usize]| {
            let total: usize = v.iter().sum();
            v.iter()
                .map(|&x| {
                    if total == 0 {
                        0.0
                    } else {
                        100.0 * x as f64 / total as f64
                    }
                })
                .collect()
        };
        (
            norm(&self.exclusive_accessible),
            norm(&self.exclusive_inaccessible),
        )
    }
}

/// Addresses in `sets[origin_idx]` and no other set — the bitmap kernel
/// behind both halves of Table 1: `own ∖ ⋃(others)`.
fn exclusive_set(sets: &[ScanSet], origin_idx: usize) -> ScanSet {
    let others: Vec<&ScanSet> = sets
        .iter()
        .enumerate()
        .filter(|&(oi, _)| oi != origin_idx)
        .map(|(_, s)| s)
        .collect();
    sets[origin_idx].andnot(&ScanSet::union_many(&others))
}

/// Compute Table 1's inputs — ANDNOT popcounts over the panel's bitmaps.
pub fn exclusive_counts(panel: &Panel) -> ExclusiveCounts {
    let n = panel.origins.len();
    ExclusiveCounts {
        // Exclusively accessible: only this origin ever saw the host.
        exclusive_accessible: (0..n)
            .map(|oi| exclusive_set(&panel.ever_seen_sets, oi).cardinality() as usize)
            .collect(),
        // Exclusively long-term inaccessible: only this origin long-term
        // misses it.
        exclusive_inaccessible: (0..n)
            .map(|oi| exclusive_set(&panel.longterm_sets, oi).cardinality() as usize)
            .collect(),
    }
}

/// Hosts exclusively accessible from `origin_idx`, as union indices
/// (ascending — the bitmap yields addresses sorted, and the union list is
/// sorted too, so the index mapping preserves the old iteration order).
pub fn exclusive_hosts(panel: &Panel, origin_idx: usize) -> Vec<usize> {
    exclusive_set(&panel.ever_seen_sets, origin_idx)
        .iter()
        .filter_map(|addr| panel.addrs.binary_search(&addr).ok())
        .collect()
}

/// Fig 6 cell: exclusively accessible hosts of one origin, bucketed by
/// destination country. Returns `(country, count)` sorted descending.
pub fn exclusive_by_country(
    world: &World,
    panel: &Panel,
    origin_idx: usize,
) -> Vec<(Country, usize)> {
    let mut counts: BTreeMap<Country, usize> = BTreeMap::new();
    for u in exclusive_hosts(panel, origin_idx) {
        *counts.entry(world.country_of(panel.addrs[u])).or_default() += 1;
    }
    let mut v: Vec<(Country, usize)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// Fig 7: exclusively accessible hosts of one origin bucketed by AS name,
/// `(as_name, count)` sorted descending.
pub fn exclusive_by_as(world: &World, panel: &Panel, origin_idx: usize) -> Vec<(String, usize)> {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for u in exclusive_hosts(panel, origin_idx) {
        *counts.entry(world.as_index_of(panel.addrs[u])).or_default() += 1;
    }
    let mut v: Vec<(String, usize)> = counts
        .into_iter()
        .map(|(ai, c)| (world.ases[ai as usize].name.clone(), c))
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// Fraction of a country's hosts that are exclusively accessible from an
/// origin *in* that country (the dark-green cells of Fig 6).
pub fn within_country_exclusive_fraction(world: &World, panel: &Panel, origin_idx: usize) -> f64 {
    let origin_cc = panel.origins[origin_idx].spec().country;
    let total_in_cc = (0..panel.len())
        .filter(|&u| world.country_of(panel.addrs[u]) == origin_cc)
        .count();
    if total_in_cc == 0 {
        return 0.0;
    }
    let excl_in_cc = exclusive_hosts(panel, origin_idx)
        .into_iter()
        .filter(|&u| world.country_of(panel.addrs[u]) == origin_cc)
        .count();
    excl_in_cc as f64 / total_in_cc as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentConfig};
    use originscan_netmodel::{geo, OriginId, Protocol, WorldConfig};

    fn panel(world: &World) -> Panel {
        let cfg = ExperimentConfig {
            origins: OriginId::MAIN.to_vec(),
            protocols: vec![Protocol::Http],
            trials: 3,
            ..Default::default()
        };
        Experiment::new(world, cfg)
            .run()
            .unwrap()
            .panel(Protocol::Http)
    }

    #[test]
    fn histogram_mass_bounded_by_hosts() {
        let world = WorldConfig::tiny(29).build();
        let p = panel(&world);
        let hist = miss_overlap_histogram(&p, Class::LongTerm);
        assert_eq!(hist.len(), 7);
        assert!(hist.iter().sum::<usize>() <= p.len());
    }

    #[test]
    fn censys_dominates_exclusive_inaccessible() {
        let world = WorldConfig::small(29).build();
        let p = panel(&world);
        let ex = exclusive_counts(&p);
        let cen = p
            .origins
            .iter()
            .position(|&o| o == OriginId::Censys)
            .unwrap();
        let (_, inacc_pct) = ex.percentages();
        // Table 1: Censys holds 83% of exclusively inaccessible HTTP hosts.
        assert!(
            inacc_pct[cen] > 50.0,
            "Censys share of exclusive inaccessibility: {}",
            inacc_pct[cen]
        );
    }

    #[test]
    fn us64_leads_exclusive_accessible() {
        let world = WorldConfig::small(29).build();
        let p = panel(&world);
        let ex = exclusive_counts(&p);
        let us64 = p.origins.iter().position(|&o| o == OriginId::Us64).unwrap();
        let max = *ex.exclusive_accessible.iter().max().unwrap();
        assert_eq!(
            ex.exclusive_accessible[us64], max,
            "US64 should see the most exclusive hosts: {:?}",
            ex.exclusive_accessible
        );
    }

    #[test]
    fn australia_exclusive_hosts_include_webcentral() {
        let world = WorldConfig::small(29).build();
        let p = panel(&world);
        let au = p
            .origins
            .iter()
            .position(|&o| o == OriginId::Australia)
            .unwrap();
        let by_as = exclusive_by_as(&world, &p, au);
        assert!(!by_as.is_empty());
        let top: &str = &by_as[0].0;
        assert_eq!(top, "WebCentral", "AU exclusives dominated by {top}");
        let frac = within_country_exclusive_fraction(&world, &p, au);
        assert!(frac > 0.001, "within-AU exclusive fraction {frac}");
    }

    #[test]
    fn japan_exclusive_hosts_span_bekkoame_and_gateway() {
        let world = WorldConfig::small(29).build();
        let p = panel(&world);
        let jp = p
            .origins
            .iter()
            .position(|&o| o == OriginId::Japan)
            .unwrap();
        let by_as = exclusive_by_as(&world, &p, jp);
        let names: Vec<&str> = by_as.iter().map(|(n, _)| n.as_str()).collect();
        assert!(
            names.contains(&"Bekkoame Internet") || names.contains(&"NTT Communications"),
            "JP exclusives: {names:?}"
        );
        // Gateway Inc geolocates to the US → JP's exclusive-country list
        // should include the US (the paper's curiosity).
        let by_cc = exclusive_by_country(&world, &p, jp);
        assert!(by_cc.iter().any(|&(c, _)| c == geo::US), "{by_cc:?}");
    }

    #[test]
    fn exclusive_sets_disjoint_across_origins() {
        let world = WorldConfig::tiny(29).build();
        let p = panel(&world);
        #[allow(clippy::disallowed_types)] // membership check only in a test
        let mut seen = std::collections::HashSet::new();
        for oi in 0..p.origins.len() {
            for u in exclusive_hosts(&p, oi) {
                assert!(seen.insert(u), "host {u} exclusive to two origins");
            }
        }
    }
}
