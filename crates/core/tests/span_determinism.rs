//! Same-seed experiments must carry byte-identical span traces.
//!
//! The span tracer shares the determinism contract of the rest of the
//! telemetry hub: library code times spans on the simulated clock, so
//! two runs of the same configuration serialize the same JSONL down to
//! the byte. (Serve's wall-clock request traces are exempt by design —
//! they never reach a hub; `crates/serve` pins their *structure* only.)

use originscan_core::experiment::{Experiment, ExperimentConfig};
use originscan_netmodel::{OriginId, Protocol, WorldConfig};

fn run_spans() -> String {
    let world = WorldConfig::tiny(7).build();
    let cfg = ExperimentConfig {
        origins: vec![OriginId::Us1, OriginId::Germany],
        protocols: vec![Protocol::Http],
        trials: 2,
        ..Default::default()
    };
    let results = Experiment::new(&world, cfg).run().expect("experiment");
    results.telemetry().spans_jsonl()
}

#[test]
fn same_seed_span_jsonl_is_byte_identical() {
    let a = run_spans();
    let b = run_spans();
    assert!(!a.is_empty(), "experiment recorded no spans");
    assert_eq!(a, b, "span JSONL differs between same-seed runs");
}

#[test]
fn spans_cover_supervisor_and_scan_phases() {
    let jsonl = run_spans();
    for name in [
        "\"name\":\"supervise\"",
        "\"name\":\"attempt\"",
        "\"name\":\"scan\"",
        "\"name\":\"probe\"",
        "\"name\":\"permute\"",
    ] {
        assert!(jsonl.contains(name), "missing span {name} in:\n{jsonl}");
    }
    // Every hub-recorded span is sim-clocked; wall clocks are confined
    // to the serve trace ring and never appear here.
    for line in jsonl.lines() {
        assert!(
            line.contains("\"clock\":\"sim\""),
            "non-sim span reached the hub: {line}"
        );
    }
}

#[test]
fn experiment_profile_nests_probe_under_scan() {
    let world = WorldConfig::tiny(7).build();
    let cfg = ExperimentConfig {
        origins: vec![OriginId::Us1],
        protocols: vec![Protocol::Http],
        trials: 1,
        ..Default::default()
    };
    let results = Experiment::new(&world, cfg).run().expect("experiment");
    let profile = results.telemetry().profile();
    let scan = profile.node("scan").expect("scan node");
    let probe = profile.node("scan/probe").expect("probe under scan");
    assert!(scan.total_s > 0.0);
    assert!(probe.total_s <= scan.total_s * (1.0 + 1e-9));
    // The probe loop dominates a clean scan: the flame tree should
    // attribute nearly all scan time to it.
    assert!(
        probe.total_s >= scan.total_s * 0.5,
        "probe {probe:?} vs scan {scan:?}"
    );
}
