//! # originscan
//!
//! A faithful, laptop-scale reproduction of **"On the Origin of Scanning:
//! The Impact of Location on Internet-Wide Scans"** (Wan et al., ACM IMC
//! 2020) as a Rust library.
//!
//! The paper measures how the network a scan *originates from* biases the
//! set of hosts an Internet-wide IPv4 scan can see. This workspace rebuilds
//! the entire measurement apparatus against a deterministic simulated
//! Internet:
//!
//! * [`netmodel`] — the synthetic IPv4 universe: countries, ASes, /24
//!   networks, hosts, churn, scan origins, path loss, burst outages, and
//!   every blocking mechanism §4–§6 of the paper identifies.
//! * [`scanner`] — a ZMap-style stateless SYN scanner (cyclic-group address
//!   permutation, stateless validation, blocklists, sharding) plus
//!   ZGrab-style HTTP/TLS/SSH application handshakes.
//! * [`wire`] — the packet codecs underneath the scanner.
//! * [`stats`] — the statistical machinery: McNemar's test, Spearman's ρ,
//!   chi-square / normal CDFs, burst outlier detection, quantiles.
//! * [`telemetry`] — deterministic observability: structured events keyed
//!   to simulated time, a metrics registry, JSONL export, and per-origin
//!   scan timelines. Byte-identical across same-seed runs.
//! * [`store`] — compressed scan-set storage: roaring-style bitmaps over
//!   the simulated address space with word-level set-operation kernels,
//!   persisted per `(protocol, trial, origin)` in a versioned,
//!   checksummed, byte-deterministic format with a lazy chunk-granular
//!   reader.
//! * [`plan`] — the topology-aware target planner: learns a compressed
//!   /24-granular allowlist ([`plan::TargetPlan`]) from prior scan-set
//!   stores plus the announced-prefix/AS structure, scoring prefixes by
//!   observed density and cross-trial churn so later scans probe a
//!   fraction of the space at near-identical coverage.
//! * [`serve`] — a sharded query engine and hand-rolled HTTP/1.1 server
//!   over stored scan sets: typed queries (`coverage`, `diff`,
//!   `exclusive`, `best-k`, point lookups) behind LRU caches, with
//!   deterministic JSON responses.
//! * [`core`] — the experiment runner and every analysis in the paper:
//!   coverage, transient/long-term classification, exclusivity, country and
//!   AS breakdowns, packet-loss estimation, SSH behaviour, and multi-origin
//!   coverage.
//!
//! ## Quickstart
//!
//! ```
//! use originscan::core::experiment::{Experiment, ExperimentConfig};
//! use originscan::netmodel::world::WorldConfig;
//! use originscan::netmodel::origin::OriginId;
//! use originscan::netmodel::host::Protocol;
//!
//! // A small world: 2^16 addresses, deterministic from the seed.
//! let world = WorldConfig::tiny(7).build();
//! let cfg = ExperimentConfig {
//!     origins: vec![OriginId::Us1, OriginId::Japan],
//!     protocols: vec![Protocol::Http],
//!     trials: 2,
//!     probes: 2,
//!     ..ExperimentConfig::default()
//! };
//! let results = Experiment::new(&world, cfg).run().unwrap();
//! let cov = results.coverage(Protocol::Http, 0, OriginId::Us1);
//! assert!(cov.fraction() > 0.8, "origin should see most ground-truth hosts");
//! ```

pub mod cli;

pub use originscan_core as core;
pub use originscan_netmodel as netmodel;
pub use originscan_plan as plan;
pub use originscan_scanner as scanner;
pub use originscan_serve as serve;
pub use originscan_stats as stats;
pub use originscan_store as store;
pub use originscan_telemetry as telemetry;
pub use originscan_wire as wire;
