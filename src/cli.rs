//! Command-line interface for the `originscan` binary.
//!
//! Hand-rolled parsing (the only CLI surface is a handful of flags, not
//! worth a dependency). The parser is a pure function so it is unit
//! tested exhaustively; the binary in `src/bin/originscan.rs` just maps
//! the parsed command onto library calls.

use crate::netmodel::{OriginId, Protocol, WorldConfig};

/// What the user asked for.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run an experiment and print the full report.
    Report(RunArgs),
    /// Run an experiment and dump one origin's scan records as CSV.
    Scan(RunArgs),
    /// Print the world's AS inventory as TSV.
    Inventory {
        /// World scale.
        scale: Scale,
        /// World seed.
        seed: u64,
    },
    /// Diff two archived scan CSVs (paths), with AS attribution from the
    /// world identified by scale/seed.
    Diff {
        /// First CSV path.
        a: String,
        /// Second CSV path.
        b: String,
        /// World scale (for AS attribution; must match the scan's world).
        scale: Scale,
        /// World seed (ditto).
        seed: u64,
    },
    /// Print usage.
    Help,
}

/// Common run parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// World scale.
    pub scale: Scale,
    /// World seed.
    pub seed: u64,
    /// Origins to scan from.
    pub origins: Vec<OriginId>,
    /// Protocols to scan.
    pub protocols: Vec<Protocol>,
    /// Number of trials.
    pub trials: u8,
    /// Probes per host.
    pub probes: u8,
    /// Inter-probe delay in seconds.
    pub probe_delay_s: f64,
    /// Optional target-plan file: every scan probes only the plan's /24
    /// allowlist (composed with the blocklist and sharding).
    pub plan: Option<String>,
}

impl Default for RunArgs {
    fn default() -> Self {
        Self {
            scale: Scale::Tiny,
            seed: 2020,
            origins: OriginId::MAIN.to_vec(),
            protocols: crate::scanner::probe::PAPER_PROTOCOLS.to_vec(),
            trials: 3,
            probes: 2,
            probe_delay_s: 0.0,
            plan: None,
        }
    }
}

/// World-size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 2¹⁶ addresses.
    Tiny,
    /// 2²⁰ addresses.
    Small,
    /// 2²² addresses.
    Medium,
    /// 2²⁴ addresses.
    Full,
}

impl Scale {
    /// Materialize a [`WorldConfig`] at this scale.
    pub fn config(self, seed: u64) -> WorldConfig {
        match self {
            Scale::Tiny => WorldConfig::tiny(seed),
            Scale::Small => WorldConfig::small(seed),
            Scale::Medium => WorldConfig::medium(seed),
            Scale::Full => WorldConfig::full(seed),
        }
    }
}

/// Usage text for `--help` and error reporting.
pub const USAGE: &str = "\
originscan — reproduce 'On the Origin of Scanning' (IMC 2020) on a simulated Internet

USAGE:
  originscan report    [FLAGS]   run the study, print the full report
  originscan scan      [FLAGS]   run the study, print origin 0's records as CSV
  originscan inventory [FLAGS]   print the simulated AS inventory as TSV
  originscan diff A B  [FLAGS]   compare two scan CSVs (AS attribution
                                 uses the world from --scale/--seed)
  originscan help

FLAGS:
  --scale tiny|small|medium|full   world size            [default: tiny]
  --seed N                         world seed            [default: 2020]
  --origins AU,JP,...              origin labels         [default: all 7]
  --protocols http,https,ssh,icmp,dns  probe modules    [default: paper trio]
  --trials N                       trials                [default: 3]
  --probes N                       SYNs per host         [default: 2]
  --probe-delay SECONDS            delay between probes  [default: 0]
  --plan PATH                      target-plan file: scan only the plan's
                                   /24 allowlist (scan subcommand only)
";

/// Parse an origin label as printed in the paper's tables.
pub fn parse_origin(s: &str) -> Option<OriginId> {
    let all = [
        OriginId::Australia,
        OriginId::Brazil,
        OriginId::Germany,
        OriginId::Japan,
        OriginId::Us1,
        OriginId::Us64,
        OriginId::Censys,
        OriginId::HurricaneElectric,
        OriginId::NttTransit,
        OriginId::Telia,
        OriginId::CensysFresh,
        OriginId::Carinet,
    ];
    all.into_iter().find(|o| o.label().eq_ignore_ascii_case(s))
}

/// Parse a protocol name against the probe-module registry, so every
/// registered module (ICMP, DNS, ...) is CLI-reachable without a
/// hardcoded roster here.
pub fn parse_protocol(s: &str) -> Option<Protocol> {
    crate::scanner::probe::modules()
        .iter()
        .find(|m| m.name().eq_ignore_ascii_case(s))
        .map(|m| m.protocol())
}

fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "medium" => Some(Scale::Medium),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

/// Parse a full argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    if matches!(sub, "help" | "--help" | "-h") {
        return Ok(Command::Help);
    }
    let mut run = RunArgs::default();
    let mut positional: Vec<String> = Vec::new();
    while let Some(flag) = it.next() {
        if !flag.starts_with("--") {
            positional.push(flag.clone());
            continue;
        }
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--scale" => {
                let v = value()?;
                run.scale = parse_scale(v).ok_or_else(|| format!("unknown scale {v}"))?;
            }
            "--seed" => {
                run.seed = value()?.parse().map_err(|_| "bad --seed".to_string())?;
            }
            "--origins" => {
                let v = value()?;
                run.origins = v
                    .split(',')
                    .map(|s| parse_origin(s).ok_or_else(|| format!("unknown origin {s}")))
                    .collect::<Result<_, _>>()?;
                if run.origins.is_empty() {
                    return Err("need at least one origin".into());
                }
            }
            "--protocols" => {
                let v = value()?;
                run.protocols = v
                    .split(',')
                    .map(|s| parse_protocol(s).ok_or_else(|| format!("unknown protocol {s}")))
                    .collect::<Result<_, _>>()?;
            }
            "--trials" => {
                run.trials = value()?.parse().map_err(|_| "bad --trials".to_string())?;
                if run.trials == 0 || run.trials > 8 {
                    return Err("--trials must be 1..=8".into());
                }
            }
            "--probes" => {
                run.probes = value()?.parse().map_err(|_| "bad --probes".to_string())?;
                if run.probes == 0 || run.probes > 8 {
                    return Err("--probes must be 1..=8".into());
                }
            }
            "--probe-delay" => {
                run.probe_delay_s = value()?
                    .parse()
                    .map_err(|_| "bad --probe-delay".to_string())?;
                if run.probe_delay_s < 0.0 {
                    return Err("--probe-delay must be non-negative".into());
                }
            }
            "--plan" => {
                run.plan = Some(value()?.to_string());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    match sub {
        "report" => {
            if run.plan.is_some() {
                return Err("--plan only applies to the scan subcommand".into());
            }
            Ok(Command::Report(run))
        }
        "scan" => Ok(Command::Scan(run)),
        "inventory" => Ok(Command::Inventory {
            scale: run.scale,
            seed: run.seed,
        }),
        "diff" => {
            let [a, b] = positional.as_slice() else {
                return Err("diff needs exactly two CSV paths".into());
            };
            Ok(Command::Diff {
                a: a.clone(),
                b: b.clone(),
                scale: run.scale,
                seed: run.seed,
            })
        }
        other => Err(format!("unknown subcommand {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults() {
        match parse(&argv("report")).unwrap() {
            Command::Report(r) => {
                assert_eq!(r.scale, Scale::Tiny);
                assert_eq!(r.origins.len(), 7);
                assert_eq!(r.protocols.len(), 3);
                assert_eq!(r.trials, 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn full_flag_set() {
        let cmd = parse(&argv(
            "scan --scale small --seed 99 --origins JP,US64 --protocols ssh --trials 2 --probes 1 --probe-delay 3600 --plan targets.osplan",
        ))
        .unwrap();
        match cmd {
            Command::Scan(r) => {
                assert_eq!(r.scale, Scale::Small);
                assert_eq!(r.seed, 99);
                assert_eq!(r.origins, vec![OriginId::Japan, OriginId::Us64]);
                assert_eq!(r.protocols, vec![Protocol::Ssh]);
                assert_eq!(r.trials, 2);
                assert_eq!(r.probes, 1);
                assert_eq!(r.probe_delay_s, 3600.0);
                assert_eq!(r.plan.as_deref(), Some("targets.osplan"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn plan_flag_is_scan_only() {
        let err = parse(&argv("report --plan targets.osplan")).unwrap_err();
        assert!(err.contains("--plan"), "{err}");
        match parse(&argv("scan")).unwrap() {
            Command::Scan(r) => assert_eq!(r.plan, None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn inventory_and_help() {
        assert_eq!(
            parse(&argv("inventory --scale medium --seed 7")).unwrap(),
            Command::Inventory {
                scale: Scale::Medium,
                seed: 7
            }
        );
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn protocol_names_come_from_the_module_registry() {
        // Every registered probe module is CLI-reachable by its name,
        // case-insensitively; unregistered names stay rejected.
        for m in crate::scanner::probe::modules() {
            assert_eq!(
                parse_protocol(&m.name().to_ascii_lowercase()),
                Some(m.protocol()),
                "{}",
                m.name()
            );
        }
        assert_eq!(parse_protocol("icmp"), Some(Protocol::Icmp));
        assert_eq!(parse_protocol("DNS"), Some(Protocol::Dns));
        assert_eq!(parse_protocol("ftp"), None);
    }

    #[test]
    fn origin_labels_case_insensitive() {
        assert_eq!(parse_origin("au"), Some(OriginId::Australia));
        assert_eq!(parse_origin("Us64"), Some(OriginId::Us64));
        assert_eq!(parse_origin("cen*"), Some(OriginId::CensysFresh));
        assert_eq!(parse_origin("CARI"), Some(OriginId::Carinet));
        assert_eq!(parse_origin("nope"), None);
    }

    #[test]
    fn errors_are_informative() {
        for (args, needle) in [
            ("report --scale huge", "unknown scale"),
            ("report --seed", "needs a value"),
            ("report --origins XX", "unknown origin"),
            ("report --protocols ftp", "unknown protocol"),
            ("report --trials 0", "--trials"),
            ("report --probes 99", "--probes"),
            ("report --probe-delay -1", "--probe-delay"),
            ("launch", "unknown subcommand"),
            ("report --bogus 1", "unknown flag"),
        ] {
            let err = parse(&argv(args)).unwrap_err();
            assert!(err.contains(needle), "{args}: {err}");
        }
    }
}
