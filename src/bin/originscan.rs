//! The `originscan` command-line tool: run the study, dump scan records,
//! or inspect the simulated Internet. See `originscan help`.

use originscan::cli::{parse, Command, RunArgs, USAGE};
use originscan::core::diff::{diff_records, render};
use originscan::core::experiment::{Experiment, ExperimentConfig};
use originscan::core::summary::full_report;
use originscan::netmodel::{SimNet, World};
use originscan::plan::TargetPlan;
use originscan::scanner::engine::{run_scan, ScanConfig};
use originscan::scanner::output::from_csv_all;
use originscan::scanner::output::to_csv_all;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(Command::Help) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Command::Inventory { scale, seed }) => {
            let world = scale.config(seed).build();
            print!("{}", world.inventory_tsv());
            ExitCode::SUCCESS
        }
        Ok(Command::Report(run)) => {
            let world = run.scale.config(run.seed).build();
            match Experiment::new(&world, experiment_config(&run)).run() {
                Ok(results) => {
                    print!("{}", full_report(&results));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Ok(Command::Scan(run)) => {
            let plan = match &run.plan {
                None => None,
                Some(path) => match TargetPlan::open(std::path::Path::new(path)) {
                    Ok(p) => Some(p),
                    Err(e) => {
                        eprintln!("error: cannot load plan {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            let world = run.scale.config(run.seed).build();
            match scan_to_csv(&world, &run, plan) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Ok(Command::Diff { a, b, scale, seed }) => {
            let (ra, rb) = match (std::fs::read_to_string(&a), std::fs::read_to_string(&b)) {
                (Ok(x), Ok(y)) => (from_csv_all(&x), from_csv_all(&y)),
                (Err(e), _) => {
                    eprintln!("error: cannot read {a}: {e}");
                    return ExitCode::FAILURE;
                }
                (_, Err(e)) => {
                    eprintln!("error: cannot read {b}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let world = scale.config(seed).build();
            let d = diff_records(&ra, &rb);
            print!("{}", render(&d, &a, &b, Some(&world)));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn experiment_config(run: &RunArgs) -> ExperimentConfig {
    ExperimentConfig {
        origins: run.origins.clone(),
        protocols: run.protocols.clone(),
        trials: run.trials,
        probes: run.probes,
        probe_delay_s: run.probe_delay_s,
        ..ExperimentConfig::default()
    }
}

/// Scan each requested protocol once from the first origin and emit CSV.
fn scan_to_csv(
    world: &World,
    run: &RunArgs,
    plan: Option<TargetPlan>,
) -> Result<(), originscan::scanner::error::ScanError> {
    let net = SimNet::new(world, &run.origins, 21.0 * 3600.0);
    for &proto in &run.protocols {
        let mut cfg = ScanConfig::new(world.space(), proto, run.seed);
        cfg.probes = run.probes;
        cfg.probe_delay_s = run.probe_delay_s;
        cfg.concurrent_origins = run.origins.len() as u8;
        cfg.plan = plan.clone();
        let out = run_scan(&net, &cfg)?;
        eprintln!(
            "# {} {proto}: {} probes sent, {} responsive ({} plan-skipped), {} completed L7",
            run.origins[0],
            out.summary.probes_sent,
            out.records.len(),
            out.summary.plan_skipped,
            out.summary.l7_successes
        );
        print!("{}", to_csv_all(&out.records));
    }
    Ok(())
}
