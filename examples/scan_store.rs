//! Scan-set store end to end: run a small multi-origin experiment,
//! persist every `(protocol, trial, origin)` scan set as a compressed
//! bitmap, reopen the file cold, and answer the paper's multi-origin
//! question — *which 2-origin combination covers the most hosts?* (§6–§7,
//! Fig 15) — straight from the stored bitmaps, without touching the
//! experiment again.
//!
//! ```sh
//! cargo run --release --example scan_store
//! ```
//!
//! Run it twice: the store file is byte-identical both times (the format
//! is deterministic down to container encodings), and the reader's
//! telemetry shows the combination query loading entries lazily.

use originscan::core::{Experiment, ExperimentConfig};
use originscan::netmodel::{OriginId, Protocol, WorldConfig};
use originscan::store::{ScanSet, StoreKey, StoreReader};
use originscan::telemetry::{Scope, Telemetry};

fn main() {
    // A 2^16-address world, deterministic from the seed; four single-IP
    // origins, two trials.
    let world = WorldConfig::tiny(2020).build();
    let origins = vec![
        OriginId::Brazil,
        OriginId::Germany,
        OriginId::Japan,
        OriginId::Us1,
    ];
    let labels: Vec<&str> = origins.iter().map(|o| o.spec().label).collect();
    let cfg = ExperimentConfig {
        origins: origins.clone(),
        protocols: vec![Protocol::Http],
        trials: 2,
        ..ExperimentConfig::default()
    };
    let results = Experiment::new(&world, cfg).run().unwrap();

    // Persist the scan sets: one compressed bitmap per (protocol, trial,
    // origin), in a versioned, checksummed, byte-deterministic file.
    let store = results.scan_set_store();
    let stats = store.stats();
    let mut path = std::env::temp_dir();
    path.push(format!("originscan_example_{}.oscs", std::process::id()));
    let bytes_written = store.write_to(&path).unwrap();
    println!("== persisted scan-set store ==");
    println!(
        "{} entries, {} containers (array {} / bitmap {} / run {}), {} payload bytes",
        stats.entries,
        stats.containers,
        stats.array_containers,
        stats.bitmap_containers,
        stats.run_containers,
        stats.payload_bytes,
    );
    println!("wrote {bytes_written} bytes to {}", path.display());

    let hub = Telemetry::new();
    let scope = Scope::new("HTTP", 0, 0);
    store.flush_telemetry(&hub, scope, bytes_written);

    // Reopen cold. Opening verifies the header and table of contents but
    // reads no entry payloads.
    let reader = StoreReader::open(&path).unwrap();
    println!("\n== reopened store ==");
    for key in reader.keys() {
        println!("  {key}");
    }

    // The §6/§7 query, answered purely from the file: for every pair of
    // origins, the union popcount of their stored bitmaps, averaged over
    // trials — the coverage a 2-origin scan would have achieved. Only the
    // ground-truth sizes come from the experiment; the sets come from disk.
    let trials = 2u8;
    let gt_sizes: Vec<usize> = (0..trials)
        .map(|t| results.matrix(Protocol::Http, t).len())
        .collect();
    println!("\n== best 2-origin combination (HTTP, union of stored bitmaps) ==");
    let mut best: Option<(String, f64)> = None;
    for a in 0..origins.len() {
        for b in a + 1..origins.len() {
            let mut coverage = 0.0;
            for trial in 0..trials {
                let sa = reader
                    .load(&StoreKey::new("HTTP", trial, a as u16))
                    .unwrap();
                let sb = reader
                    .load(&StoreKey::new("HTTP", trial, b as u16))
                    .unwrap();
                let covered = ScanSet::union_cardinality_many(&[&sa, &sb]);
                coverage += covered as f64 / gt_sizes[trial as usize] as f64;
            }
            let coverage = coverage / f64::from(trials);
            let pair = format!("{} + {}", labels[a], labels[b]);
            println!("  {pair:<12} {:>7.3}%", 100.0 * coverage);
            if best.as_ref().is_none_or(|(_, c)| coverage > *c) {
                best = Some((pair, coverage));
            }
        }
    }
    let (pair, coverage) = best.unwrap();
    println!("best: {pair} at {:.3}% mean coverage", 100.0 * coverage);

    // What the query cost, through the reader's own counters.
    reader.flush_telemetry(&hub, scope);
    let snap = hub.snapshot();
    println!("\n== store telemetry (metrics registry) ==");
    print!("{}", snap.metrics_jsonl());

    std::fs::remove_file(&path).ok();
}
