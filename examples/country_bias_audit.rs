//! Country-bias audit: for a protocol, which countries' host populations
//! depend most on where you scan from? (§4.4 / Table 2 as a tool.)
//!
//! A researcher planning a country-focused study runs this before picking
//! a vantage point: it flags countries where a single origin's view is
//! badly skewed and names the dominant AS behind the skew.
//!
//! ```sh
//! cargo run --release --example country_bias_audit [http|https|ssh]
//! ```

use originscan::core::country::{countries_above, country_stats, host_count_vs_inaccessible};
use originscan::core::report::{count, Table};
use originscan::core::{Experiment, ExperimentConfig};
use originscan::netmodel::{OriginId, Protocol, WorldConfig};

fn main() {
    let proto = match std::env::args().nth(1).as_deref() {
        Some("https") => Protocol::Https,
        Some("ssh") => Protocol::Ssh,
        _ => Protocol::Http,
    };
    let world = WorldConfig::small(7).build();
    let cfg = ExperimentConfig {
        origins: OriginId::MAIN.to_vec(),
        protocols: vec![proto],
        trials: 3,
        ..ExperimentConfig::default()
    };
    println!(
        "scanning {proto} from {} origins, 3 trials...",
        cfg.origins.len()
    );
    let results = Experiment::new(&world, cfg).run().unwrap();
    let panel = results.panel(proto);
    let stats = country_stats(&world, &panel);

    if let Some(r) = host_count_vs_inaccessible(&stats) {
        println!(
            "\nSpearman (country host count vs inaccessible hosts): ρ = {:.2}, p = {:.1e}",
            r.rho, r.p_value
        );
    }

    let flagged = countries_above(&stats, 10.0);
    println!(
        "\n{} countries have >10% of their {proto} hosts long-term inaccessible from some origin:\n",
        flagged.len()
    );
    let mut t = Table::new(
        ["country", "hosts"]
            .into_iter()
            .map(String::from)
            .chain(OriginId::MAIN.iter().map(|o| o.to_string()))
            .chain(["dominant ASes".to_string()]),
    );
    for s in flagged.iter().take(20) {
        let worst_origin = s
            .inaccessible_pct
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        t.row(
            [s.country.code().to_string(), count(s.hosts)]
                .into_iter()
                .chain(s.inaccessible_pct.iter().map(|p| format!("{p:.1}")))
                .chain([format!("{}", s.majority_ases[worst_origin])]),
        );
    }
    println!("{}", t.render());
    println!("(per-origin columns: % of the country's hosts long-term inaccessible;");
    println!(" 'dominant ASes' = how many ASes hold the majority of the worst origin's losses)");
}
