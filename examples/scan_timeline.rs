//! Scan timeline: run a small faulted experiment and print everything the
//! telemetry layer captured — the per-scan event timeline (JSONL, keyed
//! to *simulated* seconds), the metrics registry, and the human-readable
//! per-origin summary.
//!
//! ```sh
//! cargo run --release --example scan_timeline
//! ```
//!
//! The fault plan below disrupts two of the three origins so the
//! timeline has something to say: Germany suffers a mid-scan outage plus
//! reply tampering, Japan's scanner crashes once (supervised retry +
//! checkpoint resume) and later stalls. Run it twice — the output is
//! byte-identical, faults and retries included.

use originscan::core::{Experiment, ExperimentConfig};
use originscan::netmodel::{FaultPlan, OriginId, Protocol, WorldConfig};

fn main() {
    // A 2^16-address world, deterministic from the seed.
    let world = WorldConfig::tiny(2020).build();

    let plan = FaultPlan::new(5)
        .outage(1, 0, 0.35, 0.55)
        .corrupt_replies(1, 0, 0.02)
        .crash(2, 0, 0.5, 1)
        .stall(2, 0, 0.8, 120.0);
    let cfg = ExperimentConfig {
        origins: vec![OriginId::Us1, OriginId::Germany, OriginId::Japan],
        protocols: vec![Protocol::Http],
        trials: 1,
        faults: Some(plan),
        ..ExperimentConfig::default()
    };
    let results = Experiment::new(&world, cfg).run().unwrap();
    let t = results.telemetry();

    println!("== event timeline (JSONL, simulated seconds) ==");
    print!("{}", t.events_jsonl());

    println!("\n== metrics registry (JSONL) ==");
    print!("{}", t.metrics_jsonl());

    println!("\n== per-origin summary ==");
    print!("{}", t.render_summary());
}
