//! The planner frontier, end to end: learn a topology-aware target plan
//! from *stored* scan sets, persist the plan in its own checksummed
//! format, reopen it cold, and measure the probes-vs-coverage frontier
//! every strategy sits on.
//!
//! ```sh
//! cargo run --release --example fig_frontier
//! ```
//!
//! The world is deliberately sparse (most /24s never deployed) — the
//! regime Internet-wide scanning actually lives in, and the one where a
//! planner that remembers observed deployment pays off: the observed
//! plan reaches nearly full recall at a fraction of the probes. Run it
//! twice: the plan file and the frontier table are byte-identical.

use originscan::core::frontier::{as_spans, sweep_frontier, FrontierConfig};
use originscan::core::{Experiment, ExperimentConfig};
use originscan::netmodel::{OriginId, Protocol, WorldConfig};
use originscan::plan::{PlanBuilder, Strategy, TargetPlan};
use originscan::store::StoreReader;

fn main() {
    // A sparse 2^16-address world: low deployment density leaves most
    // /24s empty, deterministic from the seed.
    let mut wc = WorldConfig::tiny(2026);
    wc.density_scale = 0.1;
    let world = wc.build();
    let origins = vec![OriginId::Us1, OriginId::Germany];

    // Prior knowledge: a 2-trial HTTP experiment, persisted as a scan-set
    // store — the artifact a real campaign would have lying around.
    let cfg = ExperimentConfig {
        origins: origins.clone(),
        protocols: vec![Protocol::Http],
        trials: 2,
        ..ExperimentConfig::default()
    };
    let results = Experiment::new(&world, cfg).run().unwrap();
    let mut store_path = std::env::temp_dir();
    store_path.push(format!("originscan_frontier_{}.oscs", std::process::id()));
    results.scan_set_store().write_to(&store_path).unwrap();

    // Learn a plan straight from the store file: per-trial cross-origin
    // unions become the builder's observations.
    let reader = StoreReader::open(&store_path).unwrap();
    let mut builder = PlanBuilder::new(world.space(), 2026)
        .unwrap()
        .with_topology(as_spans(&world));
    builder.observe_reader(&reader, "HTTP").unwrap();
    println!("learned from {} stored trials", builder.observed_trials());

    // Persist the observed-deployment plan in its own format and reopen
    // it cold — byte-identical across runs.
    let plan = builder.build(&Strategy::Observed).unwrap();
    let mut plan_path = std::env::temp_dir();
    plan_path.push(format!("originscan_frontier_{}.osplan", std::process::id()));
    let bytes = plan.write_to(&plan_path).unwrap();
    let reopened = TargetPlan::open(&plan_path).unwrap();
    println!(
        "plan '{}': {} /24s, {} addresses, {} bytes on disk",
        reopened.strategy(),
        reopened.planned_s24s(),
        reopened.planned_addresses(),
        bytes,
    );

    // The frontier: full sweep vs the learned strategies on a held-out
    // trial, probes against recall.
    let fc = FrontierConfig {
        origins,
        seed: 2026,
        ..FrontierConfig::default()
    };
    let sweep = sweep_frontier(&world, &fc).unwrap();
    println!("\n{}", sweep.render());
    if let Some(p) = sweep.cheapest_with_recall(0.95) {
        println!(
            "cheapest ≥95% recall: '{}' at {:.1}% of the full sweep's probes",
            p.strategy,
            100.0 * p.probes_frac,
        );
    }

    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(&plan_path).ok();
}
