//! The serve stack end to end: run a small multi-origin experiment,
//! persist its scan sets, start the HTTP query server on loopback, and
//! answer the paper's §6–§7 questions — coverage, per-origin diffs, and
//! the best 2-origin combination — through real HTTP requests.
//!
//! ```sh
//! cargo run --release --example serve
//! ```
//!
//! The responses are deterministic: same seed, same store, same bytes,
//! whatever the cache state. The closing telemetry dump shows the
//! engine's cache counters and the server's request metrics.

use originscan::core::frontier::as_spans;
use originscan::core::{Experiment, ExperimentConfig};
use originscan::netmodel::{OriginId, Protocol, WorldConfig};
use originscan::plan::{PlanBuilder, Strategy};
use originscan::serve::{QueryEngine, Server, ServerConfig};
use originscan::store::StoreReader;
use originscan::telemetry::{Scope, Telemetry};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

fn http(addr: SocketAddr, query: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(
        format!(
            "POST /query HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{query}",
            query.len()
        )
        .as_bytes(),
    )
    .expect("send request");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn main() {
    // A 2^16-address world, four origins, two trials — deterministic
    // from the seed.
    let world = WorldConfig::tiny(2020).build();
    let cfg = ExperimentConfig {
        origins: vec![
            OriginId::Brazil,
            OriginId::Germany,
            OriginId::Japan,
            OriginId::Us1,
        ],
        protocols: vec![Protocol::Http],
        trials: 2,
        ..ExperimentConfig::default()
    };
    let results = Experiment::new(&world, cfg).run().unwrap();

    let mut path = std::env::temp_dir();
    path.push(format!(
        "originscan_serve_example_{}.oscs",
        std::process::id()
    ));
    let bytes = results.scan_set_store().write_to(&path).unwrap();
    println!("== store ==");
    println!("wrote {bytes} bytes to {}", path.display());

    // Open the store, learn a target plan from it, start the server on
    // an ephemeral loopback port.
    let mut engine = QueryEngine::from_readers(vec![StoreReader::open(&path).unwrap()]);
    let plan_reader = StoreReader::open(&path).unwrap();
    let mut builder = PlanBuilder::new(world.space(), 2020)
        .unwrap()
        .with_topology(as_spans(&world));
    builder.observe_reader(&plan_reader, "HTTP").unwrap();
    engine.register_plan("frontier", builder.build(&Strategy::Observed).unwrap());
    let engine = Arc::new(engine);
    let hub = Arc::new(Telemetry::new());
    let server = Server::start(
        Arc::clone(&engine),
        Some(Arc::clone(&hub)),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();
    println!("\n== serving on http://{addr} ==");

    // The paper's questions, as HTTP queries. Try them yourself while
    // the server runs, e.g.:
    //   curl "http://ADDR/query?q=best-k+proto%3DHTTP+trial%3D0+k%3D2"
    let queries = [
        "coverage proto=HTTP trial=0 origins=0",
        "coverage proto=HTTP trial=0 origins=0,1,2,3",
        "diff proto=HTTP trial=0 a=0 b=2",
        "exclusive proto=HTTP trial=0 origin=1",
        "best-k proto=HTTP trial=0 k=2",
        "member proto=HTTP trial=0 origin=0 addr=4242",
        "recall proto=HTTP trial=0 origins=0,1,2,3 plan=frontier",
    ];
    for q in queries {
        let (status, body) = http(addr, q);
        assert_eq!(status, 200, "query `{q}` failed: {body}");
        println!("  {q}\n    -> {body}");
    }

    // Ask again: every repeat is a plan-cache hit, same bytes.
    let (_, first) = http(addr, "best-k proto=HTTP trial=0 k=2");
    let (_, second) = http(addr, "best-k proto=HTTP trial=0 k=2");
    assert_eq!(first, second, "responses are deterministic");

    server.shutdown();
    println!("\n== shut down (drained in-flight, refusing new connections) ==");

    engine.flush_telemetry(&hub, Scope::new("serve", 0, 0));
    let snap = hub.snapshot();
    println!("\n== serve telemetry ==");
    print!("{}", snap.metrics_jsonl());

    std::fs::remove_file(&path).ok();
}
