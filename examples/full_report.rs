//! Full report: run the complete study at a chosen scale and print every
//! headline analysis in one document.
//!
//! ```sh
//! cargo run --release --example full_report            # tiny, fast
//! cargo run --release --example full_report -- small   # the bench scale
//! ```

use originscan::core::summary::full_report;
use originscan::core::{Experiment, ExperimentConfig};
use originscan::netmodel::{OriginId, WorldConfig};

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "tiny".into());
    let world = match scale.as_str() {
        "small" => WorldConfig::small(2020).build(),
        "medium" => WorldConfig::medium(2020).build(),
        _ => WorldConfig::tiny(2020).build(),
    };
    let cfg = ExperimentConfig {
        origins: OriginId::MAIN.to_vec(),
        protocols: originscan::scanner::probe::PAPER_PROTOCOLS.to_vec(),
        trials: 3,
        ..ExperimentConfig::default()
    };
    eprintln!(
        "running {} origins × {} protocols × 3 trials over {} addresses...",
        cfg.origins.len(),
        cfg.protocols.len(),
        world.space()
    );
    let results = Experiment::new(&world, cfg).run().unwrap();
    print!("{}", full_report(&results));
}
