//! Packet capture: record a mini-scan's probe/reply exchange to a pcap
//! file you can open in Wireshark or tcpdump.
//!
//! The scanner's wire formats are real (IPv4 + TCP with valid checksums,
//! ZMap-style validation sequence numbers), so the capture looks exactly
//! like a slice of a genuine ZMap run against responsive hosts.
//!
//! ```sh
//! cargo run --release --example packet_capture -- /tmp/originscan.pcap
//! tcpdump -nn -r /tmp/originscan.pcap | head
//! ```

use originscan::netmodel::{OriginId, Protocol, SimNet, WorldConfig};
use originscan::scanner::target::{Network, ProbeCtx, SynReply};
use originscan::scanner::Cycle;
use originscan::wire::ipv4::Ipv4Header;
use originscan::wire::pcap::PcapWriter;
use originscan::wire::tcp::TcpHeader;
use originscan::wire::validation::Validator;
use std::fs::File;
use std::io::BufWriter;

fn main() -> std::io::Result<()> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/originscan.pcap".into());
    let world = WorldConfig::tiny(3).build();
    let origins = [OriginId::Us1];
    let net = SimNet::new(&world, &origins, 21.0 * 3600.0);

    let seed = 7u64;
    let validator = Validator::from_seed(seed);
    let cycle = Cycle::new(world.space(), seed);
    let src_ip = 0x0a00_0001u32;
    let dport = originscan::scanner::probe::module_for(Protocol::Http).port();

    let mut pcap = PcapWriter::new(BufWriter::new(File::create(&path)?))?;
    let mut time = 0.0f64;
    // Capture the first 2,000 addresses of the permutation.
    for addr64 in cycle.iter().take(2000) {
        let addr = addr64 as u32;
        time += 1e-5; // 100k pps
        let seq = validator.probe_seq(src_ip, addr, 40000, dport);
        let probe = TcpHeader::syn_probe(40000, dport, seq);
        let ip = Ipv4Header::for_tcp(src_ip, addr, probe.wire_len());
        let mut pkt = ip.emit().to_vec();
        pkt.extend_from_slice(&probe.emit(&ip));
        pcap.packet(time, &pkt)?;

        let ctx = ProbeCtx {
            origin: 0,
            src_ip,
            dst: addr,
            protocol: Protocol::Http,
            time_s: time,
            probe_idx: 0,
            trial: 0,
        };
        let reply = match net.syn(&ctx, &probe) {
            SynReply::SynAck(h) | SynReply::Rst(h) => h,
            SynReply::Silent => continue,
        };
        let rip = Ipv4Header::for_tcp(addr, src_ip, reply.wire_len());
        let mut pkt = rip.emit().to_vec();
        pkt.extend_from_slice(&reply.emit(&rip));
        pcap.packet(time + 0.08, &pkt)?; // ~80 ms RTT
    }
    let n = pcap.packet_count();
    pcap.finish()?;
    println!("wrote {n} packets to {path}");
    println!("inspect with: tcpdump -nn -r {path} | head");
    Ok(())
}
