//! SSH retry probe: demonstrate §6's two SSH-specific loss mechanisms and
//! the mitigation the paper recommends.
//!
//! 1. OpenSSH `MaxStartups` refuses unauthenticated connections
//!    probabilistically — immediate retries recover most hosts (Fig 13).
//! 2. Alibaba's network-wide scan detection RSTs every SSH connection
//!    after a (non-deterministic) point in the scan (Fig 12).
//!
//! ```sh
//! cargo run --release --example ssh_retry_probe
//! ```

use originscan::core::report::Table;
use originscan::core::ssh::{hourly_rst_fraction, retry_sweep, ssh_miss_breakdown};
use originscan::core::{Experiment, ExperimentConfig};
use originscan::netmodel::{OriginId, Protocol, WorldConfig};

fn main() {
    let world = WorldConfig::small(11).build();

    // --- Fig 13: the retry sweep over MaxStartups-heavy networks --------
    println!("retry sweep (fraction of responding SSH hosts completing the handshake):\n");
    let mut t = Table::new(
        ["AS"]
            .into_iter()
            .map(String::from)
            .chain((0..=8).map(|k| format!("r={k}"))),
    );
    for as_name in ["EGI Hosting", "Psychz Networks", "Comcast"] {
        if let Some(sweep) = retry_sweep(&world, OriginId::Us1, as_name, 8, 0) {
            t.row(
                [as_name.to_string()]
                    .into_iter()
                    .chain(sweep.success_fraction.iter().map(|f| format!("{:.2}", f))),
            );
        }
    }
    println!("{}", t.render());

    // --- Fig 12: Alibaba's temporal blocking -----------------------------
    println!("Alibaba hourly RST-after-handshake fraction (trial 1, single-IP origin vs US64):\n");
    let cfg = ExperimentConfig {
        origins: vec![OriginId::Japan, OriginId::Us64],
        protocols: vec![Protocol::Ssh],
        trials: 1,
        ..ExperimentConfig::default()
    };
    let results = Experiment::new(&world, cfg).run().unwrap();
    let m = results.matrix(Protocol::Ssh, 0);
    let jp = hourly_rst_fraction(&world, m, 0, "HZ Alibaba Advertising");
    let us64 = hourly_rst_fraction(&world, m, 1, "HZ Alibaba Advertising");
    let mut t = Table::new(["hour", "JP (1 IP)", "US64 (64 IPs)"]);
    for h in 0..21 {
        t.row([
            format!("{h:02}"),
            format!("{:.2}", jp[h]),
            format!("{:.2}", us64[h]),
        ]);
    }
    println!("{}", t.render());

    // --- Fig 14: what actually loses SSH hosts ---------------------------
    let b = ssh_miss_breakdown(&world, m, 0);
    println!("Japan's missed SSH hosts in trial 1 by cause:");
    println!("  Alibaba temporal blocking : {}", b.temporal_blocking);
    println!(
        "  probabilistic (MaxStartups): {}",
        b.probabilistic_blocking
    );
    println!("  transient / other          : {}", b.other);
}
