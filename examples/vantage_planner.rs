//! Vantage planner: pick the 2–3 origins that maximize coverage (§7).
//!
//! The paper's operational advice is that *any* sufficiently diverse 2–3
//! origins reach 98–99 % of hosts — and that the best combination is not
//! the combination of individually best origins. This tool sweeps every
//! pair and triad and prints the distribution plus the winner, then
//! contrasts multi-origin scanning with multi-probe scanning.
//!
//! ```sh
//! cargo run --release --example vantage_planner [http|https|ssh]
//! ```

use originscan::core::multiorigin::{
    combo_sweep, single_ip_roster, ComboDistribution, ProbePolicy,
};
use originscan::core::report::{pct2, Table};
use originscan::core::{Experiment, ExperimentConfig};
use originscan::netmodel::{OriginId, Protocol, WorldConfig};

fn describe(label: &str, d: &ComboDistribution) -> Vec<String> {
    let s = d.summary();
    vec![
        label.to_string(),
        pct2(s.min),
        pct2(s.median),
        pct2(s.max),
        format!("{:.3}%", d.std_dev() * 100.0),
        format!(
            "{} ({})",
            d.best
                .0
                .iter()
                .map(|o| o.to_string())
                .collect::<Vec<_>>()
                .join("-"),
            pct2(d.best.1)
        ),
    ]
}

fn main() {
    let proto = match std::env::args().nth(1).as_deref() {
        Some("https") => Protocol::Https,
        Some("ssh") => Protocol::Ssh,
        _ => Protocol::Http,
    };
    let world = WorldConfig::small(23).build();
    let cfg = ExperimentConfig {
        origins: OriginId::MAIN.to_vec(),
        protocols: vec![proto],
        trials: 3,
        ..ExperimentConfig::default()
    };
    println!("sweeping origin combinations for {proto}...\n");
    let results = Experiment::new(&world, cfg).run().unwrap();
    let roster = single_ip_roster(&results);

    let mut t = Table::new(["combo", "min", "median", "max", "σ", "best combo"]);
    for k in 1..=3 {
        for (policy, pl) in [(ProbePolicy::Single, "1p"), (ProbePolicy::Double, "2p")] {
            let d = combo_sweep(&results, proto, &roster, k, policy);
            t.row(describe(&format!("{k} origin(s), {pl}"), &d));
        }
    }
    println!("{}", t.render());

    let d2_1p = combo_sweep(&results, proto, &roster, 2, ProbePolicy::Single);
    let d1_2p = combo_sweep(&results, proto, &roster, 1, ProbePolicy::Double);
    println!(
        "one probe from two origins ({}) beats two probes from one ({}) — §7's headline.",
        pct2(d2_1p.summary().median),
        pct2(d1_2p.summary().median),
    );
    let d3 = combo_sweep(&results, proto, &roster, 3, ProbePolicy::Single);
    println!(
        "recommendation: any diverse triad gives ~{} coverage (spread {} … {}).",
        pct2(d3.summary().median),
        pct2(d3.summary().min),
        pct2(d3.summary().max),
    );
}
