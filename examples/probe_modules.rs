//! Probe-module sweep: run every registered scan module — the paper's
//! TCP trio plus ICMP echo and DNS-over-UDP — through the same
//! multi-origin experiment and print the per-module comparison.
//!
//! ```sh
//! cargo run --release --example probe_modules            # tiny, fast
//! cargo run --release --example probe_modules -- small   # the bench scale
//! ```

use originscan::core::modules::sweep_modules;
use originscan::core::ExperimentConfig;
use originscan::netmodel::{OriginId, WorldConfig};
use originscan::scanner::probe::modules;

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "tiny".into());
    let world = match scale.as_str() {
        "small" => WorldConfig::small(2020).build(),
        "medium" => WorldConfig::medium(2020).build(),
        _ => WorldConfig::tiny(2020).build(),
    };
    let base = ExperimentConfig {
        origins: OriginId::MAIN.to_vec(),
        trials: 3,
        ..ExperimentConfig::default()
    };
    eprintln!(
        "running {} modules × {} origins × {} trials over {} addresses...",
        modules().len(),
        base.origins.len(),
        base.trials,
        world.space()
    );
    let sweep = sweep_modules(&world, &base).expect("sweep");
    print!("{}", sweep.render());

    // Per-module archive sizes: the store keyspace is module names.
    for run in sweep.runs() {
        let store = run.results.scan_set_store();
        let bytes = store.to_bytes().expect("encode store").len();
        eprintln!(
            "{:>5}: {} scan sets archived in {} bytes",
            run.name(),
            store.len(),
            bytes
        );
    }
}
