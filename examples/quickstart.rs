//! Quickstart: run a small synchronized two-origin HTTP experiment and
//! look at what each vantage point missed.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use originscan::core::classify::{class_counts, trial_breakdown};
use originscan::core::coverage::{coverage_table, mcnemar_all_pairs};
use originscan::core::report::{count, pct, Table};
use originscan::core::{Experiment, ExperimentConfig};
use originscan::netmodel::{OriginId, Protocol, WorldConfig};

fn main() {
    // A 2^20-address world (4,096 /24s), deterministic from the seed.
    let world = WorldConfig::small(42).build();
    println!(
        "world: {} addresses, {} ASes, {} HTTP hosts deployed\n",
        world.space(),
        world.ases.len(),
        count(world.host_count(Protocol::Http)),
    );

    let origins = vec![OriginId::Us1, OriginId::Japan, OriginId::Censys];
    let cfg = ExperimentConfig {
        origins: origins.clone(),
        protocols: vec![Protocol::Http],
        trials: 3,
        probes: 2,
        ..ExperimentConfig::default()
    };
    let results = Experiment::new(&world, cfg).run().unwrap();

    // Coverage per origin per trial (the Appendix A table).
    let mut t = Table::new(
        ["trial"]
            .into_iter()
            .map(String::from)
            .chain(origins.iter().map(|o| o.to_string())),
    );
    for row in coverage_table(&results, Protocol::Http) {
        let label = row
            .trial
            .map_or("mean".to_string(), |t| format!("{}", t + 1));
        t.row(
            [label]
                .into_iter()
                .chain(row.fractions.iter().map(|&f| pct(f))),
        );
    }
    println!("HTTP coverage of ground truth:\n{}", t.render());

    // Why are hosts missing? (Fig 2 style breakdown.)
    let panel = results.panel(Protocol::Http);
    let counts = class_counts(&panel);
    let mut t = Table::new(["origin", "transient", "long-term", "unknown"]);
    for (oi, o) in origins.iter().enumerate() {
        t.row([
            o.to_string(),
            count(counts[oi].transient),
            count(counts[oi].long_term),
            count(counts[oi].unknown),
        ]);
    }
    println!(
        "missing-host classification (union across trials):\n{}",
        t.render()
    );

    // Per-trial misses for the first origin.
    let b = trial_breakdown(&panel, 0, 0);
    println!(
        "{} missed {} hosts in trial 1 ({} transient, {} long-term, {} unknown)",
        origins[0],
        count(b.total()),
        count(b.transient),
        count(b.long_term),
        count(b.unknown)
    );

    // Are the origins statistically different? (§3)
    let (tests, alpha) = mcnemar_all_pairs(&results, Protocol::Http, 0.001);
    let significant = tests.iter().filter(|t| t.result.p_value < alpha).count();
    println!(
        "\nMcNemar: {significant}/{} origin-pair comparisons significant at Bonferroni-corrected α = {alpha:.2e}",
        tests.len()
    );
}
