//! fig_adversarial — the scanner/defender co-simulation sweep.
//!
//! Crosses four scanner politeness postures (fast-and-oblivious,
//! paper-baseline, adaptive, stealth) against four defender aggression
//! profiles (off, lenient, aggressive, paranoid) and prints the coverage
//! each pairing retains, normalised against the same scanner undefended.
//!
//! ```sh
//! cargo run --release --example fig_adversarial
//! ```
//!
//! The interesting diagonal: under the aggressive defender the open-loop
//! baseline racks up detections until the reputation store lists it,
//! while the adaptive scanner backs its rate off, rotates source
//! addresses, and keeps most of its coverage. Run it twice — the matrix
//! and the timeline are byte-identical.

use originscan::core::adversarial::{AdversarialConfig, AdversarialSweep, CellStatus};
use originscan::netmodel::WorldConfig;

fn main() {
    // A 2^16-address world, deterministic from the seed.
    let world = WorldConfig::tiny(2020).build();

    // Compressed trials (6 simulated hours instead of 21) push per-AS
    // probe rates into the detectors' trip range at tiny-world scale.
    let cfg = AdversarialConfig {
        trials: 2,
        duration_s: 6.0 * 3600.0,
        ..AdversarialConfig::default()
    };
    let sweep = AdversarialSweep::new(&world, cfg);
    let results = match sweep.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };

    println!("== coverage retained vs. undefended (politeness × aggression) ==");
    print!("{}", results.render());

    println!("\n== matrix (TSV, byte-deterministic) ==");
    print!("{}", results.matrix_tsv());

    println!("\n== cell details ==");
    for c in results.cells() {
        if c.status == CellStatus::Unchallenged {
            continue;
        }
        println!(
            "{:>10} × {:<10} cov {:5.1}%  detections {:<4} blocked {:<6} \
             backoffs {:<3} rotations {:<3} deferred {:<5} {}",
            c.politeness,
            c.aggression,
            c.mean_coverage() * 100.0,
            c.defense.detections,
            c.defense.blocked_probes,
            c.backoffs,
            c.rotations,
            c.deferred,
            c.status,
        );
    }

    // The detection → block → backoff sequence is visible in the shared
    // timeline; print the adversarial event kinds in simulated order.
    println!("\n== adversarial timeline (excerpt) ==");
    let interesting = [
        "scan_detected",
        "block_started",
        "block_ended",
        "origin_listed",
        "backoff_engaged",
        "backoff_released",
        "source_rotated",
        "prefix_deferred",
    ];
    let mut shown = 0;
    for line in results.telemetry().events_jsonl().lines() {
        if interesting.iter().any(|k| line.contains(k)) {
            println!("{line}");
            shown += 1;
            if shown >= 40 {
                println!("… ({} lines shown)", shown);
                break;
            }
        }
    }
}
