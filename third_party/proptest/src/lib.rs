//! Vendored offline shim for the [proptest](https://crates.io/crates/proptest)
//! API surface this workspace uses.
//!
//! The real proptest cannot be fetched in hermetic build environments, so
//! this crate reimplements exactly the subset our property suites need:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), `any::<T>()`,
//! integer/float range strategies, a tiny `[class]{m,n}` regex string
//! strategy, `collection::vec`, `option::of`, tuple strategies, and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its generated inputs and the
//!   case index, then panics; it does not search for a minimal example.
//! * **Deterministic by construction.** Cases derive from a counter-based
//!   RNG keyed on the fully-qualified test name and case index, so a
//!   failure reproduces by just re-running the test.
//! * `PROPTEST_CASES` in the environment overrides the default case count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner configuration and deterministic RNG.
pub mod test_runner {
    /// Configuration for a `proptest!` block (shim of `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Self { cases }
        }
    }

    #[inline]
    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Deterministic per-case random stream (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The RNG for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h = splitmix(h ^ u64::from(b));
            }
            Self {
                state: splitmix(h ^ u64::from(case).wrapping_mul(0xe703_7ed1_a0b4_28db)),
            }
        }

        /// Next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            splitmix(self.state)
        }

        /// Uniform in `[0, 1)` with 53 mantissa bits.
        #[inline]
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`; `n` must be nonzero.
        #[inline]
        pub fn below(&mut self, n: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait: a recipe for generating values.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value-generation strategy (shim: no shrinking, just generation).
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generate one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Integer/float types that can be drawn uniformly from a range.
    pub trait SampleUniform: Copy {
        /// Sample uniformly from `[lo, hi)`.
        fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
        /// Sample uniformly from `[lo, hi]`.
        fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    assert!(lo < hi, "empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    lo.wrapping_add(rng.below(span) as $t)
                }
                #[inline]
                fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    assert!(lo <= hi, "empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_sample_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    lo + (rng.next_f64() as $t) * (hi - lo)
                }
                #[inline]
                fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    // The endpoint has measure zero; half-open is fine.
                    lo + (rng.next_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    impl_sample_uniform_float!(f32, f64);

    impl<T: SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_inclusive(*self.start(), *self.end(), rng)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    impl_strategy_tuple! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// String strategy from a `[class]{m,n}` regex literal (see
    /// [`crate::string`]).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

/// `any::<T>()` and the [`Arbitrary`](arbitrary::Arbitrary) trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[inline]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification: exact or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `Option` strategies (`of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option`s of an inner strategy.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Mirror proptest's bias toward `Some`.
            if rng.next_f64() < 0.75 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// String generation from the `[class]{m,n}` regex subset.
pub mod string {
    use crate::test_runner::TestRng;

    /// Generate a string matching `pattern`, which must be of the form
    /// `[class]{m,n}` or `[class]{m}` where `class` is a list of literal
    /// characters and `a-z` ranges (a trailing `-` is a literal).
    ///
    /// Panics on any other pattern: the shim supports exactly what the
    /// workspace's suites use, and failing loudly beats generating strings
    /// that silently don't match the intended language.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let (class, reps) = parse(pattern)
            .unwrap_or_else(|| panic!("unsupported regex pattern for shim: {pattern:?}"));
        let (lo, hi) = reps;
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }

    fn parse(pattern: &str) -> Option<(Vec<char>, (usize, usize))> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class = expand_class(&rest[..close]);
        if class.is_empty() {
            return None;
        }
        let quant = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match quant.split_once(',') {
            Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
            None => {
                let n = quant.parse().ok()?;
                (n, n)
            }
        };
        if lo > hi {
            return None;
        }
        Some((class, (lo, hi)))
    }

    fn expand_class(class: &str) -> Vec<char> {
        let chars: Vec<char> = class.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                for c in chars[i]..=chars[i + 2] {
                    out.push(c);
                }
                i += 3;
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        out
    }
}

/// The conventional glob import for proptest users.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define deterministic property tests (shim of proptest's macro).
///
/// Supports an optional `#![proptest_config(expr)]` header and test
/// functions whose parameters are either `name: Type` (drawn from
/// `any::<Type>()`) or `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::test_runner::Config as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        ::core::concat!(::core::module_path!(), "::", ::core::stringify!($name)),
                        __case,
                    );
                    let mut __inputs: ::std::vec::Vec<::std::string::String> =
                        ::std::vec::Vec::new();
                    $crate::__proptest_bind!(__rng, __inputs; $($params)*);
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let ::core::result::Result::Err(__panic) = __outcome {
                        ::std::eprintln!(
                            "proptest shim: {} failed at case {}/{} with inputs:\n  {}",
                            ::core::stringify!($name),
                            __case,
                            __config.cases,
                            __inputs.join("\n  "),
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $inputs:ident;) => {};
    ($rng:ident, $inputs:ident; $id:ident : $ty:ty) => {
        $crate::__proptest_bind!($rng, $inputs; $id : $ty,);
    };
    ($rng:ident, $inputs:ident; $id:ident : $ty:ty, $($rest:tt)*) => {
        let $id = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $inputs.push(::std::format!("{} = {:?}", ::core::stringify!($id), &$id));
        $crate::__proptest_bind!($rng, $inputs; $($rest)*);
    };
    ($rng:ident, $inputs:ident; $id:ident in $strat:expr) => {
        $crate::__proptest_bind!($rng, $inputs; $id in $strat,);
    };
    ($rng:ident, $inputs:ident; $id:ident in $strat:expr, $($rest:tt)*) => {
        let $id = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $inputs.push(::std::format!("{} = {:?}", ::core::stringify!($id), &$id));
        $crate::__proptest_bind!($rng, $inputs; $($rest)*);
    };
}

/// Property-scoped assertion (shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::core::assert!($($t)*) };
}

/// Property-scoped equality assertion (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::core::assert_eq!($($t)*) };
}

/// Property-scoped inequality assertion (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::core::assert_ne!($($t)*) };
}

/// Skip the current case when a precondition fails (shim: early return).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (1u8..=255).generate(&mut rng);
            assert!(w >= 1);
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn string_patterns_match_class() {
        let mut rng = crate::test_runner::TestRng::for_case("strings", 0);
        for _ in 0..200 {
            let s = crate::string::generate_from_pattern("[a-c_.]{1,5}", &mut rng);
            assert!((1..=5).contains(&s.len()));
            assert!(s.chars().all(|c| "abc_.".contains(c)));
        }
    }

    #[test]
    fn vec_sizes_in_range() {
        let mut rng = crate::test_runner::TestRng::for_case("vecs", 0);
        for _ in 0..200 {
            let v = crate::collection::vec(any::<u8>(), 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let exact = crate::collection::vec(any::<u8>(), 4usize).generate(&mut rng);
            assert_eq!(exact.len(), 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_accepts_both_param_forms(x: u32, y in 0u64..10, s in "[ -~]{0,4}") {
            prop_assert!(y < 10);
            prop_assert!(s.len() <= 4);
            prop_assert_eq!(x, x);
        }
    }
}
