//! Vendored offline shim for the [criterion](https://crates.io/crates/criterion)
//! API surface this workspace's perf benches use.
//!
//! The real criterion cannot be fetched in hermetic build environments.
//! This shim keeps the same bench sources compiling and producing useful
//! wall-clock numbers: each benchmark is warmed up, then timed over an
//! adaptive iteration count, and a single `time/iter` line (plus
//! throughput, when declared) is printed. There is no statistical
//! analysis, HTML report, or comparison against saved baselines.
//!
//! `CRITERION_MEASURE_MS` in the environment overrides the ~300 ms
//! per-benchmark measurement budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Results accumulated by [`run_benchmark`] for the process-end record.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_benchmark(&id.to_string(), None, &mut f);
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the work performed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_benchmark(&format!("{}/{}", self.name, id), self.throughput, &mut f);
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_benchmark(&label, self.throughput, &mut wrapped);
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, first warming up, then measuring over an adaptive
    /// iteration count.
    // Wall-clock timing is this harness's entire purpose.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let budget = measure_budget();
        // Warm-up and calibration: time single iterations until ~10% of
        // the budget is spent, to pick a measurement batch size.
        let calibrate_until = budget / 10;
        let start = Instant::now();
        let mut calib_iters = 0u64;
        while start.elapsed() < calibrate_until || calib_iters == 0 {
            black_box(routine());
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = start.elapsed().as_secs_f64() / calib_iters as f64;
        let target = budget.as_secs_f64();
        let iters = ((target / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed().as_secs_f64();
        self.ns_per_iter = elapsed * 1e9 / iters as f64;
        self.iters = iters;
    }
}

fn measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms.max(1))
}

fn run_benchmark(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    f(&mut b);
    let mut line = format!(
        "{label:<40} time: {} ({} iters)",
        format_ns(b.ns_per_iter),
        b.iters
    );
    if let Some(t) = throughput {
        let per_sec = match t {
            Throughput::Elements(n) | Throughput::Bytes(n) => n as f64 * 1e9 / b.ns_per_iter,
        };
        let unit = match t {
            Throughput::Elements(_) => "elem/s",
            Throughput::Bytes(_) => "B/s",
        };
        line.push_str(&format!("  thrpt: {} {unit}", format_count(per_sec)));
    }
    println!("{line}");
    if let Ok(mut results) = RESULTS.lock() {
        results.push((label.to_string(), b.ns_per_iter));
    }
}

/// Write `BENCH_<name>.json` (bench-record schema v1) into the working
/// directory, summarizing every benchmark run so far in this process.
///
/// Called by `criterion_main!` after all groups finish. The record name
/// comes from the executable file stem with cargo's trailing `-<hash>`
/// stripped; labels become `<label>_ns` metrics with `dir: lower` and a
/// generous 1.0 tolerance (raw nanosecond timings are the noisiest
/// numbers CI produces). Write failures are reported, not fatal: the
/// record is an artifact, the timings already went to stdout.
pub fn write_bench_record() {
    let results = match RESULTS.lock() {
        Ok(results) => results.clone(),
        Err(_) => return,
    };
    if results.is_empty() {
        return;
    }
    let name = bench_name();
    let mut json = format!("{{\"schema\":1,\"name\":{name:?},\"params\":{{}},\"metrics\":{{");
    for (i, (label, ns)) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let metric = format!("{}_ns", sanitize_label(label));
        json.push_str(&format!(
            "{metric:?}:{{\"value\":{ns:?},\"dir\":\"lower\",\"tol\":1.0}}"
        ));
    }
    json.push_str("},\"profile\":[]}\n");
    let path = format!("BENCH_{name}.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("criterion shim: could not write {path}: {e}");
    }
}

/// The record name: executable file stem minus cargo's `-<hex>` suffix.
fn bench_name() -> String {
    let stem = std::env::args()
        .next()
        .map(|argv0| {
            std::path::Path::new(&argv0)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default()
        })
        .unwrap_or_default();
    strip_hash(&stem)
}

fn strip_hash(stem: &str) -> String {
    match stem.rsplit_once('-') {
        Some((base, hash))
            if !base.is_empty()
                && !hash.is_empty()
                && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            base.to_string()
        }
        _ if stem.is_empty() => "unknown".to_string(),
        _ => stem.to_string(),
    }
}

fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn format_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Collect benchmark functions into a runnable group (shim).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group passed to it (shim).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_bench_record();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut b = Bencher::default();
        b.iter(|| black_box(2u64).wrapping_mul(3));
        assert!(b.ns_per_iter > 0.0);
        assert!(b.iters >= 1);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::from_parameter(65536).to_string(), "65536");
        assert_eq!(BenchmarkId::new("perm", 16).to_string(), "perm/16");
    }

    #[test]
    fn record_names_drop_cargo_hashes() {
        assert_eq!(strip_hash("perf_scan-0a1b2c3d4e5f6789"), "perf_scan");
        assert_eq!(strip_hash("perf_scan"), "perf_scan");
        assert_eq!(strip_hash("perf-scan"), "perf-scan");
        assert_eq!(strip_hash(""), "unknown");
        assert_eq!(sanitize_label("group/case 16"), "group_case_16");
    }
}
