//! Scan-output archival: a full scan's records survive the CSV round
//! trip byte-for-byte, so results can be stored and re-analyzed offline
//! like real ZMap output.

use originscan::netmodel::{OriginId, Protocol, SimNet, WorldConfig};
use originscan::scanner::engine::{run_scan, ScanConfig};
use originscan::scanner::output::{from_csv_all, to_csv_all, HEADER};

#[test]
fn full_scan_roundtrips_through_csv() {
    let world = WorldConfig::tiny(62).build();
    let origins = [OriginId::Germany];
    let net = SimNet::new(&world, &origins, 75_600.0);
    for proto in [Protocol::Http, Protocol::Ssh] {
        let mut cfg = ScanConfig::new(world.space(), proto, 5);
        cfg.l7_retries = 2; // exercise the attempts column
        let out = run_scan(&net, &cfg).unwrap();
        assert!(!out.records.is_empty());
        let doc = to_csv_all(&out.records);
        assert!(doc.starts_with(HEADER));
        assert_eq!(doc.lines().count(), out.records.len() + 1);
        let back = from_csv_all(&doc);
        assert_eq!(back, out.records, "{proto}");
    }
}
