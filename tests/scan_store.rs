//! End-to-end guarantees of the scan-set store, asserted at experiment
//! level:
//!
//! 1. **Determinism** — two same-seed experiments serialize their
//!    scan-set stores to byte-identical files, and the analyses they
//!    feed (`full_report`) are byte-identical too.
//! 2. **Corruption** — flipped checksum bytes and truncated sections in
//!    a store *file* surface as typed `StoreError`s through both the
//!    eager and the lazy reader, never as panics.
//! 3. **Consistency** — the persisted bitmaps answer the same counts as
//!    the in-memory matrices they were built from.
//! 4. **Sorted iteration** — the analyses' host orderings are reproducible
//!    ascending orders (regression guard for hash-order dependence).

use originscan::core::experiment::{Experiment, ExperimentConfig};
use originscan::core::summary::full_report;
use originscan::core::ExperimentResults;
use originscan::netmodel::{OriginId, Protocol, World, WorldConfig};
use originscan::store::{ScanSetStore, StoreError, StoreKey, StoreReader};

fn run(world: &World) -> ExperimentResults<'_> {
    let cfg = ExperimentConfig {
        origins: vec![OriginId::Us1, OriginId::Japan, OriginId::Censys],
        protocols: vec![Protocol::Http, Protocol::Ssh],
        trials: 2,
        ..Default::default()
    };
    Experiment::new(world, cfg).run().unwrap()
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "originscan_scan_store_{}_{name}.oscs",
        std::process::id()
    ));
    p
}

#[test]
fn same_seed_runs_serialize_identically() {
    let world_a = WorldConfig::tiny(41).build();
    let world_b = WorldConfig::tiny(41).build();
    let ra = run(&world_a);
    let rb = run(&world_b);
    let bytes_a = ra.scan_set_store().to_bytes().unwrap();
    let bytes_b = rb.scan_set_store().to_bytes().unwrap();
    assert_eq!(
        bytes_a, bytes_b,
        "same-seed store files must be byte-identical"
    );
    assert_eq!(
        full_report(&ra),
        full_report(&rb),
        "same-seed reports must be byte-identical"
    );
    // A different seed produces a different store (sanity: the bytes are
    // not constant).
    let world_c = WorldConfig::tiny(42).build();
    let rc = run(&world_c);
    assert_ne!(bytes_a, rc.scan_set_store().to_bytes().unwrap());
}

#[test]
fn store_matches_matrices_and_reloads() {
    let world = WorldConfig::tiny(41).build();
    let r = run(&world);
    let store = r.scan_set_store();
    // 2 protocols × 2 trials × 3 origins.
    assert_eq!(store.len(), 12);
    let path = temp_path("reload");
    store.write_to(&path).unwrap();
    let reader = StoreReader::open(&path).unwrap();
    for m in r.matrices() {
        for oi in 0..3 {
            let key = StoreKey::new(m.protocol.name(), m.trial, oi as u16);
            // Lazy cardinality (directory only) matches the matrix count.
            let lazy = reader.lazy(&key).unwrap();
            assert_eq!(lazy.cardinality() as usize, m.seen_count(oi));
            // Full load matches the in-memory set exactly.
            let set = reader.load(&key).unwrap();
            assert_eq!(&set, &m.seen_sets[oi]);
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_store_files_surface_typed_errors() {
    let world = WorldConfig::tiny(41).build();
    let r = run(&world);
    let store = r.scan_set_store();
    let bytes = store.to_bytes().unwrap();
    let path = temp_path("corrupt");

    // Flip one byte in every region of the file; each flip must produce a
    // typed error from the eager decoder (or, for payload flips, from the
    // reader's chunk loads) — never a panic, never silent acceptance.
    let probes = [
        1usize,          // magic
        4,               // version
        16,              // toc_crc
        24,              // toc body
        bytes.len() / 2, // some entry's directory or payload
        bytes.len() - 1, // last payload byte
    ];
    for &pos in &probes {
        let mut b = bytes.clone();
        b[pos] ^= 0x20;
        let eager = ScanSetStore::from_bytes(&b);
        if eager.is_ok() {
            panic!("flip at {pos} was accepted");
        }
        // The same file on disk through the lazy reader: opening may
        // already fail (header/TOC damage); otherwise some entry must.
        std::fs::write(&path, &b).unwrap();
        match StoreReader::open(&path) {
            Err(_) => {}
            Ok(reader) => {
                let keys: Vec<StoreKey> = reader.keys().cloned().collect();
                let any_fails = keys.iter().any(|k| reader.load(k).is_err());
                assert!(any_fails, "flip at {pos} invisible to the reader");
            }
        }
    }

    // Truncations at section boundaries: header, TOC, entry, payload.
    for cut in [3, 10, 30, bytes.len() * 2 / 3, bytes.len() - 5] {
        let err = ScanSetStore::from_bytes(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. } | StoreError::ChecksumMismatch { .. }
            ),
            "cut at {cut}: {err}"
        );
        std::fs::write(&path, &bytes[..cut]).unwrap();
        match StoreReader::open(&path) {
            Err(e) => assert!(
                matches!(
                    e,
                    StoreError::Truncated { .. } | StoreError::ChecksumMismatch { .. }
                ),
                "open after cut {cut}: {e}"
            ),
            Ok(reader) => {
                let keys: Vec<StoreKey> = reader.keys().cloned().collect();
                let any_fails = keys.iter().any(|k| reader.load(k).is_err());
                assert!(any_fails, "cut at {cut} invisible to the reader");
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

/// Regression guard for the hash-iteration-order sweep: every host list
/// the set analyses hand out is sorted ascending, so downstream output
/// can never depend on an incidental memory layout.
#[test]
fn analysis_host_orders_are_sorted() {
    use originscan::core::diff::diff_records;
    use originscan::core::exclusivity::exclusive_hosts;

    let world = WorldConfig::tiny(41).build();
    let r = run(&world);
    let panel = r.panel(Protocol::Http);
    for oi in 0..panel.origins.len() {
        let hosts = exclusive_hosts(&panel, oi);
        assert!(
            hosts.windows(2).all(|w| w[0] < w[1]),
            "origin {oi} unsorted"
        );
    }
    // Matrix host lists and bitmap views are ascending too.
    for m in r.matrices() {
        assert!(m.addrs.windows(2).all(|w| w[0] < w[1]));
        for s in &m.seen_sets {
            let v = s.to_vec();
            assert!(v.windows(2).all(|w| w[0] < w[1]));
        }
    }
    // Two experiment runs order identically (no ambient randomness).
    let world2 = WorldConfig::tiny(41).build();
    let r2 = run(&world2);
    let p2 = r2.panel(Protocol::Http);
    for oi in 0..panel.origins.len() {
        assert_eq!(exclusive_hosts(&panel, oi), exclusive_hosts(&p2, oi));
    }
    let d = diff_records(&[], &[]);
    assert!(d.only_a.is_empty() && d.only_b.is_empty());
}
