//! End-to-end guarantees of the target planner, asserted from prior-scan
//! store files all the way to `.osplan` bytes:
//!
//! 1. **Determinism** — two from-scratch pipeline runs (same-seed world →
//!    experiment → store file → `PlanBuilder` → plan file) produce
//!    byte-identical plans, for every strategy.
//! 2. **Corruption** — a flipped byte anywhere in a plan file surfaces as
//!    a typed `PlanError` or decodes to the identical plan (trailing
//!    slack does not exist — every byte is load-bearing), never a panic,
//!    and never a silently different allowlist.
//! 3. **Truncation** — every proper prefix of a plan file is rejected
//!    with a typed error.

use originscan::core::experiment::{Experiment, ExperimentConfig};
use originscan::core::frontier::as_spans;
use originscan::netmodel::{OriginId, Protocol, World, WorldConfig};
use originscan::plan::{PlanBuilder, PlanError, Strategy, TargetPlan};
use originscan::store::StoreReader;

fn temp_path(name: &str, ext: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "originscan_plan_det_{}_{name}.{ext}",
        std::process::id()
    ));
    p
}

/// The whole pipeline from nothing: build the world, run the prior
/// trials, persist the store, learn the plan from the *file*, and return
/// the plan's serialized bytes.
fn plan_bytes_from_scratch(tag: &str, strategy: &Strategy) -> Vec<u8> {
    let mut wc = WorldConfig::tiny(2026);
    wc.density_scale = 0.1;
    let world: World = wc.build();
    let cfg = ExperimentConfig {
        origins: vec![OriginId::Us1, OriginId::Germany],
        protocols: vec![Protocol::Http],
        trials: 2,
        ..ExperimentConfig::default()
    };
    let results = Experiment::new(&world, cfg).run().unwrap();
    let store_path = temp_path(tag, "oscs");
    results.scan_set_store().write_to(&store_path).unwrap();

    let reader = StoreReader::open(&store_path).unwrap();
    let mut builder = PlanBuilder::new(world.space(), 2026)
        .unwrap()
        .with_topology(as_spans(&world));
    builder.observe_reader(&reader, "HTTP").unwrap();
    let plan = builder.build(strategy).unwrap();

    let plan_path = temp_path(tag, "osplan");
    plan.write_to(&plan_path).unwrap();
    let bytes = std::fs::read(&plan_path).unwrap();
    // The file decodes back to the same plan it came from.
    assert_eq!(TargetPlan::open(&plan_path).unwrap(), plan);
    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(&plan_path).ok();
    bytes
}

#[test]
fn same_seed_pipelines_write_identical_plans() {
    for (i, strategy) in [
        Strategy::Observed,
        Strategy::DensityTopK { keep_ppm: 250_000 },
        Strategy::ChurnWeighted { keep_ppm: 250_000 },
        Strategy::Hybrid { keep_ppm: 500_000 },
    ]
    .iter()
    .enumerate()
    {
        let a = plan_bytes_from_scratch(&format!("a{i}"), strategy);
        let b = plan_bytes_from_scratch(&format!("b{i}"), strategy);
        assert_eq!(
            a, b,
            "strategy {strategy:?}: two from-scratch runs must write \
             byte-identical plan files"
        );
        assert!(!a.is_empty());
    }
}

#[test]
fn every_single_byte_flip_is_detected() {
    let bytes = plan_bytes_from_scratch("flip", &Strategy::Observed);
    let original = TargetPlan::from_bytes(&bytes).unwrap();
    for i in 0..bytes.len() {
        for bit in [0x01u8, 0x80] {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= bit;
            match TargetPlan::from_bytes(&corrupt) {
                // A typed error is the expected outcome; the error kind
                // depends on which section the byte sits in.
                Err(
                    PlanError::BadMagic { .. }
                    | PlanError::UnsupportedVersion { .. }
                    | PlanError::Truncated { .. }
                    | PlanError::ChecksumMismatch { .. }
                    | PlanError::Corrupt { .. }
                    | PlanError::TooLarge { .. }
                    | PlanError::InvalidInput { .. },
                ) => {}
                Err(e) => panic!("byte {i} bit {bit:#x}: unexpected error {e}"),
                // Header fields outside the entries checksum (space,
                // seed, strategy, flags) may decode — but then the plan
                // must differ from the original in a *declared* field,
                // never silently share identity with it.
                Ok(p) => assert_ne!(
                    p, original,
                    "byte {i} bit {bit:#x}: corrupted file decoded to \
                     the original plan"
                ),
            }
        }
    }
}

#[test]
fn every_truncation_is_rejected() {
    let bytes = plan_bytes_from_scratch("trunc", &Strategy::Observed);
    for cut in 0..bytes.len() {
        match TargetPlan::from_bytes(&bytes[..cut]) {
            Err(_) => {}
            Ok(_) => panic!("prefix of {cut}/{} bytes decoded", bytes.len()),
        }
    }
}

#[test]
fn corrupted_file_on_disk_is_rejected_through_open() {
    let bytes = plan_bytes_from_scratch("disk", &Strategy::Observed);
    let path = temp_path("disk_corrupt", "osplan");
    // Flip a byte in the middle of the entries section (past the fixed
    // header prefix), guaranteeing a checksum mismatch through `open`.
    let mut corrupt = bytes.clone();
    let mid = bytes.len() - 4;
    corrupt[mid] ^= 0xff;
    std::fs::write(&path, &corrupt).unwrap();
    assert!(
        TargetPlan::open(&path).is_err(),
        "entries corruption must not pass open()"
    );
    std::fs::remove_file(&path).ok();
}
