//! Adversarial co-simulation contracts: the politeness × aggression
//! sweep is byte-deterministic (matrix TSV and telemetry JSONL identical
//! across same-seed runs), the adaptive scanner degrades gracefully
//! where the open-loop baseline collapses, and an adaptive scan resumed
//! from a checkpoint is bit-identical to an uninterrupted one.

use originscan::core::adversarial::{
    AdversarialConfig, AdversarialResults, AdversarialSweep, CellStatus, PolitenessProfile,
};
use originscan::netmodel::defend::AggressionProfile;
use originscan::netmodel::{OriginId, Protocol, SimNet, World, WorldConfig};
use originscan::scanner::engine::ScanConfig;
use originscan::scanner::target::{L7Ctx, L7Reply, Network, ProbeCtx, SynReply};
use originscan::telemetry::Scope;
use originscan::wire::tcp::TcpHeader;
use std::sync::atomic::{AtomicBool, Ordering};

/// Compressed trials so per-AS probe rates reach the detectors' trip
/// range at tiny-world scale.
const DUR_S: f64 = 6.0 * 3600.0;

fn sweep_cfg() -> AdversarialConfig {
    AdversarialConfig {
        trials: 2,
        duration_s: DUR_S,
        politeness: vec![PolitenessProfile::baseline(), PolitenessProfile::adaptive()],
        aggression: vec![AggressionProfile::off(), AggressionProfile::aggressive()],
        ..AdversarialConfig::default()
    }
}

fn run(world: &World) -> AdversarialResults {
    AdversarialSweep::new(world, sweep_cfg()).run().unwrap()
}

#[test]
fn same_seed_sweeps_are_byte_identical() {
    let world = WorldConfig::tiny(41).build();
    let a = run(&world);
    let b = run(&world);

    // The exported matrix bytes...
    assert_eq!(a.matrix_tsv(), b.matrix_tsv());
    assert_eq!(a.render(), b.render());
    // ...the condensed cells...
    assert_eq!(a.cells(), b.cells());
    // ...and every serialized telemetry surface, parallel cells included.
    assert_eq!(a.telemetry(), b.telemetry());
    assert_eq!(a.telemetry().events_jsonl(), b.telemetry().events_jsonl());
    assert_eq!(a.telemetry().metrics_jsonl(), b.telemetry().metrics_jsonl());
    assert_eq!(a.telemetry().to_jsonl(), b.telemetry().to_jsonl());

    // The defenders actually engaged, so the equality covered the
    // adversarial paths, not an empty stream.
    assert!(a.cell(0, 1).defense.detections > 0);
    assert!(a.cell(1, 1).backoffs > 0);
}

#[test]
fn adaptive_scanner_degrades_gracefully_under_aggressive_defense() {
    let world = WorldConfig::tiny(41).build();
    let r = run(&world);
    let baseline = r.cell(0, 1);
    let adaptive = r.cell(1, 1);

    // The open-loop baseline is detected until the reputation store
    // lists it; its coverage collapses.
    assert_eq!(baseline.status, CellStatus::Listed);
    assert!(
        baseline.mean_coverage() < 0.5,
        "baseline kept {:.3}",
        baseline.mean_coverage()
    );
    // The adaptive scanner reacts — backoff, rotation, deferral — and
    // retains strictly more coverage than the baseline.
    assert!(adaptive.backoffs > 0, "no backoff engaged");
    assert!(adaptive.rotations > 0, "no source rotation");
    assert!(
        adaptive.mean_coverage() > baseline.mean_coverage(),
        "adaptive {:.4} must beat baseline {:.4}",
        adaptive.mean_coverage(),
        baseline.mean_coverage()
    );

    // The detection → block → backoff sequence is visible in the
    // exported timeline of the adaptive cell (origin index = row-major
    // cell index: baseline×off=0, baseline×aggr=1, adaptive×off=2,
    // adaptive×aggr=3).
    let t = r.telemetry();
    let events: Vec<&str> = t
        .events_for(Scope::new("HTTP", 0, 3))
        .map(|e| e.kind.name())
        .collect();
    let first = |name: &str| events.iter().position(|&n| n == name);
    let detected = first("scan_detected").expect("a detection in the timeline");
    let blocked = first("block_started").expect("a block in the timeline");
    let backoff = first("backoff_engaged").expect("a backoff in the timeline");
    assert!(detected <= blocked, "detection precedes its block");
    assert!(blocked < backoff, "the scanner reacts after being blocked");
    // The JSONL export carries the same story.
    let jsonl = t.events_jsonl();
    for kind in [
        "scan_detected",
        "block_started",
        "backoff_engaged",
        "source_rotated",
    ] {
        assert!(jsonl.contains(kind), "{kind} missing from JSONL");
    }
    // And the baseline's listing is on record.
    assert!(jsonl.contains("origin_listed"));
}

/// A network that panics the first time a chosen address is probed.
struct PanicOnce<N> {
    inner: N,
    addr: u32,
    armed: AtomicBool,
}

impl<N: Network> Network for PanicOnce<N> {
    fn syn(&self, ctx: &ProbeCtx, probe: &TcpHeader) -> SynReply {
        if ctx.dst == self.addr && self.armed.swap(false, Ordering::SeqCst) {
            panic!("injected panic at {:#x}", self.addr);
        }
        self.inner.syn(ctx, probe)
    }
    fn l7(&self, ctx: &L7Ctx, req: &[u8]) -> L7Reply {
        self.inner.l7(ctx, req)
    }
}

/// A stateless blocking front: every even /24 answers RSTs, emulating a
/// tarpit without any memory. Statelessness matters — a resumed scan
/// replays the span since the last checkpoint, and only a memoryless
/// network guarantees the replay sees identical replies (a stateful
/// `DefenderNet`'s detectors would legitimately diverge).
struct RstBand<'a, N> {
    inner: &'a N,
}

impl<N: Network> Network for RstBand<'_, N> {
    fn syn(&self, ctx: &ProbeCtx, probe: &TcpHeader) -> SynReply {
        if (ctx.dst >> 8).is_multiple_of(2) {
            SynReply::Rst(TcpHeader::rst_reply(probe))
        } else {
            self.inner.syn(ctx, probe)
        }
    }
    fn l7(&self, ctx: &L7Ctx, req: &[u8]) -> L7Reply {
        self.inner.l7(ctx, req)
    }
}

#[test]
fn adaptive_scan_resumes_bit_identically_from_checkpoints() {
    use originscan::core::experiment::{supervise_scan, RunStatus, SupervisorPolicy};

    let world = WorldConfig::tiny(41).build();
    let origins = [OriginId::Us1];
    let net = SimNet::new(&world, &origins, DUR_S);
    let banded = RstBand { inner: &net };

    let p = PolitenessProfile::adaptive();
    let space = world.space();
    let mut cfg = ScanConfig::new(space, Protocol::Http, 99);
    cfg.rate_pps = originscan::scanner::rate::rate_for_duration(space * 2, DUR_S);
    cfg.adapt = p.adapt.clone();
    cfg.source_ips = (0..p.source_ips)
        .map(|i| 0x0a00_0100 + u32::from(i))
        .collect();

    let clean = supervise_scan(&banded, &cfg, None, &SupervisorPolicy::default(), None);
    assert_eq!(clean.status, RunStatus::Completed);
    let out = clean.output.as_ref().unwrap();
    // The RST saturation drove the controller, so the checkpoints carried
    // live pacer/controller state, not defaults.
    assert!(
        out.records.iter().any(|rec| rec.got_rst),
        "no RSTs observed"
    );

    // Crash mid-scan; the supervisor resumes from a periodic checkpoint
    // (AdaptCheckpoint: pacer snapshot + controller state).
    let victim = out.records[out.records.len() / 2].addr;
    let panicky = PanicOnce {
        inner: RstBand { inner: &net },
        addr: victim,
        armed: AtomicBool::new(true),
    };
    let resumed = supervise_scan(&panicky, &cfg, None, &SupervisorPolicy::default(), None);
    assert_eq!(resumed.status, RunStatus::Resumed { retries: 1 });
    assert_eq!(
        resumed.output, clean.output,
        "resumed adaptive scan must be bit-identical"
    );
}
