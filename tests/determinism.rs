//! Reproducibility: the entire pipeline is a pure function of
//! (world seed, experiment config), regardless of thread scheduling.

use originscan::core::{Experiment, ExperimentConfig};
use originscan::netmodel::{OriginId, Protocol, WorldConfig};

fn config() -> ExperimentConfig {
    ExperimentConfig {
        origins: vec![OriginId::Australia, OriginId::Us64, OriginId::Censys],
        protocols: vec![Protocol::Http, Protocol::Ssh],
        trials: 2,
        ..ExperimentConfig::default()
    }
}

#[test]
fn identical_runs_identical_results() {
    let world = WorldConfig::tiny(77).build();
    let a = Experiment::new(&world, config()).run().unwrap();
    let b = Experiment::new(&world, config()).run().unwrap();
    assert_eq!(a.matrices().len(), b.matrices().len());
    for (ma, mb) in a.matrices().iter().zip(b.matrices()) {
        assert_eq!(ma.addrs, mb.addrs);
        assert_eq!(ma.hour, mb.hour);
        assert_eq!(ma.outcomes, mb.outcomes);
    }
}

#[test]
fn world_seed_changes_everything() {
    let w1 = WorldConfig::tiny(77).build();
    let w2 = WorldConfig::tiny(78).build();
    let a = Experiment::new(&w1, config()).run().unwrap();
    let b = Experiment::new(&w2, config()).run().unwrap();
    assert_ne!(
        a.matrix(Protocol::Http, 0).addrs,
        b.matrix(Protocol::Http, 0).addrs
    );
}

#[test]
fn scan_seed_changes_hours_not_ground_truth_much() {
    // A different ZMap seed permutes the scan order (different hours) but
    // the same hosts exist; coverage stays in the same ballpark.
    let world = WorldConfig::tiny(79).build();
    let mut c1 = config();
    c1.base_seed = 1;
    let mut c2 = config();
    c2.base_seed = 2;
    let a = Experiment::new(&world, c1).run().unwrap();
    let b = Experiment::new(&world, c2).run().unwrap();
    let (ma, mb) = (a.matrix(Protocol::Http, 0), b.matrix(Protocol::Http, 0));
    // Hour assignments differ for common hosts.
    let mut differing_hours = 0;
    let mut common = 0;
    for (i, addr) in ma.addrs.iter().enumerate() {
        if let Some(j) = mb.index_of(*addr) {
            common += 1;
            if ma.hour[i] != mb.hour[j] {
                differing_hours += 1;
            }
        }
    }
    assert!(common > 100);
    assert!(
        differing_hours * 10 > common * 8,
        "{differing_hours}/{common} hours differ"
    );
    // Ground-truth sizes are within a few percent of each other.
    let ratio = ma.len() as f64 / mb.len() as f64;
    assert!(
        (0.9..1.1).contains(&ratio),
        "GT sizes {} vs {}",
        ma.len(),
        mb.len()
    );
}

#[test]
fn origin_roster_order_does_not_change_observations() {
    // The same origin observes the same outcomes regardless of its index
    // in the roster (no hidden cross-origin state leakage).
    let world = WorldConfig::tiny(80).build();
    let c1 = ExperimentConfig {
        origins: vec![OriginId::Japan, OriginId::Censys],
        protocols: vec![Protocol::Https],
        trials: 1,
        ..ExperimentConfig::default()
    };
    let c2 = ExperimentConfig {
        origins: vec![OriginId::Censys, OriginId::Japan],
        ..c1.clone()
    };
    let a = Experiment::new(&world, c1).run().unwrap();
    let b = Experiment::new(&world, c2).run().unwrap();
    let (ma, mb) = (a.matrix(Protocol::Https, 0), b.matrix(Protocol::Https, 0));
    assert_eq!(
        ma.addrs, mb.addrs,
        "ground truth is roster-order independent"
    );
    assert_eq!(ma.outcomes[0], mb.outcomes[1], "Japan's view is stable");
    assert_eq!(ma.outcomes[1], mb.outcomes[0], "Censys's view is stable");
}
