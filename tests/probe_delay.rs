//! The §7 delayed-probe mitigation: separating the two probes in time
//! recovers hosts that correlated loss would otherwise hide.

use originscan::core::packetloss::both_lost_fraction;
use originscan::core::{Experiment, ExperimentConfig};
use originscan::netmodel::{OriginId, Protocol, WorldConfig};

fn coverage_with_delay(world: &originscan::netmodel::World, delay_s: f64) -> (f64, f64) {
    let cfg = ExperimentConfig {
        origins: vec![OriginId::Us1, OriginId::Japan],
        protocols: vec![Protocol::Http],
        trials: 1,
        probes: 2,
        probe_delay_s: delay_s,
        ..ExperimentConfig::default()
    };
    let r = Experiment::new(world, cfg).run().unwrap();
    let cov = r.coverage(Protocol::Http, 0, OriginId::Us1).fraction();
    let both = both_lost_fraction(r.matrix(Protocol::Http, 0), 0);
    (cov, both)
}

#[test]
fn delayed_probes_escape_correlated_loss() {
    let world = WorldConfig::small(808).build();
    let (cov0, both0) = coverage_with_delay(&world, 0.0);
    let (cov4h, both4h) = coverage_with_delay(&world, 4.0 * 3600.0);
    // Delay improves coverage...
    assert!(
        cov4h > cov0,
        "4h-delayed probes should beat back-to-back: {cov4h} vs {cov0}"
    );
    // ...because the second probe lands in a fresh transient-state window:
    // the both-lost fraction collapses toward the i.i.d. level.
    assert!(
        both4h < both0 - 0.1,
        "delay should break probe-loss correlation: {both4h} vs {both0}"
    );
}
