//! End-to-end integration test: the paper's headline *qualitative*
//! results must hold on the simulated Internet.
//!
//! One full experiment (7 origins × 3 protocols × 3 trials) is run once
//! and every section's claim is checked against it.

use originscan::core::classify::{class_counts, host_network_split, Class};
use originscan::core::coverage::{mcnemar_all_pairs, mean_coverage};
use originscan::core::exclusivity::{exclusive_counts, miss_overlap_histogram};
use originscan::core::multiorigin::{combo_sweep, single_ip_roster, ProbePolicy};
use originscan::core::packetloss::{both_lost_fraction, global_drop_estimate};
use originscan::core::ssh::ssh_miss_breakdown;
use originscan::core::{Experiment, ExperimentConfig};
use originscan::netmodel::{OriginId, Protocol, WorldConfig};

fn origin_idx(results: &originscan::core::ExperimentResults<'_>, o: OriginId) -> usize {
    results.origin_index(o)
}

#[test]
fn headline_results_reproduce() {
    let world = WorldConfig::small(2020).build();
    let cfg = ExperimentConfig {
        origins: OriginId::MAIN.to_vec(),
        protocols: originscan::scanner::probe::PAPER_PROTOCOLS.to_vec(),
        trials: 3,
        probes: 2,
        ..ExperimentConfig::default()
    };
    let results = Experiment::new(&world, cfg).run().unwrap();

    // --- §3 / Fig 1: coverage ordering -------------------------------
    // Academic origins see ~97% of HTTP(S); Censys materially less; no
    // origin reaches 100%; SSH coverage trails HTTP(S) by a wide margin.
    for proto in [Protocol::Http, Protocol::Https] {
        for &o in &OriginId::MAIN {
            let c = mean_coverage(&results, proto, o);
            assert!(c < 1.0, "{o} {proto}: full coverage is impossible");
            if o != OriginId::Censys {
                assert!(c > 0.90, "{o} {proto}: coverage {c}");
            }
        }
        let cen = mean_coverage(&results, proto, OriginId::Censys);
        let academics = [OriginId::Australia, OriginId::Japan, OriginId::Us1];
        for a in academics {
            assert!(
                cen < mean_coverage(&results, proto, a),
                "{proto}: Censys {cen} should trail {a}"
            );
        }
    }
    let ssh_cov = mean_coverage(&results, Protocol::Ssh, OriginId::Japan);
    let http_cov = mean_coverage(&results, Protocol::Http, OriginId::Japan);
    assert!(
        http_cov - ssh_cov > 0.04,
        "SSH coverage ({ssh_cov}) should trail HTTP ({http_cov}) clearly"
    );

    // --- §3: all origin pairs statistically different ------------------
    let (tests, alpha) = mcnemar_all_pairs(&results, Protocol::Http, 0.001);
    let significant = tests.iter().filter(|t| t.result.p_value < alpha).count();
    // At full scale every pair is significant (58M paired hosts); at our
    // reduced scale a few near-identical academic pairs fall below the
    // Bonferroni bar, so require a strong majority.
    assert!(
        significant * 10 >= tests.len() * 7,
        "only {significant}/{} HTTP origin pairs significant",
        tests.len()
    );

    // --- §3 / Fig 2: taxonomy ------------------------------------------
    let panel_http = results.panel(Protocol::Http);
    let counts = class_counts(&panel_http);
    // Transient misses nearly always hit individual hosts, not /24s.
    let jp = origin_idx(&results, OriginId::Japan);
    let split = host_network_split(&world, &panel_http, jp, Class::Transient);
    assert!(split.individual_hosts > split.network_hosts * 3);

    // --- §4 / Table 1: exclusivity --------------------------------------
    let ex = exclusive_counts(&panel_http);
    let cen = origin_idx(&results, OriginId::Censys);
    let us64 = origin_idx(&results, OriginId::Us64);
    let max_inacc = *ex.exclusive_inaccessible.iter().max().unwrap();
    assert_eq!(
        ex.exclusive_inaccessible[cen], max_inacc,
        "Censys must dominate exclusive inaccessibility: {:?}",
        ex.exclusive_inaccessible
    );
    let max_acc = *ex.exclusive_accessible.iter().max().unwrap();
    assert_eq!(
        ex.exclusive_accessible[us64], max_acc,
        "US64 must dominate exclusive accessibility: {:?}",
        ex.exclusive_accessible
    );
    // Censys's long-term losses dwarf the academics'.
    for &o in &[OriginId::Australia, OriginId::Japan, OriginId::Us1] {
        let oi = origin_idx(&results, o);
        assert!(
            counts[cen].long_term > 2 * counts[oi].long_term,
            "CEN {} vs {o} {}",
            counts[cen].long_term,
            counts[oi].long_term
        );
    }
    // Fresh origins (BR, JP) lose more long-term than the US subnet.
    let br = origin_idx(&results, OriginId::Brazil);
    let us1 = origin_idx(&results, OriginId::Us1);
    assert!(
        counts[br].long_term > counts[us1].long_term,
        "BR {} vs US1 {}",
        counts[br].long_term,
        counts[us1].long_term
    );

    // --- Fig 3: about half of long-term-missing hosts are exclusive -----
    let hist = miss_overlap_histogram(&panel_http, Class::LongTerm);
    let total: usize = hist.iter().sum();
    assert!(total > 0);
    assert!(
        hist[0] * 5 > total,
        "single-origin long-term misses should be a major share: {hist:?}"
    );

    // --- §5.2: loss is correlated, not i.i.d. ---------------------------
    let m = results.matrix(Protocol::Http, 0);
    for oi in 0..7 {
        let f = both_lost_fraction(m, oi);
        assert!(f > 0.55, "origin {oi}: both-lost fraction {f}");
        let d = global_drop_estimate(m, oi);
        assert!(
            (0.0005..0.08).contains(&d),
            "origin {oi}: drop estimate {d}"
        );
    }

    // --- §6 / Fig 14: SSH mechanisms ------------------------------------
    let mssh = results.matrix(Protocol::Ssh, 1);
    let b = ssh_miss_breakdown(&world, mssh, origin_idx(&results, OriginId::Japan));
    assert!(b.probabilistic_blocking > 0, "{b:?}");
    assert!(b.temporal_blocking > 0, "{b:?}");

    // SSH missing hosts are less often exclusive to one origin than HTTP
    // (Fig 3 vs Fig 8 structure; MaxStartups hits everyone).
    let panel_ssh = results.panel(Protocol::Ssh);
    let ssh_hist = miss_overlap_histogram(&panel_ssh, Class::Transient);
    let multi: usize = ssh_hist[1..].iter().sum();
    assert!(
        multi > ssh_hist[0] / 4,
        "SSH transient misses overlap: {ssh_hist:?}"
    );

    // --- §7 / Fig 15: multi-origin scanning -----------------------------
    let roster = single_ip_roster(&results);
    let d1 = combo_sweep(&results, Protocol::Http, &roster, 1, ProbePolicy::Double);
    let d2 = combo_sweep(&results, Protocol::Http, &roster, 2, ProbePolicy::Double);
    let d3 = combo_sweep(&results, Protocol::Http, &roster, 3, ProbePolicy::Double);
    assert!(d2.summary().median > d1.summary().median);
    assert!(d3.summary().median >= d2.summary().median);
    assert!(
        d3.summary().median > 0.97,
        "3 origins: {}",
        d3.summary().median
    );
    assert!(d3.std_dev() < d1.std_dev());
    // One probe from two origins beats two probes from one origin.
    let two_1p = combo_sweep(&results, Protocol::Http, &roster, 2, ProbePolicy::Single);
    assert!(two_1p.summary().median > d1.summary().median);
}
