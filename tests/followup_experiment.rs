//! The §7 follow-up experiment (Appendix A Table 4b, Fig 18): fresh
//! Censys ranges recover coverage, and a collocated Tier-1 triad is the
//! worst triad.

use originscan::core::coverage::mean_coverage;
use originscan::core::multiorigin::{named_combo_coverage, single_ip_roster, ProbePolicy};
use originscan::core::{Experiment, ExperimentConfig};
use originscan::netmodel::{OriginId, Protocol, WorldConfig};
use originscan::stats::combos::k_subsets;

#[test]
fn follow_up_reproduces_fig18_and_censys_recovery() {
    let world = WorldConfig::small(777).build();

    // Main-run Censys for the before/after comparison. Ground truth is
    // only meaningful with multiple origins, so Censys is measured in a
    // multi-origin context.
    let main_cfg = ExperimentConfig {
        origins: vec![OriginId::Japan, OriginId::Us1, OriginId::Censys],
        protocols: vec![Protocol::Http],
        trials: 2,
        ..ExperimentConfig::default()
    };
    let main = Experiment::new(&world, main_cfg).run().unwrap();

    let follow = Experiment::new(&world, ExperimentConfig::follow_up(0xF011))
        .run()
        .unwrap();

    // Censys with fresh ranges sees clearly more than old Censys
    // (paper: > 5.5 percentage points more HTTP coverage).
    let fresh = mean_coverage(&follow, Protocol::Http, OriginId::CensysFresh);
    let old = mean_coverage(&main, Protocol::Http, OriginId::Censys);
    assert!(
        fresh - old > 0.02,
        "fresh ranges should recover coverage: old {old}, fresh {fresh}"
    );

    // Every origin in the follow-up is a credible scanner.
    for &o in &OriginId::FOLLOW_UP {
        let c = mean_coverage(&follow, Protocol::Http, o);
        assert!(c > 0.9, "{o}: {c}");
    }

    // Fig 18: the collocated HE-NTT-TELIA triad is the worst triad (or
    // within noise of it) among all 3-subsets of the single-IP roster.
    let roster = single_ip_roster(&follow);
    let collocated = [
        OriginId::HurricaneElectric,
        OriginId::NttTransit,
        OriginId::Telia,
    ];
    let colo_cov = named_combo_coverage(&follow, Protocol::Http, &collocated, ProbePolicy::Single);
    let mut covs: Vec<(Vec<OriginId>, f64)> = Vec::new();
    for subset in k_subsets(roster.len(), 3) {
        let triad: Vec<OriginId> = subset.iter().map(|&i| roster[i]).collect();
        let c = named_combo_coverage(&follow, Protocol::Http, &triad, ProbePolicy::Single);
        covs.push((triad, c));
    }
    covs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    // The collocated triad must rank in the bottom quartile of triads.
    let rank = covs
        .iter()
        .position(|(t, _)| {
            t.contains(&collocated[0]) && t.contains(&collocated[1]) && t.contains(&collocated[2])
        })
        .expect("collocated triad present");
    assert!(
        rank * 4 <= covs.len(),
        "collocated triad ranked {rank} of {} (cov {colo_cov:.4}, worst {:.4}, best {:.4})",
        covs.len(),
        covs[0].1,
        covs[covs.len() - 1].1
    );
    // ... yet still provides high absolute coverage with low spread across
    // triads (σ = 0.1% in the paper; we just bound the range).
    let spread = covs[covs.len() - 1].1 - covs[0].1;
    assert!(colo_cov > 0.93, "collocated triad coverage {colo_cov}");
    assert!(spread < 0.05, "triad coverage spread {spread}");
}
