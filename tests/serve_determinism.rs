//! End-to-end determinism of the serve stack: two engines over stores
//! built by two same-seed experiment runs answer every query
//! byte-identically — first in-process, then through real HTTP servers
//! on loopback. Cache state is deliberately skewed between the two
//! sides to prove response bytes are a pure function of (store, query).

use originscan::core::{Experiment, ExperimentConfig};
use originscan::netmodel::{OriginId, Protocol, WorldConfig};
use originscan::serve::{QueryEngine, Server, ServerConfig};
use originscan::store::StoreReader;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn build_store(dir: &Path, name: &str) -> PathBuf {
    let world = WorldConfig::tiny(2020).build();
    let cfg = ExperimentConfig {
        origins: vec![OriginId::Brazil, OriginId::Germany, OriginId::Japan],
        protocols: vec![Protocol::Http],
        trials: 2,
        ..ExperimentConfig::default()
    };
    let results = Experiment::new(&world, cfg).run().expect("experiment");
    let path = dir.join(name);
    results
        .scan_set_store()
        .write_to(&path)
        .expect("write store");
    path
}

const QUERIES: &[&str] = &[
    "coverage proto=HTTP trial=0 origins=0,1",
    "coverage proto=HTTP trial=1 origins=0,1,2",
    "union proto=HTTP trial=0 origins=1,2",
    "diff proto=HTTP trial=0 a=0 b=2",
    "exclusive proto=HTTP trial=1 origin=1",
    "best-k proto=HTTP trial=0 k=2",
    "rank proto=HTTP trial=0 origin=0 addr=40000",
    "member proto=HTTP trial=0 origin=0 addr=40000",
];

#[test]
fn same_seed_stores_and_engines_agree() {
    let dir = std::env::temp_dir().join(format!("originscan-serve-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let pa = build_store(&dir, "a.oscs");
    let pb = build_store(&dir, "b.oscs");
    assert_eq!(
        std::fs::read(&pa).expect("read a"),
        std::fs::read(&pb).expect("read b"),
        "same-seed store files must be byte-identical"
    );

    let ea = QueryEngine::from_readers(vec![StoreReader::open(&pa).expect("open a")]);
    let eb = QueryEngine::from_readers(vec![StoreReader::open(&pb).expect("open b")]);
    for q in QUERIES {
        // Skew b's caches: answer every query once (misses), then again
        // (plan-memo hits). Bytes must match a's cold answers.
        let _ = eb.execute_text(q).expect(q);
        let warm = eb.execute_text(q).expect(q);
        let cold = ea.execute_text(q).expect(q);
        assert_eq!(cold, warm, "{q}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn http_query(addr: std::net::SocketAddr, query: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .ok();
    s.write_all(
        format!(
            "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{query}",
            query.len()
        )
        .as_bytes(),
    )
    .expect("send");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read");
    out.split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default()
}

#[test]
fn two_servers_answer_byte_identically_over_http() {
    let dir = std::env::temp_dir().join(format!("originscan-serve-det2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let pa = build_store(&dir, "a.oscs");
    let pb = build_store(&dir, "b.oscs");

    let sa = Server::start(
        Arc::new(QueryEngine::from_readers(vec![
            StoreReader::open(&pa).expect("open a")
        ])),
        None,
        ServerConfig::default(),
    )
    .expect("server a");
    let sb = Server::start(
        Arc::new(QueryEngine::from_readers(vec![
            StoreReader::open(&pb).expect("open b")
        ])),
        None,
        ServerConfig::default(),
    )
    .expect("server b");

    for q in QUERIES {
        let ra = http_query(sa.local_addr(), q);
        let _ = http_query(sb.local_addr(), q); // skew b's caches
        let rb = http_query(sb.local_addr(), q);
        assert!(!ra.is_empty(), "{q}: empty body");
        assert_eq!(ra, rb, "{q}");
    }
    sa.shutdown();
    sb.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
