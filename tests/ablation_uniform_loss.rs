//! Ablation: the 2012 i.i.d.-loss assumption vs the paper's correlated
//! reality (§7, "Multi-probe scanning").
//!
//! Under uniform random drop, a second back-to-back probe recovers almost
//! every loss (the original ZMap estimate). Under correlated loss, the
//! second probe barely helps — the basis for recommending extra *origins*
//! instead of extra probes. The `WorldConfig::uniform_loss` flag swaps the
//! loss model so both regimes can be measured with identical pipelines.

use originscan::core::packetloss::both_lost_fraction;
use originscan::core::{Experiment, ExperimentConfig};
use originscan::netmodel::{OriginId, Protocol, WorldConfig};

fn run(uniform: bool) -> (f64, f64, f64) {
    let mut wc = WorldConfig::small(404);
    wc.uniform_loss = uniform;
    let world = wc.build();
    let cfg = ExperimentConfig {
        origins: vec![OriginId::Us1, OriginId::Japan],
        protocols: vec![Protocol::Http],
        trials: 1,
        ..ExperimentConfig::default()
    };
    let r = Experiment::new(&world, cfg).run().unwrap();
    let one = r
        .coverage_one_probe(Protocol::Http, 0, OriginId::Us1)
        .fraction();
    let two = r.coverage(Protocol::Http, 0, OriginId::Us1).fraction();
    let both = both_lost_fraction(r.matrix(Protocol::Http, 0), 0);
    (one, two, both)
}

#[test]
fn second_probe_only_helps_under_iid_loss() {
    let (one_c, two_c, both_c) = run(false);
    let (one_u, two_u, both_u) = run(true);

    // Correlated regime: when one probe is lost, the second almost always
    // is too, so the second probe closes little of the gap.
    assert!(both_c > 0.6, "correlated both-lost {both_c}");
    let gap_closed_c = (two_c - one_c) / (1.0 - one_c);
    // Uniform regime: single losses dominate; the second probe recovers
    // most of what the first missed.
    assert!(
        both_u < both_c,
        "uniform both-lost {both_u} vs correlated {both_c}"
    );
    let gap_closed_u = (two_u - one_u) / (1.0 - one_u);
    assert!(
        gap_closed_u > gap_closed_c,
        "2nd probe should help more under iid: {gap_closed_u} vs {gap_closed_c}"
    );
}
