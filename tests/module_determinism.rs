//! Per-module determinism: every registered probe module's full
//! pipeline — experiment, archived scan-set store bytes, telemetry
//! JSONL, rendered sweep report — is a pure function of
//! (world seed, config). This is the acceptance gate for new modules:
//! ICMP echo and DNS-over-UDP must reproduce byte-identically through
//! the same permutation core the TCP trio uses.

use originscan::core::modules::sweep_modules;
use originscan::core::ExperimentConfig;
use originscan::netmodel::{OriginId, WorldConfig};
use originscan::scanner::probe::modules;

fn base() -> ExperimentConfig {
    ExperimentConfig {
        origins: vec![OriginId::Us1, OriginId::Germany, OriginId::Japan],
        trials: 2,
        ..ExperimentConfig::default()
    }
}

#[test]
fn per_module_pipeline_is_byte_identical() {
    let world = WorldConfig::tiny(91).build();
    let a = sweep_modules(&world, &base()).unwrap();
    let b = sweep_modules(&world, &base()).unwrap();
    assert_eq!(a.runs().len(), modules().len());
    for (ra, rb) in a.runs().iter().zip(b.runs()) {
        assert_eq!(ra.name(), rb.name());
        // Archived scan sets: same seed, same bytes on disk.
        let store_a = ra.results.scan_set_store();
        let store_b = rb.results.scan_set_store();
        assert_eq!(
            store_a.to_bytes().unwrap(),
            store_b.to_bytes().unwrap(),
            "{}: store bytes drifted between same-seed runs",
            ra.name()
        );
        // The store keyspace is the module's stable name.
        assert!(!store_a.is_empty(), "{}: empty store", ra.name());
        assert!(
            store_a.keys().all(|k| k.protocol == ra.name()),
            "{}: store keys must carry the module name",
            ra.name()
        );
        // Telemetry: event stream and span trace JSONL, byte for byte.
        let ta = ra.results.telemetry();
        let tb = rb.results.telemetry();
        assert_eq!(
            ta.events_jsonl(),
            tb.events_jsonl(),
            "{}: telemetry events drifted",
            ra.name()
        );
        assert_eq!(
            ta.to_jsonl(),
            tb.to_jsonl(),
            "{}: span traces drifted",
            ra.name()
        );
    }
    // The rendered per-module report (coverage, best-k, cross-module
    // diffs) is part of the contract too.
    assert_eq!(a.render(), b.render());
}

#[test]
fn stateless_modules_run_end_to_end_through_the_sweep() {
    let world = WorldConfig::tiny(92).build();
    let sweep = sweep_modules(&world, &base()).unwrap();
    for name in ["ICMP", "DNS"] {
        let run = sweep.get(name).unwrap();
        let cov = sweep
            .coverage()
            .into_iter()
            .find(|c| c.module == name)
            .unwrap();
        assert!(cov.union > 0, "{name}: saw no hosts");
        assert!(
            cov.fractions.iter().all(|&f| f > 0.5),
            "{name}: implausibly low coverage {:?}",
            cov.fractions
        );
        // Stateless modules never open follow-up connections.
        let m = run.results.matrix(run.module.protocol(), 0);
        assert!(!m.is_empty(), "{name}: empty trial matrix");
    }
    // The cross-module diff keyed by names includes the new modules.
    let diffs = sweep.diffs();
    assert!(diffs.iter().any(|d| d.b == "ICMP" && d.both > 0));
    assert!(diffs.iter().any(|d| d.b == "DNS"));
}
