//! Telemetry determinism: the event stream and the metrics registry are
//! part of the experiment's result surface, so they obey the same
//! contract as the matrices — a pure function of (seed, origin, trial).
//! Two runs of the same experiment must produce *byte-identical* JSONL
//! exports, faults and retries included.

use originscan::core::experiment::{Experiment, ExperimentConfig};
use originscan::core::ExperimentResults;
use originscan::netmodel::{FaultPlan, OriginId, Protocol, World, WorldConfig};
use originscan::telemetry::metrics;
use originscan::telemetry::Scope;

fn faulted_cfg() -> ExperimentConfig {
    // Exercise every telemetry path at once: an outage window, a crash
    // (retry + checkpoint resume), a pipeline stall, and reply
    // tampering, across two protocols and two trials.
    let plan = FaultPlan::new(11)
        .outage(1, 0, 0.4, 0.6)
        .crash(2, 0, 0.5, 1)
        .stall(0, 1, 0.3, 45.0)
        .corrupt_replies(1, 0, 0.02)
        .duplicate_replies(1, 0, 0.02);
    ExperimentConfig {
        origins: vec![OriginId::Us1, OriginId::Germany, OriginId::Japan],
        protocols: vec![Protocol::Http, Protocol::Ssh],
        trials: 2,
        faults: Some(plan),
        ..Default::default()
    }
}

fn run(world: &World) -> ExperimentResults<'_> {
    Experiment::new(world, faulted_cfg()).run().unwrap()
}

#[test]
fn same_seed_runs_produce_byte_identical_telemetry() {
    let world = WorldConfig::tiny(29).build();
    let a = run(&world);
    let b = run(&world);

    // Structural equality of the whole snapshot...
    assert_eq!(a.telemetry(), b.telemetry());
    // ...and byte equality of every serialized surface.
    assert_eq!(a.telemetry().events_jsonl(), b.telemetry().events_jsonl());
    assert_eq!(a.telemetry().metrics_jsonl(), b.telemetry().metrics_jsonl());
    assert_eq!(a.telemetry().to_jsonl(), b.telemetry().to_jsonl());
    assert_eq!(
        a.telemetry().render_summary(),
        b.telemetry().render_summary()
    );

    // The faults actually fired, so the equality above covered the
    // interesting paths, not an empty stream.
    let t = a.telemetry();
    assert!(
        t.counter(
            Scope::new("HTTP", 0, 1),
            metrics::names::FAULT_OUTAGE_SILENCED
        ) > 0
    );
    assert!(t.counter(Scope::new("HTTP", 0, 2), metrics::names::FAULT_KILLS) > 0);
    assert!(t.counter(Scope::new("SSH", 1, 0), metrics::names::FAULT_STALLS) > 0);
    assert!(
        t.counter(
            Scope::new("HTTP", 0, 1),
            metrics::names::FAULT_REPLIES_CORRUPTED
        ) > 0
    );
    assert!(!t.events_jsonl().is_empty());
}

#[test]
fn matrices_unaffected_by_telemetry_capture() {
    // Capturing telemetry is observation, not perturbation: the trial
    // matrices of two identically-configured runs stay bit-identical
    // (this also re-checks result determinism end to end).
    let world = WorldConfig::tiny(31).build();
    let a = run(&world);
    let b = run(&world);
    for (ma, mb) in a.matrices().iter().zip(b.matrices().iter()) {
        assert_eq!(ma.addrs, mb.addrs);
        assert_eq!(ma.outcomes, mb.outcomes);
        assert_eq!(ma.statuses, mb.statuses);
    }
}

#[test]
fn histogram_bucket_boundaries_are_pinned() {
    // The JSONL schema's bucket edges are part of the stable surface;
    // moving them silently invalidates cross-run comparisons.
    assert_eq!(
        metrics::RESPONSE_FRAC_BOUNDS,
        [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    );
    assert_eq!(metrics::L7_ATTEMPT_BOUNDS, [1.5, 2.5, 4.5, 8.5]);
    assert_eq!(
        metrics::STALL_BOUNDS,
        [1.0, 10.0, 60.0, 300.0, 900.0, 3600.0]
    );
}
