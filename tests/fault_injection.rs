//! End-to-end fault-injection guarantees, asserted at the level the
//! analyses consume (trial matrices), not just the scanner engine:
//!
//! 1. **Isolation** — injecting a mid-trial outage (or crash) into one
//!    origin leaves every *other* origin's scan bit-identical to the
//!    fault-free experiment.
//! 2. **Resumability** — a scan killed mid-permutation and resumed from
//!    its checkpoint produces output equal to the uninterrupted scan.
//! 3. **Graceful degradation** — a terminally failed origin is carried
//!    as `Failed` and excluded from ground truth instead of sinking the
//!    trial.

use originscan::core::experiment::{
    supervise_scan, Experiment, ExperimentConfig, RunStatus, SupervisorPolicy,
};
use originscan::core::ExperimentResults;
use originscan::netmodel::{FaultPlan, InjectedFault, OriginId, Protocol, SimNet, WorldConfig};
use originscan::scanner::engine::ScanConfig;
use originscan::scanner::rate::rate_for_duration;

const DUR: f64 = 21.0 * 3600.0;

fn cfg(faults: Option<FaultPlan>) -> ExperimentConfig {
    ExperimentConfig {
        origins: vec![OriginId::Us1, OriginId::Germany, OriginId::Japan],
        protocols: vec![Protocol::Http],
        trials: 2,
        faults,
        ..Default::default()
    }
}

/// The raw per-origin record streams of one trial, as (addr, outcome)
/// pairs restricted to nothing — full rows.
fn origin_rows(r: &ExperimentResults<'_>, trial: u8, oi: usize) -> Vec<(u32, u8)> {
    r.matrix(Protocol::Http, trial)
        .iter_origin(oi)
        .map(|(_, addr, o)| (addr, o.0))
        .collect()
}

#[test]
fn outage_leaves_other_origins_bit_identical() {
    let world = WorldConfig::tiny(41).build();
    // Germany (origin 1) goes dark for the middle fifth of trial 0 and
    // additionally crashes once inside the window; the other two origins
    // and all of trial 1 must be untouched.
    let plan = FaultPlan::new(7)
        .outage(1, 0, 0.4, 0.6)
        .crash(1, 0, 0.45, 1)
        .corrupt_replies(1, 0, 0.05);
    let clean = Experiment::new(&world, cfg(None)).run().unwrap();
    let faulted = Experiment::new(&world, cfg(Some(plan))).run().unwrap();

    for trial in 0..2u8 {
        let mc = clean.matrix(Protocol::Http, trial);
        let mf = faulted.matrix(Protocol::Http, trial);
        if trial == 1 {
            // Trial 1 has no faults at all: everything identical.
            assert_eq!(mc.addrs, mf.addrs);
            assert_eq!(mc.outcomes, mf.outcomes);
            assert!(mf.all_clean());
            continue;
        }
        // Trial 0: the faulted origin is degraded...
        assert!(
            matches!(
                mf.statuses[1],
                RunStatus::Degraded {
                    fault: InjectedFault::Outage,
                    ..
                }
            ),
            "Germany should be degraded: {}",
            mf.statuses[1]
        );
        // ...and only it. The untouched origins' rows are bit-identical
        // on the addresses common to both ground truths (GT shrinks when
        // the faulted origin loses exclusive hosts).
        for oi in [0usize, 2] {
            assert!(mf.statuses[oi].is_clean());
            let clean_rows: Vec<_> = origin_rows(&clean, trial, oi)
                .into_iter()
                .filter(|(a, _)| mf.index_of(*a).is_some())
                .collect();
            let fault_rows: Vec<_> = origin_rows(&faulted, trial, oi)
                .into_iter()
                .filter(|(a, _)| mc.index_of(*a).is_some())
                .collect();
            assert_eq!(
                clean_rows, fault_rows,
                "origin {oi} was perturbed by Germany's faults"
            );
        }
        // The outage really cost Germany hosts.
        assert!(mf.seen_count(1) < mc.seen_count(1));
    }
}

#[test]
fn killed_and_resumed_scan_equals_uninterrupted() {
    let world = WorldConfig::tiny(42).build();
    let origins = [OriginId::Us1];
    let net = SimNet::new(&world, &origins, DUR);
    let mut sc = ScanConfig::new(world.space(), Protocol::Http, 1234);
    sc.rate_pps = rate_for_duration(world.space() * 2, DUR);

    let uninterrupted = supervise_scan(&net, &sc, None, &SupervisorPolicy::default(), None);
    assert_eq!(uninterrupted.status, RunStatus::Completed);

    // Kill the scan 70% of the way through, once.
    let plan = FaultPlan::new(0).crash(0, 0, 0.7, 1);
    let hook = plan.hook(DUR);
    let resumed = supervise_scan(&net, &sc, Some(&hook), &SupervisorPolicy::default(), None);
    assert_eq!(resumed.status, RunStatus::Resumed { retries: 1 });
    assert_eq!(
        resumed.output, uninterrupted.output,
        "checkpoint resume must be bit-identical, timestamps included"
    );

    // Same, but with resume disabled (checkpoint_every = 0): the retry
    // restarts from scratch and must *still* be bit-identical, because
    // simulated backoff never shifts the pacer clock.
    let policy = SupervisorPolicy {
        checkpoint_every: 0,
        ..Default::default()
    };
    let restarted = supervise_scan(&net, &sc, Some(&hook), &policy, None);
    assert_eq!(restarted.status, RunStatus::Resumed { retries: 1 });
    assert_eq!(restarted.output, uninterrupted.output);
}

#[test]
fn overlapping_outage_windows_behave_as_their_union() {
    use originscan::netmodel::fault::FaultyNet;

    let world = WorldConfig::tiny(44).build();
    let origins = [OriginId::Us1];
    let net = SimNet::new(&world, &origins, DUR);
    let mut sc = ScanConfig::new(world.space(), Protocol::Http, 55);
    sc.rate_pps = rate_for_duration(world.space() * 2, DUR);
    let scan = |plan: &FaultPlan| {
        let fa = FaultyNet::new(&net, plan, DUR);
        let hook = plan.hook(DUR);
        supervise_scan(&fa, &sc, Some(&hook), &SupervisorPolicy::default(), None)
    };

    // Two overlapping dark windows are indistinguishable from one merged
    // window: an address is silenced iff it falls in *any* window.
    let overlapping = FaultPlan::new(9)
        .outage(0, 0, 0.3, 0.5)
        .outage(0, 0, 0.4, 0.7);
    let merged = FaultPlan::new(9).outage(0, 0, 0.3, 0.7);
    let a = scan(&overlapping);
    let b = scan(&merged);
    assert_eq!(a.output, b.output, "overlap must act as the union");

    // The union actually silenced something (vs. fault-free).
    let clean = supervise_scan(&net, &sc, None, &SupervisorPolicy::default(), None);
    let count = |r: &originscan::core::OriginRun| r.output.as_ref().unwrap().records.len();
    assert!(count(&a) < count(&clean), "the outage cost nothing");
}

#[test]
fn zero_duration_stall_is_identical_to_fault_free() {
    use originscan::netmodel::fault::FaultyNet;

    let world = WorldConfig::tiny(45).build();
    let origins = [OriginId::Us1];
    let net = SimNet::new(&world, &origins, DUR);
    let mut sc = ScanConfig::new(world.space(), Protocol::Http, 56);
    sc.rate_pps = rate_for_duration(world.space() * 2, DUR);

    let clean = supervise_scan(&net, &sc, None, &SupervisorPolicy::default(), None);
    let plan = FaultPlan::new(9).stall(0, 0, 0.5, 0.0);
    let fa = FaultyNet::new(&net, &plan, DUR);
    let hook = plan.hook(DUR);
    let stalled = supervise_scan(&fa, &sc, Some(&hook), &SupervisorPolicy::default(), None);
    assert_eq!(stalled.status, RunStatus::Completed);
    assert_eq!(
        stalled.output, clean.output,
        "a zero-second stall must not shift a single timestamp"
    );
}

#[test]
fn crash_inside_outage_window_resumes_across_the_boundary() {
    use originscan::netmodel::fault::FaultyNet;

    let world = WorldConfig::tiny(46).build();
    let origins = [OriginId::Us1];
    let net = SimNet::new(&world, &origins, DUR);
    let mut sc = ScanConfig::new(world.space(), Protocol::Http, 57);
    sc.rate_pps = rate_for_duration(world.space() * 2, DUR);

    // Reference: the outage alone, no crash.
    let outage_only = FaultPlan::new(9).outage(0, 0, 0.4, 0.6);
    let fa = FaultyNet::new(&net, &outage_only, DUR);
    let hook_a = outage_only.hook(DUR);
    let reference = supervise_scan(&fa, &sc, Some(&hook_a), &SupervisorPolicy::default(), None);
    assert_eq!(reference.status, RunStatus::Completed);

    // Crash mid-outage: the periodic checkpoint the resume starts from
    // was taken *inside* the dark window, so the replayed span straddles
    // the fault boundary. The resumed scan must still equal the
    // uninterrupted-with-outage run, silenced window included.
    let with_crash = FaultPlan::new(9).outage(0, 0, 0.4, 0.6).crash(0, 0, 0.5, 1);
    let fb = FaultyNet::new(&net, &with_crash, DUR);
    let hook_b = with_crash.hook(DUR);
    let resumed = supervise_scan(&fb, &sc, Some(&hook_b), &SupervisorPolicy::default(), None);
    assert_eq!(resumed.status, RunStatus::Resumed { retries: 1 });
    assert_eq!(resumed.output, reference.output);
}

#[test]
fn experiment_with_unrecoverable_origin_degrades_not_dies() {
    let world = WorldConfig::tiny(43).build();
    let plan = FaultPlan::new(3).crash(2, 1, 0.1, u32::MAX);
    let r = Experiment::new(&world, cfg(Some(plan))).run().unwrap();
    let m = r.matrix(Protocol::Http, 1);
    assert!(matches!(m.statuses[2], RunStatus::Failed { .. }));
    assert_eq!(m.seen_count(2), 0);
    assert!(!m.is_empty(), "survivors still define ground truth");
    // The report machinery renders rather than panics on partial data.
    let report = originscan::core::summary::full_report(&r);
    assert!(report.contains("FAILED (killed by fault)"), "{report}");
    // And the disrupted-run inventory names exactly one run.
    let disrupted = r.disrupted_runs();
    assert_eq!(disrupted.len(), 1);
    assert_eq!(disrupted[0].2, OriginId::Japan);
}
